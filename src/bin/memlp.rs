//! `memlp` — command-line LP solving on simulated memristor hardware.
//!
//! ```text
//! memlp solve <file.lp> [<file.lp> ...]
//!             [--solver alg1|alg2|simplex|pdip|mehrotra|pdhg|pdhg-analog|auto]
//!             [--path auto|dense|sparse]
//!             [--variation <pct>] [--seed <n>] [--jobs <n>] [--quiet]
//!             [--max-iters <n>] [--timeout-iters <n>] [--no-tile-elision]
//!             [--stuck-rate <frac>] [--dead-line-rate <frac>]
//!             [--transient-rate <frac>] [--spares <n>]
//!             [--recovery off|hardware|full]
//! memlp serve [--addr <host:port>] [--queue-depth <n>] [--workers <n>]
//!             [--variation <pct>] [--seed <n>]        # long-running daemon
//! memlp client <addr> [solve <file.lp> ... | health | drain]
//! memlp generate <m> [--seed <n>] [--infeasible]   # emit a random LP
//! memlp info <file.lp>                             # problem statistics
//! ```
//!
//! With several files, `solve` runs them as a concurrent batch; `--jobs`
//! caps the batch workers (0 = auto from `MEMLP_THREADS` / CPU count).
//! The fault knobs inject hardware defects into the crossbar solvers:
//! `--stuck-rate` is the total stuck-cell fraction (split evenly between
//! stuck-on and stuck-off), `--dead-line-rate` kills whole word/bit lines,
//! `--transient-rate` flips ADC read-outs, and `--recovery` selects how far
//! the solvers escalate when write–verify reports defects. `--path` selects
//! the digital Newton factorization (sparse Schur core vs dense LU; `auto`
//! picks by constraint-matrix density) for the solvers that honor it.
//! `--max-iters` caps total Newton iterations and `--timeout-iters` sets a
//! deterministic per-solve deadline (in iteration polls); either budget
//! expiring returns the best iterate found with a `degraded:` verdict
//! instead of failing. `--solver pdhg` is the matrix-free first-order
//! backend (digital CSR), `pdhg-analog` runs the same loop on crossbar
//! MVMs, and `auto` picks per problem: PDIP while the dense Newton core
//! fits the `DENSE_CORE_LIMIT_BYTES` allocation guard, PDHG past it. The
//! `.lp` dialect is documented in `memlp_lp::format`.

use std::process::ExitCode;

use memlp::prelude::*;
use memlp_device::CostParams;
use memlp_lp::format;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  memlp solve <file.lp> [<file.lp> ...] [--solver alg1|alg2|simplex|pdip|mehrotra|pdhg|pdhg-analog|auto] [--path auto|dense|sparse] [--variation <pct>] [--seed <n>] [--jobs <n>] [--quiet]
              [--max-iters <n>] [--timeout-iters <n>] [--no-tile-elision]
              [--stuck-rate <frac>] [--dead-line-rate <frac>] [--transient-rate <frac>] [--spares <n>] [--recovery off|hardware|full]
  memlp serve [--addr <host:port>] [--solver pdip|pdhg] [--queue-depth <n>] [--workers <n>] [--variation <pct>] [--seed <n>] [--max-iters <n>] [--timeout-iters <n>]
  memlp client <addr> (solve <file.lp> [...] [--max-iters <n>] [--timeout-iters <n>] [--family <tag>] | health | drain)
  memlp generate <m> [--seed <n>] [--infeasible]
  memlp info <file.lp>";

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("solve") => solve_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("client") => client_cmd(&args[1..]),
        Some("generate") => generate_cmd(&args[1..]),
        Some("info") => info_cmd(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("missing command".into()),
    }
}

struct Flags {
    positional: Vec<String>,
    solver: String,
    variation: f64,
    seed: u64,
    /// Batch workers for multi-file `solve` (0 = resolve from the
    /// environment: `MEMLP_THREADS`, then available parallelism).
    jobs: usize,
    quiet: bool,
    infeasible: bool,
    /// Total stuck-cell fraction (split evenly stuck-on/stuck-off).
    stuck_rate: f64,
    /// Dead word/bit line fraction.
    dead_line_rate: f64,
    /// Transient ADC read-upset fraction.
    transient_rate: f64,
    /// Spare lines per array side (None = hardware default).
    spares: Option<usize>,
    /// Recovery escalation policy: off | hardware | full.
    recovery: RecoveryPolicy,
    /// Digital Newton factorization path: auto | dense | sparse.
    path: SolvePath,
    /// Cap on total Newton iterations (None = unlimited).
    max_iters: Option<usize>,
    /// Deterministic deadline in iteration polls (None = none).
    timeout_iters: Option<usize>,
    /// Listen/connect address for serve/client.
    addr: String,
    /// Admission-queue depth for serve.
    queue_depth: usize,
    /// Worker threads for serve (1 = deterministic).
    workers: usize,
    /// Problem-family tag for client jobs (warm-context pooling key).
    family: String,
    /// Escape hatch: fabricate and program every tile, including
    /// planned-zero ones (disables DESIGN.md §18 zero-tile elision).
    no_tile_elision: bool,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        positional: Vec::new(),
        solver: "alg1".into(),
        variation: 0.0,
        seed: 42,
        jobs: 0,
        quiet: false,
        infeasible: false,
        stuck_rate: 0.0,
        dead_line_rate: 0.0,
        transient_rate: 0.0,
        spares: None,
        recovery: RecoveryPolicy::Full,
        path: SolvePath::Auto,
        max_iters: None,
        timeout_iters: None,
        addr: "127.0.0.1:0".into(),
        queue_depth: 16,
        workers: 1,
        family: "default".into(),
        no_tile_elision: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--solver" => f.solver = it.next().ok_or("--solver needs a value")?.clone(),
            "--variation" => {
                f.variation = it
                    .next()
                    .ok_or("--variation needs a value")?
                    .parse()
                    .map_err(|_| "--variation must be a number")?
            }
            "--seed" => {
                f.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed must be an integer")?
            }
            "--jobs" => {
                f.jobs = it
                    .next()
                    .ok_or("--jobs needs a value")?
                    .parse()
                    .map_err(|_| "--jobs must be an integer")?
            }
            "--stuck-rate" => {
                f.stuck_rate = it
                    .next()
                    .ok_or("--stuck-rate needs a value")?
                    .parse()
                    .map_err(|_| "--stuck-rate must be a number")?
            }
            "--dead-line-rate" => {
                f.dead_line_rate = it
                    .next()
                    .ok_or("--dead-line-rate needs a value")?
                    .parse()
                    .map_err(|_| "--dead-line-rate must be a number")?
            }
            "--transient-rate" => {
                f.transient_rate = it
                    .next()
                    .ok_or("--transient-rate needs a value")?
                    .parse()
                    .map_err(|_| "--transient-rate must be a number")?
            }
            "--spares" => {
                f.spares = Some(
                    it.next()
                        .ok_or("--spares needs a value")?
                        .parse()
                        .map_err(|_| "--spares must be an integer")?,
                )
            }
            "--recovery" => {
                f.recovery = match it.next().ok_or("--recovery needs a value")?.as_str() {
                    "off" | "disabled" => RecoveryPolicy::Disabled,
                    "hardware" => RecoveryPolicy::Hardware,
                    "full" => RecoveryPolicy::Full,
                    other => return Err(format!("unknown recovery policy `{other}`")),
                }
            }
            "--path" => f.path = it.next().ok_or("--path needs a value")?.parse()?,
            "--max-iters" => {
                f.max_iters = Some(
                    it.next()
                        .ok_or("--max-iters needs a value")?
                        .parse()
                        .map_err(|_| "--max-iters must be an integer")?,
                )
            }
            "--timeout-iters" => {
                f.timeout_iters = Some(
                    it.next()
                        .ok_or("--timeout-iters needs a value")?
                        .parse()
                        .map_err(|_| "--timeout-iters must be an integer")?,
                )
            }
            "--addr" => f.addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--queue-depth" => {
                f.queue_depth = it
                    .next()
                    .ok_or("--queue-depth needs a value")?
                    .parse()
                    .map_err(|_| "--queue-depth must be an integer")?
            }
            "--workers" => {
                f.workers = it
                    .next()
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|_| "--workers must be an integer")?
            }
            "--family" => f.family = it.next().ok_or("--family needs a value")?.clone(),
            "--quiet" => f.quiet = true,
            "--no-tile-elision" => f.no_tile_elision = true,
            "--infeasible" => f.infeasible = true,
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            other => f.positional.push(other.to_string()),
        }
    }
    Ok(f)
}

fn load(path: &str) -> Result<LpProblem, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    format::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn solve_cmd(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args)?;
    if f.positional.is_empty() {
        return Err("solve needs a file argument".into());
    }
    let lps: Vec<LpProblem> = f
        .positional
        .iter()
        .map(|p| load(p))
        .collect::<Result<_, _>>()?;
    let faults = FaultModel::new(0.5 * f.stuck_rate, 0.5 * f.stuck_rate)
        .and_then(|m| m.with_dead_lines(f.dead_line_rate, f.dead_line_rate))
        .and_then(|m| m.with_transients(f.transient_rate))
        .map_err(|e| e.to_string())?;
    let mut config = CrossbarConfig::paper_default()
        .with_variation(f.variation)
        .with_seed(f.seed)
        .with_tile_elision(!f.no_tile_elision)
        .with_faults(faults);
    if let Some(spares) = f.spares {
        config = config.with_spare_lines(spares);
    }
    let jobs = if f.jobs == 0 {
        memlp_linalg::parallel::Threads::resolve().get()
    } else {
        f.jobs
    };

    type SolveRow = (
        LpSolution,
        Option<memlp_crossbar::CostLedger>,
        Option<RecoveryReport>,
        Option<BudgetCause>,
    );
    // Per-item budget: the deterministic deadline is owned by the worker
    // closure, so every problem gets its own fresh tick count. (A plain fn
    // rather than a closure so the deadline borrow's lifetime stays
    // generic.)
    fn budget_for(max_iters: Option<usize>, dl: Option<&IterationDeadline>) -> Budget<'_> {
        let mut b = Budget::none();
        if let Some(n) = max_iters {
            b = b.with_max_iters(n);
        }
        if let Some(d) = dl {
            b = b.with_deadline(d);
        }
        b
    }
    let max_iters = f.max_iters;
    let timeout_iters = f.timeout_iters;
    // Multi-file batches fan out across `jobs` workers; every problem is an
    // isolated deterministic simulation, so results (and the single-file
    // output) are identical to sequential solves. Admission errors (e.g. an
    // oversized explicit-dense core) land in the failing item's slot only.
    let results: Vec<Result<SolveRow, String>> = match f.solver.as_str() {
        "alg1" => {
            let mut options = CrossbarSolverOptions {
                recovery: f.recovery,
                ..CrossbarSolverOptions::default()
            };
            options.pdip.path = f.path;
            let s = CrossbarPdipSolver::new(config, options);
            memlp_linalg::parallel::run_indexed(jobs, lps.len(), |i| {
                memlp_linalg::parallel::with_threads(1, || {
                    s.preflight(&lps[i]).map_err(|e| e.to_string())?;
                    let dl = timeout_iters.map(IterationDeadline::new);
                    let r = s.solve_budgeted(&lps[i], budget_for(max_iters, dl.as_ref()));
                    Ok((r.solution, Some(r.ledger), Some(r.recovery), r.degraded))
                })
            })
        }
        "alg2" => {
            let options = LargeScaleOptions {
                recovery: f.recovery,
                ..LargeScaleOptions::default()
            };
            let s = LargeScaleSolver::new(config, options);
            memlp_linalg::parallel::run_indexed(jobs, lps.len(), |i| {
                memlp_linalg::parallel::with_threads(1, || {
                    s.preflight(&lps[i]).map_err(|e| e.to_string())?;
                    let dl = timeout_iters.map(IterationDeadline::new);
                    let r = s.solve_budgeted(&lps[i], budget_for(max_iters, dl.as_ref()));
                    Ok((r.solution, Some(r.ledger), Some(r.recovery), r.degraded))
                })
            })
        }
        "simplex" => {
            let s = Simplex::default();
            memlp_linalg::parallel::run_indexed(jobs, lps.len(), |i| {
                Ok((s.solve(&lps[i]), None, None, None))
            })
        }
        "pdip" => {
            let s = NormalEqPdip::new(PdipOptions {
                path: f.path,
                ..PdipOptions::default()
            });
            memlp_linalg::parallel::run_indexed(jobs, lps.len(), |i| {
                let dl = timeout_iters.map(IterationDeadline::new);
                let (sol, cause) = s.solve_budgeted(&lps[i], budget_for(max_iters, dl.as_ref()));
                Ok((sol, None, None, cause))
            })
        }
        "mehrotra" => {
            let s = MehrotraPdip::default();
            memlp_linalg::parallel::run_indexed(jobs, lps.len(), |i| {
                let dl = timeout_iters.map(IterationDeadline::new);
                let (sol, cause) = s.solve_budgeted(&lps[i], budget_for(max_iters, dl.as_ref()));
                Ok((sol, None, None, cause))
            })
        }
        "pdhg" => {
            let s = PdhgSolver::default();
            memlp_linalg::parallel::run_indexed(jobs, lps.len(), |i| {
                let dl = timeout_iters.map(IterationDeadline::new);
                let (sol, cause) = s.solve_budgeted(&lps[i], budget_for(max_iters, dl.as_ref()));
                Ok((sol, None, None, cause))
            })
        }
        "pdhg-analog" => {
            let options = CrossbarPdhgOptions {
                recovery: f.recovery,
                ..CrossbarPdhgOptions::default()
            };
            let s = CrossbarPdhgSolver::new(config, options);
            memlp_linalg::parallel::run_indexed(jobs, lps.len(), |i| {
                memlp_linalg::parallel::with_threads(1, || {
                    let dl = timeout_iters.map(IterationDeadline::new);
                    let r = s.solve_budgeted(&lps[i], budget_for(max_iters, dl.as_ref()));
                    Ok((r.solution, Some(r.ledger), Some(r.recovery), r.degraded))
                })
            })
        }
        // Digital auto-selection: PDIP while the dense Newton core fits
        // the allocation guard, the matrix-free PDHG backend past it.
        "auto" => {
            let pdip = NormalEqPdip::new(PdipOptions {
                path: f.path,
                ..PdipOptions::default()
            });
            let pdhg = PdhgSolver::default();
            memlp_linalg::parallel::run_indexed(jobs, lps.len(), |i| {
                let dim = (lps[i].num_vars() + lps[i].num_constraints()) as u64;
                let dl = timeout_iters.map(IterationDeadline::new);
                let budget = budget_for(max_iters, dl.as_ref());
                let (sol, cause) = if 8 * dim * dim > memlp_core::DENSE_CORE_LIMIT_BYTES {
                    pdhg.solve_budgeted(&lps[i], budget)
                } else {
                    pdip.solve_budgeted(&lps[i], budget)
                };
                Ok((sol, None, None, cause))
            })
        }
        other => return Err(format!("unknown solver `{other}`")),
    };

    let multi = results.len() > 1;
    let mut failures = Vec::new();
    for (path, row) in f.positional.iter().zip(&results) {
        if multi {
            println!("== {path} ==");
        }
        let (solution, hardware, recovery, degraded) = match row {
            Ok(row) => row,
            Err(msg) => {
                println!("status:    rejected ({msg})");
                failures.push((path.as_str(), LpStatus::NumericalFailure));
                continue;
            }
        };
        println!("status:    {}", solution.status);
        if let Some(cause) = degraded {
            println!("degraded:  {cause} — best iterate returned");
        }
        println!("objective: {:.9}", solution.objective);
        println!("iterations: {}", solution.iterations);
        if !f.quiet {
            for (j, v) in solution.x.iter().enumerate() {
                println!("x{j} = {v:.6}");
            }
        }
        if let Some(ledger) = hardware {
            println!(
                "hardware:  run {:.3} ms, setup {:.3} ms, energy {:.3} mJ",
                ledger.run_time_s() * 1e3,
                ledger.setup_time_s() * 1e3,
                ledger.energy_j(&CostParams::default()) * 1e3
            );
            println!("activity:  {ledger}");
            let c = ledger.counts();
            let pulsed = c.setup_writes + c.update_writes;
            let offered = pulsed + c.skipped_writes;
            if offered > 0 {
                println!(
                    "writes:    {pulsed} pulsed, {} skipped ({:.1}% sparsity), {} rebuilds avoided",
                    c.skipped_writes,
                    100.0 * c.skipped_writes as f64 / offered as f64,
                    c.rebuilds_avoided
                );
            }
            if c.factorizations > 0 {
                println!(
                    "newton:    {} factorization(s), {} flops ({:.0}/iter), {} factor entries",
                    c.factorizations,
                    c.factor_flops,
                    c.factor_flops as f64 / c.factorizations as f64,
                    c.factor_nnz
                );
            }
        }
        if let Some(report) = recovery {
            if report.saw_faults() {
                println!(
                    "recovery:  {} fault event(s), {} escalation(s){}",
                    report.events.len() - report.escalations(),
                    report.escalations(),
                    if report.used_digital_fallback() {
                        ", digital fallback"
                    } else {
                        ""
                    }
                );
            }
        }
        // A budget expiry is a requested degradation, not a failure: the
        // caller traded optimality for a bounded response.
        if !solution.status.is_optimal() && degraded.is_none() {
            failures.push((path.as_str(), solution.status));
        }
    }
    match failures.as_slice() {
        [] => Ok(()),
        [(_, status)] if !multi => Err(format!("solve terminated with status: {status}")),
        many => Err(format!(
            "{} of {} solves did not reach optimality ({})",
            many.len(),
            results.len(),
            many.iter()
                .map(|(p, s)| format!("{p}: {s}"))
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

fn serve_cmd(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args)?;
    if !f.positional.is_empty() {
        return Err(format!(
            "serve takes no positional arguments, got `{}`",
            f.positional[0]
        ));
    }
    let crossbar = CrossbarConfig::paper_default()
        .with_variation(f.variation)
        .with_seed(f.seed)
        .with_tile_elision(!f.no_tile_elision);
    let serve_solver = match f.solver.as_str() {
        // `alg1` is the solve-command default; treat it as PDIP here so
        // `memlp serve` without `--solver` keeps its historical behavior.
        "alg1" | "pdip" => memlp_serve::ServeSolver::Pdip,
        "pdhg" | "pdhg-analog" => memlp_serve::ServeSolver::Pdhg,
        other => return Err(format!("serve supports --solver pdip|pdhg, got `{other}`")),
    };
    let config = memlp_serve::ServeConfig::default()
        .with_crossbar(crossbar)
        .with_solver(serve_solver)
        .with_queue_depth(f.queue_depth)
        .with_workers(f.workers);
    let config = memlp_serve::ServeConfig {
        default_max_iters: f.max_iters.unwrap_or(0) as u32,
        default_deadline_ticks: f.timeout_iters.unwrap_or(0) as u32,
        ..config
    };
    let server = memlp_serve::Server::bind(&f.addr, config)
        .map_err(|e| format!("cannot bind {}: {e}", f.addr))?;
    // The literal `listening on <addr>` line is the startup handshake:
    // scripts (and tests/cli.rs) parse the ephemeral port out of it.
    println!("listening on {}", server.addr());
    println!(
        "queue depth {}, {} worker(s); stop with `memlp client {} drain`",
        config.queue_depth,
        config.workers,
        server.addr()
    );
    server.wait();
    println!("drained; all in-flight work completed");
    Ok(())
}

/// Converts a parsed LP into a wire job under the given family/budgets.
fn job_for(lp: &LpProblem, f: &Flags) -> memlp_serve::SolveJob {
    memlp_serve::SolveJob {
        family: f.family.clone(),
        rows: lp.num_constraints() as u32,
        cols: lp.num_vars() as u32,
        a: lp.a().as_slice().to_vec(),
        b: lp.b().to_vec(),
        c: lp.c().to_vec(),
        max_iters: f.max_iters.unwrap_or(0) as u32,
        deadline_ticks: f.timeout_iters.unwrap_or(0) as u32,
    }
}

fn client_cmd(args: &[String]) -> Result<(), String> {
    let addr = args
        .first()
        .ok_or("client needs a server address (host:port)")?;
    let action = args.get(1).map(String::as_str);
    let connect = || {
        memlp_serve::ServeClient::connect(addr)
            .map_err(|e| format!("cannot connect to {addr}: {e}"))
    };
    match action {
        Some("health") => {
            let h = connect()?.health().map_err(|e| e.to_string())?;
            println!(
                "ready:     {}{}",
                h.ready,
                if h.draining { " (draining)" } else { "" }
            );
            println!("queue:     {}/{}", h.queued, h.capacity);
            println!("workers:   {}", h.workers);
            println!("completed: {}", h.completed);
            println!("rejected:  {}", h.rejected);
            Ok(())
        }
        Some("drain") => {
            let completed = connect()?.drain().map_err(|e| e.to_string())?;
            println!("drained; server completed {completed} solve(s) over its lifetime");
            Ok(())
        }
        Some("solve") => {
            let f = parse_flags(&args[2..])?;
            if f.positional.is_empty() {
                return Err("client solve needs a file argument".into());
            }
            let mut client = connect()?;
            let mut failures: Vec<(&str, String)> = Vec::new();
            for path in &f.positional {
                let lp = load(path)?;
                println!("{path}:");
                match client.solve(job_for(&lp, &f)).map_err(|e| e.to_string())? {
                    memlp_serve::Response::Solution(s) => {
                        println!("  status:    {}", s.status);
                        if let Some(cause) = s.degraded {
                            println!("  degraded:  {cause} — best iterate returned");
                        }
                        println!("  objective: {:.6}", s.objective);
                        println!("  iters:     {}", s.iterations);
                        println!(
                            "  hardware:  {} start, {} cells written, {} skipped",
                            if s.warm_start { "warm" } else { "cold" },
                            s.cells_written,
                            s.cells_skipped
                        );
                        println!("  latency:   {} us (server-side)", s.latency_us);
                        if !s.status.is_optimal() && s.degraded.is_none() {
                            failures.push((path, s.status.to_string()));
                        }
                    }
                    memlp_serve::Response::Overloaded {
                        retry_after_hint_ms,
                        queue_depth,
                    } => {
                        println!(
                            "  status:    overloaded (queue depth {queue_depth}); retry in {retry_after_hint_ms} ms"
                        );
                        failures.push((path, "overloaded".into()));
                    }
                    memlp_serve::Response::Error { message } => {
                        println!("  status:    rejected ({message})");
                        failures.push((path, message));
                    }
                    other => return Err(format!("unexpected response: {other:?}")),
                }
            }
            if failures.is_empty() {
                Ok(())
            } else {
                Err(format!(
                    "{} of {} jobs did not complete ({})",
                    failures.len(),
                    f.positional.len(),
                    failures
                        .iter()
                        .map(|(p, s)| format!("{p}: {s}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            }
        }
        Some(other) => Err(format!("unknown client action `{other}`")),
        None => Err("client needs one of: solve, health, drain".into()),
    }
}

fn generate_cmd(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args)?;
    let m: usize = f
        .positional
        .first()
        .ok_or("generate needs a constraint count")?
        .parse()
        .map_err(|_| "constraint count must be an integer")?;
    let gen = RandomLp::paper(m, f.seed);
    let lp = if f.infeasible {
        gen.infeasible()
    } else {
        gen.feasible()
    };
    print!("{}", format::write(&lp));
    Ok(())
}

fn info_cmd(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args)?;
    let path = f.positional.first().ok_or("info needs a file argument")?;
    let lp = load(path)?;
    let split = SignSplit::split(lp.a());
    let sparse = memlp_linalg::SparseMatrix::from_dense(lp.a());
    println!("constraints (m):        {}", lp.num_constraints());
    println!("variables (n):          {}", lp.num_vars());
    println!(
        "nonzeros in A:          {} (density {:.1}%)",
        sparse.nnz(),
        sparse.density() * 100.0
    );
    println!("max |coefficient|:      {:.6}", lp.max_abs_coefficient());
    println!(
        "compensation variables: {} (§3.2 transform)",
        split.num_compensations() + SignSplit::split(&lp.a().transpose()).num_compensations()
    );
    let dim = 3 * lp.num_vars()
        + 3 * lp.num_constraints()
        + split.num_compensations()
        + SignSplit::split(&lp.a().transpose()).num_compensations();
    println!("Algorithm-1 system dim: {dim}");
    println!(
        "Algorithm-2 system dim: {}",
        lp.num_vars() + lp.num_constraints()
    );
    Ok(())
}
