#![forbid(unsafe_code)]
//! # memlp — a memristor-crossbar linear program solver
//!
//! A full Rust reproduction of *"A low-computation-complexity,
//! energy-efficient, and high-performance linear program solver based on
//! primal dual interior point method using memristor crossbars"* (Cai, Ren,
//! Soundarajan, Wang), including every substrate the paper depends on:
//!
//! | Layer | Crate | What it provides |
//! |---|---|---|
//! | Solvers (the contribution) | [`core`] | Algorithm 1 ([`CrossbarPdipSolver`]) and the large-scale Algorithm 2 ([`LargeScaleSolver`]), plus the §3.2 negative-coefficient transform |
//! | Analog NoC | [`noc`] | Hierarchical & mesh tile fabrics ([`TiledCrossbar`]) |
//! | Crossbar arrays | [`crossbar`] | The analog array simulator, 8-bit converters, cost ledger |
//! | Devices | [`device`] | Memristor models, pulse programming, process variation |
//! | LP toolkit | [`lp`] | Canonical problems, duals, random + domain workloads |
//! | Software baselines | [`solvers`] | Dense PDIP, normal-equations PDIP, simplex |
//! | Linear algebra | [`linalg`] | Dense matrices, blocked LU, iterative methods |
//!
//! # Quickstart
//!
//! ```
//! use memlp::prelude::*;
//!
//! // A random feasible LP in the paper's canonical form (§4.2 workload).
//! let lp = RandomLp::paper(16, 7).feasible();
//!
//! // Solve it on simulated crossbar hardware with 10% process variation.
//! let solver = CrossbarPdipSolver::new(
//!     CrossbarConfig::paper_default().with_variation(10.0),
//!     CrossbarSolverOptions::default(),
//! );
//! let result = solver.solve(&lp);
//! assert_eq!(result.solution.status, LpStatus::Optimal);
//!
//! // Cross-check against the software reference.
//! let reference = NormalEqPdip::default().solve(&lp);
//! let rel = (result.solution.objective - reference.objective).abs()
//!     / (1.0 + reference.objective.abs());
//! assert!(rel < 0.1);
//!
//! // And inspect the estimated hardware cost.
//! println!("run {:.3} ms, {}", result.ledger.run_time_s() * 1e3, result.ledger);
//! ```

pub use memlp_core as core;
pub use memlp_crossbar as crossbar;
pub use memlp_device as device;
pub use memlp_linalg as linalg;
pub use memlp_lp as lp;
pub use memlp_noc as noc;
pub use memlp_solvers as solvers;

pub use memlp_core::{
    CrossbarPdhgOptions, CrossbarPdhgSolver, CrossbarPdipSolver, CrossbarSolution,
    CrossbarSolverOptions, LargeScaleOptions, LargeScaleSolver, RecoveryEvent, RecoveryPolicy,
    RecoveryReport, SignSplit,
};
pub use memlp_crossbar::{CostLedger, Crossbar, CrossbarConfig, FaultModel};
pub use memlp_noc::{NocConfig, TiledCrossbar, Topology};

/// The most common imports in one place.
pub mod prelude {
    pub use memlp_core::{
        CrossbarPdhgOptions, CrossbarPdhgSolver, CrossbarPdipSolver, CrossbarSolution,
        CrossbarSolverOptions, LargeScaleOptions, LargeScaleSolver, RecoveryEvent, RecoveryPolicy,
        RecoveryReport, SignSplit,
    };
    pub use memlp_crossbar::{
        CostLedger, Crossbar, CrossbarConfig, FaultModel, Fidelity, ReadoutMode,
    };
    pub use memlp_device::{CostParams, DeviceParams, VariationModel};
    pub use memlp_linalg::{LuFactors, Matrix};
    pub use memlp_lp::{domains, generator::RandomLp, LpProblem, LpSolution, LpStatus};
    pub use memlp_noc::{NocConfig, TiledCrossbar, Topology};
    pub use memlp_solvers::{
        Budget, BudgetCause, Deadline, DensePdip, IterationDeadline, LpSolver, MehrotraPdip,
        NormalEqPdip, PdhgOptions, PdhgSolver, PdipOptions, Simplex, SolvePath,
    };
}
