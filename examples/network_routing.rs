//! Network routing: the paper's first motivating application.
//!
//! Encodes max-flow on a random layered network as a canonical-form LP and
//! solves it three ways — simplex (exact), software PDIP, and the memristor
//! crossbar solver — comparing the maximum flow each one finds.
//!
//! ```sh
//! cargo run --release --example network_routing
//! ```

use memlp::prelude::*;
use memlp_lp::domains::{max_flow_lp, MaxFlowNetwork};

fn main() {
    // The classic diamond network first: known max flow = 5.
    let diamond = MaxFlowNetwork::diamond();
    let lp = max_flow_lp(&diamond).expect("diamond is well-formed");
    let exact = Simplex::default().solve(&lp);
    println!(
        "diamond network: simplex max flow = {:.4} (expected 5)",
        exact.objective
    );

    // Now a random layered network.
    let net = MaxFlowNetwork::random_layered(3, 4, 99);
    let lp = max_flow_lp(&net).expect("generated network is well-formed");
    println!(
        "\nlayered network: {} nodes, {} edges → LP with {} constraints × {} variables",
        net.nodes,
        net.edges.len(),
        lp.num_constraints(),
        lp.num_vars()
    );

    let simplex = Simplex::default().solve(&lp);
    println!(
        "  simplex:        flow {:.4} ({} pivots)",
        simplex.objective, simplex.iterations
    );

    let pdip = NormalEqPdip::default().solve(&lp);
    println!(
        "  software PDIP:  flow {:.4} ({} iterations)",
        pdip.objective, pdip.iterations
    );

    // The conservation rows make this LP's coefficients mixed-sign, so the
    // §3.2 negative-coefficient transform is exercised end to end. Note:
    // conservation is an equality encoded as an inequality *pair* with
    // b = 0, which pins the analog noise floor well above the paper's
    // random-workload levels — expect a coarser answer here than in the
    // §4.2-style benchmarks (an honest limitation of noisy analog LP
    // solving on degenerate programs).
    let solver = CrossbarPdipSolver::new(
        CrossbarConfig::paper_default()
            .with_variation(10.0)
            .with_seed(3),
        CrossbarSolverOptions::default(),
    );
    let hw = solver.solve(&lp);
    println!(
        "  crossbar (10%): flow {:.4} ({} iterations, {} retries, run {:.3} ms)",
        hw.solution.objective,
        hw.solution.iterations,
        hw.retries_used,
        hw.ledger.run_time_s() * 1e3
    );

    let rel = (hw.solution.objective - simplex.objective).abs() / (1.0 + simplex.objective.abs());
    println!("\ncrossbar vs simplex relative error: {:.2}%", rel * 100.0);
}
