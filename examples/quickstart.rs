//! Quickstart: solve one linear program on simulated memristor crossbar
//! hardware and compare it against the software references.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use memlp::prelude::*;

fn main() {
    // A random feasible LP in the paper's §4.2 style: m = 64 constraints,
    // n = m/3 variables, mixed-sign coefficients.
    let lp = RandomLp::paper(64, 2026).feasible();
    println!(
        "problem: {} constraints × {} variables (mixed-sign A)",
        lp.num_constraints(),
        lp.num_vars()
    );

    // Software reference (the workspace's `linprog` stand-in).
    let reference = NormalEqPdip::default().solve(&lp);
    println!("\n[software reference] {reference}");

    // The crossbar solver, at three process-variation levels.
    for var in [0.0, 10.0, 20.0] {
        let solver = CrossbarPdipSolver::new(
            CrossbarConfig::paper_default()
                .with_variation(var)
                .with_seed(7),
            CrossbarSolverOptions::default(),
        );
        let result = solver.solve(&lp);
        let rel = (result.solution.objective - reference.objective).abs()
            / (1.0 + reference.objective.abs());
        println!(
            "\n[crossbar, {var:>4.0}% variation] {}\n  relative error vs reference: {:.3}%\n  estimated hardware: run {:.3} ms, setup {:.3} ms, energy {:.3} mJ\n  activity: {}",
            result.solution,
            rel * 100.0,
            result.ledger.run_time_s() * 1e3,
            result.ledger.setup_time_s() * 1e3,
            result.ledger.energy_j(&CostParams::default()) * 1e3,
            result.ledger
        );
    }
}
