//! Production scheduling: the paper's second motivating application.
//!
//! A multi-period production plan (shared machine capacity, per-product
//! demand caps, profit maximization) is an all-non-negative LP — the one
//! class a memristor crossbar can hold *without* the §3.2 transform — so
//! this example also reports how many compensation variables were needed.
//!
//! ```sh
//! cargo run --release --example production_scheduling
//! ```

use memlp::prelude::*;
use memlp_lp::domains::{production_schedule_lp, ProductionPlan};

fn main() {
    let plan = ProductionPlan::random(6, 4, 11);
    let lp = production_schedule_lp(&plan).expect("plan is valid");
    println!(
        "plan: {} periods × {} products → LP with {} constraints × {} variables",
        plan.periods,
        plan.products,
        lp.num_constraints(),
        lp.num_vars()
    );
    let split = SignSplit::split(lp.a());
    println!(
        "constraint matrix is non-negative: {} (compensation variables needed: {})",
        lp.a().is_nonnegative(),
        split.num_compensations()
    );

    let reference = NormalEqPdip::default().solve(&lp);
    println!(
        "\nsoftware optimum: profit {:.2} in {} iterations",
        reference.objective, reference.iterations
    );

    for var in [0.0, 5.0, 10.0, 20.0] {
        let solver = CrossbarPdipSolver::new(
            CrossbarConfig::paper_default()
                .with_variation(var)
                .with_seed(5),
            CrossbarSolverOptions::default(),
        );
        let hw = solver.solve(&lp);
        let rel =
            (hw.solution.objective - reference.objective).abs() / (1.0 + reference.objective.abs());
        println!(
            "crossbar {var:>4.0}% variation: profit {:.2} ({:.2}% off), {} iterations, run {:.3} ms",
            hw.solution.objective,
            rel * 100.0,
            hw.solution.iterations,
            hw.ledger.run_time_s() * 1e3
        );
    }

    // Show the schedule from the ideal-hardware run.
    let solver = CrossbarPdipSolver::new(
        CrossbarConfig::paper_default().with_seed(5),
        CrossbarSolverOptions::default(),
    );
    let hw = solver.solve(&lp);
    println!("\nschedule (rows = periods, columns = products, units):");
    for t in 0..plan.periods {
        let row: Vec<String> = (0..plan.products)
            .map(|p| format!("{:6.1}", hw.solution.x[t * plan.products + p]))
            .collect();
        println!("  t{t}: {}", row.join(" "));
    }
}
