//! Infeasibility detection (paper §4.4): one of the crossbar solver's
//! headline wins is detecting infeasible programs far faster than software
//! — the dual diverges within a handful of cheap analog iterations, and the
//! §3.2 relaxed constraint check `A·x ⪯ α·b` certifies the verdict.
//!
//! ```sh
//! cargo run --release --example infeasibility_detection
//! ```

use memlp::prelude::*;
use std::time::Instant;

fn main() {
    let m = 96;
    println!("m = {m} constraints, n = {} variables\n", m / 3);

    for (label, infeasible) in [("feasible", false), ("infeasible", true)] {
        let gen = RandomLp::paper(m, 4242);
        let lp = if infeasible {
            gen.infeasible()
        } else {
            gen.feasible()
        };

        let t0 = Instant::now();
        let sw = NormalEqPdip::default().solve(&lp);
        let sw_wall = t0.elapsed();

        let solver = CrossbarPdipSolver::new(
            CrossbarConfig::paper_default()
                .with_variation(10.0)
                .with_seed(1),
            CrossbarSolverOptions::default(),
        );
        let hw = solver.solve(&lp);

        println!("[{label}]");
        println!(
            "  software: {:?} in {} iterations ({:.2} ms wall)",
            sw.status,
            sw.iterations,
            sw_wall.as_secs_f64() * 1e3
        );
        println!(
            "  crossbar: {:?} in {} iterations (estimated hardware {:.3} ms, energy {:.3} mJ)",
            hw.solution.status,
            hw.solution.iterations,
            hw.ledger.run_time_s() * 1e3,
            hw.ledger.energy_j(&CostParams::default()) * 1e3,
        );
        assert_eq!(
            sw.status.is_optimal(),
            hw.solution.status.is_optimal(),
            "software and hardware must agree on feasibility"
        );
        println!();
    }

    // An unbounded program for completeness (dual infeasible).
    let lp = RandomLp::paper(m, 4242).unbounded();
    let sw = NormalEqPdip::default().solve(&lp);
    println!(
        "[unbounded] software verdict: {:?} in {} iterations",
        sw.status, sw.iterations
    );
}
