//! Large-scale operation (paper §3.4): the Algorithm-2 solver and the
//! analog NoC substrate that makes big matrices physically realizable.
//!
//! Part 1 runs the large-scale solver on an m = 512 program and reports the
//! estimated hardware cost. Part 2 exercises the NoC directly: a matrix too
//! big for one crossbar tile is partitioned over hierarchical and mesh
//! fabrics and the MVM/solve overheads are compared.
//!
//! ```sh
//! cargo run --release --example large_scale_noc
//! ```

use memlp::prelude::*;

fn main() {
    // ---- Part 1: Algorithm 2 on a large program. --------------------------
    let m = 512;
    let lp = RandomLp::paper(m, 77).feasible();
    println!("Algorithm 2 on m = {m} (n = {}):", lp.num_vars());

    let reference = NormalEqPdip::default().solve(&lp);
    let solver = LargeScaleSolver::new(
        CrossbarConfig::paper_default()
            .with_variation(10.0)
            .with_seed(9),
        LargeScaleOptions::default(),
    );
    let hw = solver.solve(&lp);
    let rel =
        (hw.solution.objective - reference.objective).abs() / (1.0 + reference.objective.abs());
    println!(
        "  {:?} in {} iterations ({} retries) — objective off by {:.2}%",
        hw.solution.status,
        hw.solution.iterations,
        hw.retries_used,
        rel * 100.0
    );
    println!(
        "  estimated hardware: run {:.2} ms, setup {:.2} ms, energy {:.2} J",
        hw.ledger.run_time_s() * 1e3,
        hw.ledger.setup_time_s() * 1e3,
        hw.ledger.energy_j(&CostParams::default()),
    );
    println!(
        "  largest single crossbar Algorithm 1 would need: {}×{} — Algorithm 2 needs {}×{}",
        4 * (lp.num_vars() + m),
        4 * (lp.num_vars() + m),
        lp.num_vars() + m,
        lp.num_vars() + m,
    );

    // ---- Part 2: the NoC fabrics. ------------------------------------------
    println!("\nTiled MVM across NoC fabrics (256×256 matrix, 64×64 tiles → 16 tiles):");
    let a = Matrix::from_fn(256, 256, |i, j| {
        let base = 0.1 + ((i * 131 + j * 37) % 29) as f64 * 0.03;
        if i == j {
            base + 8.0
        } else {
            base
        }
    });
    let x: Vec<f64> = (0..256).map(|i| ((i as f64) * 0.13).cos()).collect();
    let exact = a.matvec(&x);

    for (name, noc) in [
        ("hierarchical", NocConfig::hierarchical()),
        ("mesh", NocConfig::mesh()),
    ] {
        let mut tiled = TiledCrossbar::program(&a, 64, CrossbarConfig::paper_default(), noc)
            .expect("matrix fits the tile grid");
        let y = tiled.mvm(&x).expect("shapes match");
        let err = y
            .iter()
            .zip(&exact)
            .map(|(g, w)| (g - w).abs())
            .fold(0.0f64, f64::max)
            / exact.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let ledger = tiled.ledger();
        println!(
            "  {name:>12}: {} tiles, max rel error {:.3e}, noc transfers {}, run {:.3} µs",
            tiled.tile_count(),
            err,
            ledger.counts().noc_transfers,
            ledger.run_time_s() * 1e6,
        );
    }
}
