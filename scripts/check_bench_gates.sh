#!/usr/bin/env sh
# Shared CI bench gate: every BENCH_*.json artifact carries a top-level
# "gate_pass" boolean asserted by the bench binary itself; this script is
# the single grep CI jobs call instead of per-job one-liners.
#
# Usage: scripts/check_bench_gates.sh BENCH_foo.json [BENCH_bar.json ...]
#        scripts/check_bench_gates.sh            # checks every BENCH_*.json
set -eu

cd "$(dirname "$0")/.."

if [ "$#" -gt 0 ]; then
    files="$*"
else
    files=$(ls BENCH_*.json 2>/dev/null || true)
fi

if [ -z "$files" ]; then
    echo "check_bench_gates: no BENCH_*.json artifacts found" >&2
    exit 1
fi

fail=0
for f in $files; do
    if [ ! -f "$f" ]; then
        echo "FAIL $f: artifact missing" >&2
        fail=1
    elif ! grep -q '"gate_pass": *true' "$f"; then
        echo "FAIL $f: gate_pass is not true" >&2
        fail=1
    else
        echo "ok   $f"
    fi
done
exit $fail
