//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so this
//! path dependency reimplements the subset of the proptest v1 API that the
//! workspace's property tests use: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`/`boxed`, range and tuple strategies,
//! [`collection::vec`], [`arbitrary::any`], and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` / `prop_oneof!`
//! macros.
//!
//! Differences from upstream are deliberate simplifications: cases are drawn
//! from a deterministic per-test RNG stream (seeded from the test name) and
//! failing inputs are reported but not shrunk. That trades minimal
//! counterexamples for zero dependencies, which is what this build
//! environment requires.

pub mod test_runner {
    /// Per-test configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config that runs `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was filtered out by `prop_assume!` (does not count
        /// against the budget of successful cases).
        Reject(String),
        /// A `prop_assert!` failed.
        Fail(String),
    }

    /// The RNG handed to strategies. Deterministic per test name.
    pub type TestRng = rand::rngs::StdRng;

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drives one property: keeps generating cases until `config.cases`
    /// succeed, a case fails (panics with its message), or the rejection
    /// budget is exhausted.
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        use rand::SeedableRng;
        let mut rng = TestRng::seed_from_u64(fnv1a(name));
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let max_rejects = config.cases as u64 * 64 + 256;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        assert!(
                            passed > 0,
                            "proptest '{name}': every generated case was rejected \
                             (last prop_assume: {why})"
                        );
                        // Enough evidence gathered; further cases are too
                        // expensive to find under this assume filter.
                        break;
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed at case {passed} \
                         (after {rejected} rejects): {msg}"
                    );
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Upstream strategies produce shrinkable value *trees*; this stand-in
    /// generates plain values directly.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Uses each generated value to pick a follow-on strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives; backs `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`; panics when empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::Rng;
            let idx = rng.random_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            use rand::Rng;
            rng.random_range(self.start..self.end)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            use rand::Rng;
            rng.random_range(*self.start()..=*self.end())
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.random_range(self.start..self.end)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.random_range(*self.start()..=*self.end())
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted length specifications for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range {r:?}");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range {r:?}");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{BoxedStrategy, Strategy};
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy, used via [`any`].
    pub trait Arbitrary: Sized + 'static {
        /// The canonical strategy for this type.
        fn arbitrary_strategy() -> BoxedStrategy<Self>;
    }

    struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            use rand::Rng;
            rng.random::<bool>()
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_strategy() -> BoxedStrategy<bool> {
            AnyBool.boxed()
        }
    }

    /// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        T::arbitrary_strategy()
    }
}

/// The usual glob-import surface: strategies, config, and macros.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}: {}", left, right, format!($($fmt)+)),
            ));
        }
    }};
}

/// Rejects the current case (without counting it) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a test that runs `body` against generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_parse!(@pat [] [] [$($args)*] { $name ($config) $body });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

// Argument-list parser for `proptest!`. Arguments have the shape
// `pattern in strategy, ...` where the pattern may be several tokens
// (`mut values`, `(a, b)`), so a token-muncher accumulates pattern tokens
// until the `in` keyword and strategy tokens until a top-level comma.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_parse {
    // Pattern accumulation ends at `in`.
    (@pat [$($done:tt)*] [$($pat:tt)*] [in $($rest:tt)*] $fin:tt) => {
        $crate::__proptest_parse!(@strat [$($done)*] [$($pat)*] [] [$($rest)*] $fin)
    };
    (@pat [$($done:tt)*] [$($pat:tt)*] [$tok:tt $($rest:tt)*] $fin:tt) => {
        $crate::__proptest_parse!(@pat [$($done)*] [$($pat)* $tok] [$($rest)*] $fin)
    };
    // Strategy accumulation ends at a top-level comma or end of input.
    (@strat [$($done:tt)*] $pat:tt [$($strat:tt)*] [, $($rest:tt)*] $fin:tt) => {
        $crate::__proptest_parse!(@next [$($done)* { $pat [$($strat)*] }] [$($rest)*] $fin)
    };
    (@strat [$($done:tt)*] $pat:tt [$($strat:tt)*] [$tok:tt $($rest:tt)*] $fin:tt) => {
        $crate::__proptest_parse!(@strat [$($done)*] $pat [$($strat)* $tok] [$($rest)*] $fin)
    };
    (@strat [$($done:tt)*] $pat:tt [$($strat:tt)*] [] $fin:tt) => {
        $crate::__proptest_parse!(@emit [$($done)* { $pat [$($strat)*] }] $fin)
    };
    // After a comma: either a trailing comma (done) or another argument.
    (@next [$($done:tt)*] [] $fin:tt) => {
        $crate::__proptest_parse!(@emit [$($done)*] $fin)
    };
    (@next [$($done:tt)*] [$($rest:tt)+] $fin:tt) => {
        $crate::__proptest_parse!(@pat [$($done)*] [] [$($rest)+] $fin)
    };
    // All arguments parsed: build the combined tuple strategy and run.
    (@emit [$({ [$($pat:tt)*] [$($strat:tt)*] })+] { $name:ident ($config:expr) $body:block }) => {
        #[allow(unused_parens)]
        let __strategy = ($(($($strat)*),)+);
        let __config = $config;
        $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
            let ($($($pat)*,)+) = $crate::strategy::Strategy::generate(&__strategy, __rng);
            $body
            ::core::result::Result::Ok(())
        });
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        let strat = crate::collection::vec(-2.0f64..2.0, 3..7);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (-2.0..2.0).contains(x)));
        }
    }

    #[test]
    fn map_flat_map_compose() {
        let mut rng = TestRng::seed_from_u64(2);
        let strat = (1usize..=4)
            .prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn oneof_only_yields_listed_values() {
        let mut rng = TestRng::seed_from_u64(3);
        let strat = prop_oneof![Just(1u32), Just(5u32), Just(9u32)];
        for _ in 0..100 {
            assert!([1, 5, 9].contains(&strat.generate(&mut rng)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro handles multi-token patterns, tuples, assume, and
        /// trailing commas.
        #[test]
        fn macro_roundtrip(
            mut values in crate::collection::vec(-1.0f64..1.0, 1..8),
            (lo, hi) in (0u32..5, 5u32..10),
            flag in any::<bool>(),
        ) {
            prop_assume!(!values.is_empty());
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(values.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(lo < hi, "{} vs {}", lo, hi);
            prop_assert_eq!(flag || !flag, true);
        }
    }
}
