//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access to a
//! crates registry, so the handful of `rand` 0.9 APIs the workspace uses are
//! reimplemented here as a path dependency: [`rngs::StdRng`] (seeded
//! deterministically via [`SeedableRng::seed_from_u64`]), and the
//! [`Rng::random_range`] / [`Rng::random`] sampling methods over the range
//! and value types that appear in the workspace.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), which is fine for this
//! workspace: nothing depends on the exact stream values, only on
//! determinism for a given seed (every simulator test fixes its seeds and
//! asserts through tolerances, not golden values).

use std::ops::{Range, RangeInclusive};

/// A deterministic pseudo-random generator (xoshiro256++).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    #[inline]
    fn step(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Low-level interface: a source of uniformly distributed `u64` words.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for Xoshiro256 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from an integer seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is derived from `state` by a
    /// SplitMix64 expansion (distinct seeds give well-separated states).
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        Xoshiro256 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// A range (or other distribution descriptor) that can be sampled.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end,
            "cannot sample empty range {:?}",
            self
        );
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range {:?}", self);
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8);

/// A type with a canonical "uniform over the whole domain" distribution,
/// backing [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws a value from the type's canonical uniform distribution.
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard deterministic generator.
    ///
    /// Unlike upstream (ChaCha12) this is xoshiro256++; see the crate docs
    /// for why the stream difference is acceptable here.
    pub type StdRng = super::Xoshiro256;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&v));
            let w: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&w));
        }
    }

    #[test]
    fn usize_range_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.random_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_samples_look_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: usize = rng.random_range(3..3usize);
    }
}
