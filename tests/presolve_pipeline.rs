//! Presolve → solve → restore pipeline across the stack.

use memlp::prelude::*;
use memlp_linalg::Matrix;
use memlp_lp::{presolve, Presolved};

/// Builds an LP with planted presolve fodder around a meaningful core:
/// redundant zero rows and variables that presolve should fix at zero.
fn padded_problem() -> (LpProblem, f64) {
    // Core: max x0 + x1, x0 + 2 x1 ≤ 4, 3 x0 + x1 ≤ 6 → optimum 2.8.
    // Padding: x2 with c2 = −5 and non-negative column (fixable), one zero
    // row (droppable).
    let a = Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[3.0, 1.0, 0.0], &[0.0, 0.0, 0.0]]).unwrap();
    let lp = LpProblem::new(a, vec![4.0, 6.0, 7.0], vec![1.0, 1.0, -5.0]).unwrap();
    (lp, 2.8)
}

#[test]
fn presolve_then_software_solver_matches_direct() {
    let (lp, expect) = padded_problem();
    let direct = Simplex::default().solve(&lp);
    assert!(direct.status.is_optimal());
    assert!((direct.objective - expect).abs() < 1e-9);

    match presolve(&lp) {
        Presolved::Reduced {
            lp: reduced,
            restore,
        } => {
            assert!(reduced.num_vars() < lp.num_vars(), "x2 should be fixed");
            assert!(
                reduced.num_constraints() < lp.num_constraints(),
                "zero row dropped"
            );
            let sol = Simplex::default().solve(&reduced);
            assert!(sol.status.is_optimal());
            let x = restore.restore_x(&sol.x);
            assert_eq!(x.len(), lp.num_vars());
            assert!(lp.is_feasible(&x, 1e-9));
            assert!((lp.objective(&x) - expect).abs() < 1e-9);
            let y = restore.restore_y(&sol.y, lp.num_constraints());
            assert_eq!(y.len(), lp.num_constraints());
            assert_eq!(y[2], 0.0, "dropped row keeps zero multiplier");
        }
        other => panic!("expected a reduction, got {other:?}"),
    }
}

#[test]
fn presolve_then_crossbar_solver_matches_direct() {
    let (lp, expect) = padded_problem();
    let Presolved::Reduced {
        lp: reduced,
        restore,
    } = presolve(&lp)
    else {
        panic!("expected a reduction");
    };
    let hw = CrossbarPdipSolver::new(
        CrossbarConfig::paper_default()
            .with_variation(5.0)
            .with_seed(8),
        CrossbarSolverOptions::default(),
    )
    .solve(&reduced);
    assert!(hw.solution.status.is_optimal(), "{}", hw.solution);
    let x = restore.restore_x(&hw.solution.x);
    let rel = (lp.objective(&x) - expect).abs() / (1.0 + expect);
    assert!(rel < 0.06, "restored objective off by {rel}");
    assert!(lp.satisfies_relaxed_scaled(&x, 1.06));
}

#[test]
fn presolve_certificates_agree_with_solvers() {
    // Unbounded via a free-ride variable.
    let a = Matrix::from_rows(&[&[1.0, -1.0]]).unwrap();
    let lp = LpProblem::new(a, vec![4.0], vec![0.0, 1.0]).unwrap();
    assert_eq!(presolve(&lp), Presolved::Unbounded);
    assert_eq!(Simplex::default().solve(&lp).status, LpStatus::Unbounded);

    // Infeasible via an impossible zero row.
    let a = Matrix::from_rows(&[&[0.0], &[1.0]]).unwrap();
    let lp = LpProblem::new(a, vec![-1.0, 3.0], vec![1.0]).unwrap();
    assert_eq!(presolve(&lp), Presolved::Infeasible);
    assert_eq!(Simplex::default().solve(&lp).status, LpStatus::Infeasible);
}

#[test]
fn presolve_shrinks_random_sparse_instances_without_changing_the_answer() {
    for seed in [3u64, 5, 9] {
        let gen = memlp_lp::generator::RandomLp {
            density: 0.4,
            ..memlp_lp::generator::RandomLp::paper(24, seed)
        };
        let lp = gen.feasible();
        let direct = NormalEqPdip::default().solve(&lp);
        match presolve(&lp) {
            Presolved::Reduced {
                lp: reduced,
                restore,
            } => {
                let sol = NormalEqPdip::default().solve(&reduced);
                assert!(sol.status.is_optimal(), "seed {seed}");
                let x = restore.restore_x(&sol.x);
                let rel =
                    (lp.objective(&x) - direct.objective).abs() / (1.0 + direct.objective.abs());
                assert!(rel < 1e-6, "seed {seed}: {rel}");
            }
            Presolved::Unbounded | Presolved::Infeasible => {
                panic!("seed {seed}: generator guarantees a bounded feasible LP")
            }
        }
    }
}
