//! Cross-crate property tests: the crossbar solvers as black boxes.

use memlp::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any §4.2-style feasible instance is solved by Algorithm 1 to within
    /// the paper's accuracy envelope.
    #[test]
    fn alg1_tracks_reference(m in 2usize..14, seed in 0u64..500, var in prop_oneof![Just(0.0), Just(5.0), Just(10.0)]) {
        let m = m * 4; // 8..=52 constraints
        let lp = RandomLp::paper(m, seed).feasible();
        let reference = NormalEqPdip::default().solve(&lp);
        prop_assume!(reference.status.is_optimal());
        let r = CrossbarPdipSolver::new(
            CrossbarConfig::paper_default().with_variation(var).with_seed(seed),
            CrossbarSolverOptions::default(),
        ).solve(&lp);
        // The solver may *decline* a pathological run (its acceptance
        // gates reject inconsistent iterates rather than return them); it
        // must never falsely certify infeasibility, and anything it does
        // accept must be accurate.
        prop_assert!(r.solution.status != LpStatus::Infeasible,
            "false infeasibility at m={} var={}", m, var);
        prop_assume!(r.solution.status.is_optimal());
        let rel = (r.solution.objective - reference.objective).abs() / (1.0 + reference.objective.abs());
        // Accepted runs are bounded by ~2.5× the stall-acceptance floor
        // (accept_floor = 8%); mean errors are far lower (see Fig 5a).
        prop_assert!(rel < 0.20, "error {} at m={} var={}", rel, m, var);
    }

    /// The §3.2 transform preserves the operator for arbitrary matrices.
    #[test]
    fn sign_split_preserves_operator(
        rows in 1usize..8,
        cols in 1usize..8,
        entries in proptest::collection::vec(-5.0f64..5.0, 64),
        xs in proptest::collection::vec(-3.0f64..3.0, 8),
    ) {
        let a = Matrix::from_fn(rows, cols, |i, j| entries[(i * cols + j) % entries.len()]);
        let split = SignSplit::split(&a);
        prop_assert!(split.pos.is_nonnegative());
        prop_assert!(split.neg.is_nonnegative());
        let x = &xs[..cols];
        let direct = a.matvec(x);
        let via_split = split.apply(x);
        for (d, s) in direct.iter().zip(&via_split) {
            prop_assert!((d - s).abs() < 1e-9);
        }
        prop_assert_eq!(split.reconstruct(), a);
    }

    /// Solutions returned as optimal respect the §3.2 relaxed constraints.
    #[test]
    fn optimal_solutions_are_alpha_feasible(m in 3usize..10, seed in 0u64..200) {
        let m = m * 4;
        let lp = RandomLp::paper(m, seed).feasible();
        let r = CrossbarPdipSolver::new(
            CrossbarConfig::paper_default().with_variation(10.0).with_seed(seed),
            CrossbarSolverOptions::default(),
        ).solve(&lp);
        prop_assume!(r.solution.status.is_optimal());
        // The solver's stall acceptance enforces α = 1 + 2·accept_floor
        // (= 1.16 at defaults); assert it with a small observation margin.
        prop_assert!(lp.satisfies_relaxed_scaled(&r.solution.x, 1.20));
    }

    /// Crossbar MVM error is bounded by converter resolution plus variation.
    #[test]
    fn crossbar_mvm_error_bounded(side in 2usize..10, seed in 0u64..100, var in 0.0f64..15.0) {
        let a = Matrix::from_fn(side, side, |i, j| 0.05 + ((i * 13 + j * 7 + seed as usize) % 17) as f64 * 0.1);
        let cfg = CrossbarConfig::paper_default().with_variation(var).with_seed(seed);
        let mut xb = Crossbar::new(side, cfg).unwrap();
        xb.program(&a).unwrap();
        let x = vec![1.0; side];
        let y = xb.mvm(&x).unwrap();
        let exact = a.matvec(&x);
        let scale = exact.iter().fold(0.0f64, |mx, v| mx.max(v.abs()));
        for (got, want) in y.iter().zip(&exact) {
            // Row error bound: variation (relative, averaged over the row
            // it can only help, so take it fully) plus two quantization
            // steps.
            let bound = var / 100.0 * scale + 2.0 * scale / 127.0 + 1e-9;
            prop_assert!((got - want).abs() <= bound, "{} vs {} (bound {})", got, want, bound);
        }
    }
}
