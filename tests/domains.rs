//! The paper's motivating domains (routing, scheduling, transportation)
//! run through the full stack.

use memlp::prelude::*;
use memlp_lp::domains::{
    assignment_lp, max_flow_lp, production_schedule_lp, transportation_lp, AssignmentProblem,
    MaxFlowNetwork, ProductionPlan, TransportationProblem,
};

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / (1.0 + b.abs())
}

#[test]
fn diamond_max_flow_on_crossbar() {
    let lp = max_flow_lp(&MaxFlowNetwork::diamond()).unwrap();
    let exact = Simplex::default().solve(&lp);
    assert!(
        (exact.objective - 5.0).abs() < 1e-9,
        "diamond max flow is 5"
    );

    let hw = CrossbarPdipSolver::new(
        CrossbarConfig::paper_default().with_seed(3),
        CrossbarSolverOptions::default(),
    )
    .solve(&lp);
    assert!(hw.solution.status.is_optimal(), "{}", hw.solution);
    assert!(
        rel(hw.solution.objective, exact.objective) < 0.08,
        "flow {}",
        hw.solution.objective
    );
}

#[test]
fn production_plan_is_crossbar_native() {
    // All-non-negative A: zero compensation variables.
    let plan = ProductionPlan::random(4, 3, 8);
    let lp = production_schedule_lp(&plan).unwrap();
    let split = SignSplit::split(lp.a());
    assert_eq!(split.num_compensations(), 0);

    let reference = NormalEqPdip::default().solve(&lp);
    let hw = CrossbarPdipSolver::new(
        CrossbarConfig::paper_default()
            .with_variation(5.0)
            .with_seed(4),
        CrossbarSolverOptions::default(),
    )
    .solve(&lp);
    assert!(hw.solution.status.is_optimal(), "{}", hw.solution);
    assert!(rel(hw.solution.objective, reference.objective) < 0.06);
    // Plan must be implementable: feasibility within hardware tolerance.
    assert!(lp.satisfies_relaxed_scaled(&hw.solution.x, 1.05));
}

#[test]
fn transportation_exercises_negative_transform() {
    let tp = TransportationProblem::random(3, 4, 17);
    let lp = transportation_lp(&tp).unwrap();
    assert!(!lp.a().is_nonnegative(), "demand rows must be negative");
    let split = SignSplit::split(lp.a());
    assert!(split.num_compensations() > 0);

    let reference = Simplex::default().solve(&lp);
    assert!(reference.status.is_optimal());
    let hw = CrossbarPdipSolver::new(
        CrossbarConfig::paper_default().with_seed(9),
        CrossbarSolverOptions::default(),
    )
    .solve(&lp);
    assert!(hw.solution.status.is_optimal(), "{}", hw.solution);
    assert!(
        rel(hw.solution.objective, reference.objective) < 0.08,
        "cost {} vs {}",
        hw.solution.objective,
        reference.objective
    );
}

#[test]
fn scheduling_profit_monotone_in_capacity() {
    // Sanity structure test across the toolkit: more machine hours can
    // never reduce optimal profit.
    let mut plan = ProductionPlan::random(3, 3, 21);
    let base = Simplex::default()
        .solve(&production_schedule_lp(&plan).unwrap())
        .objective;
    for c in &mut plan.capacity {
        *c *= 2.0;
    }
    let doubled = Simplex::default()
        .solve(&production_schedule_lp(&plan).unwrap())
        .objective;
    assert!(doubled >= base - 1e-9, "profit dropped: {base} → {doubled}");
}

#[test]
fn assignment_lp_relaxation_is_integral() {
    // Assignment constraint matrices are totally unimodular: the LP optimum
    // equals the combinatorial optimum. Simplex must hit it exactly, and
    // the crossbar solver must land within its noise budget.
    for seed in [1u64, 2, 3] {
        let ap = AssignmentProblem::random(5, seed);
        let lp = assignment_lp(&ap).unwrap();
        let exact = ap.brute_force_optimum();
        let lp_opt = Simplex::default().solve(&lp);
        assert!(lp_opt.status.is_optimal());
        assert!(
            (lp_opt.objective - exact).abs() < 1e-9,
            "LP relaxation must be integral: {} vs {exact}",
            lp_opt.objective
        );

        let hw = CrossbarPdipSolver::new(
            CrossbarConfig::paper_default()
                .with_variation(5.0)
                .with_seed(seed + 2),
            CrossbarSolverOptions::default(),
        )
        .solve(&lp);
        assert!(
            hw.solution.status.is_optimal(),
            "seed {seed}: {}",
            hw.solution
        );
        assert!(
            rel(hw.solution.objective, exact) < 0.08,
            "seed {seed}: crossbar {} vs exact {exact}",
            hw.solution.objective
        );
    }
}

#[test]
fn max_flow_bounded_by_cut_capacity() {
    let net = MaxFlowNetwork::random_layered(3, 3, 31);
    let lp = max_flow_lp(&net).unwrap();
    let sol = Simplex::default().solve(&lp);
    assert!(sol.status.is_optimal());
    // Source-adjacent edge capacities form a cut.
    let source_cap: f64 = net
        .edges
        .iter()
        .filter(|(f, _, _)| *f == 0)
        .map(|(_, _, c)| c)
        .sum();
    assert!(sol.objective <= source_cap + 1e-9);
    assert!(sol.objective >= 0.0);
}
