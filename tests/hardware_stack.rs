//! Hardware-stack integration: device → crossbar → NoC consistency.

use memlp::prelude::*;
use memlp_device::{Memristor, PulseProgrammer};

#[test]
fn device_programming_supports_crossbar_precision() {
    // The crossbar maps coefficients onto [g_off, g_on]; the pulse
    // programmer must reach arbitrary targets in that range within the
    // 8-bit tolerance the solver assumes.
    let params = DeviceParams::default();
    let mut programmer = PulseProgrammer::new(params);
    programmer.tolerance = 0.002; // half an 8-bit LSB of the conductance range
    for frac in [0.1, 0.35, 0.5, 0.75, 0.9] {
        let target = params.g_off() + frac * (params.g_on() - params.g_off());
        let mut device = Memristor::new(params);
        let report = programmer.program(&mut device, target);
        assert!(report.converged, "target fraction {frac}");
        assert!(
            (report.final_conductance - target).abs() / (params.g_on() - params.g_off())
                < 1.5 / 256.0,
            "8-bit precision missed at fraction {frac}"
        );
        assert!(
            report.pulses <= 64,
            "{} pulses is beyond the CostParams budget regime",
            report.pulses
        );
    }
}

#[test]
fn monolithic_and_tiled_crossbars_agree() {
    let a = Matrix::from_fn(12, 12, |i, j| {
        0.1 + ((i * 7 + j * 3) % 11) as f64 * 0.08 + if i == j { 3.0 } else { 0.0 }
    });
    let x: Vec<f64> = (0..12).map(|i| 0.2 + (i as f64) * 0.05).collect();

    let mut mono = Crossbar::new(12, CrossbarConfig::ideal()).unwrap();
    mono.program(&a).unwrap();
    let y_mono = mono.mvm(&x).unwrap();

    let mut tiled = TiledCrossbar::program(
        &a,
        5,
        CrossbarConfig::ideal(),
        NocConfig::hierarchical().with_buffer_noise(0.0),
    )
    .unwrap();
    let y_tiled = tiled.mvm(&x).unwrap();

    let exact = a.matvec(&x);
    for ((m, t), e) in y_mono.iter().zip(&y_tiled).zip(&exact) {
        assert!(
            (m - e).abs() < 2e-3 * e.abs().max(1.0),
            "mono {m} vs exact {e}"
        );
        assert!(
            (t - e).abs() < 2e-3 * e.abs().max(1.0),
            "tiled {t} vs exact {e}"
        );
    }
}

#[test]
fn circuit_fidelity_is_a_superset_of_functional_noise() {
    // Circuit mode adds g_off parasitics; with calibrated read-out the
    // result stays close but not identical to functional mode.
    let a = Matrix::from_fn(6, 6, |i, j| 0.5 + ((i + 2 * j) % 5) as f64 * 0.2);
    let x = vec![0.4; 6];
    let exact = a.matvec(&x);

    let mut func = Crossbar::new(6, CrossbarConfig::ideal()).unwrap();
    func.program(&a).unwrap();
    let yf = func.mvm(&x).unwrap();

    let mut circ = Crossbar::new(6, CrossbarConfig::ideal().circuit()).unwrap();
    circ.program(&a).unwrap();
    let yc = circ.mvm(&x).unwrap();

    for ((f, c), e) in yf.iter().zip(&yc).zip(&exact) {
        assert!((f - e).abs() / e.abs() < 0.01);
        assert!(
            (c - e).abs() / e.abs() < 0.03,
            "circuit parasitics too large: {c} vs {e}"
        );
    }
}

#[test]
fn ledger_composes_across_the_stack() {
    // Solve an LP and confirm the ledger's counters are self-consistent
    // with the solver's iteration count and the §3.5 cost structure.
    let lp = RandomLp::paper(32, 13).feasible();
    let r = CrossbarPdipSolver::new(
        CrossbarConfig::paper_default()
            .with_variation(5.0)
            .with_seed(2),
        CrossbarSolverOptions::default(),
    )
    .solve(&lp);
    assert!(r.solution.status.is_optimal());
    let c = r.ledger.counts();
    let n = lp.num_vars() as u64;
    let m = lp.num_constraints() as u64;
    let iters = r.solution.iterations as u64;

    assert_eq!(
        c.update_writes + c.skipped_writes,
        2 * (n + m) * (iters + 1),
        "O(N) updates per iteration (delta programming decides the written/skipped split)"
    );
    assert!(c.mvm_ops >= iters, "one r-derivation MVM per iteration");
    assert!(c.solve_ops <= c.mvm_ops, "at most one solve per MVM");
    assert!(c.adc_samples > 0 && c.dac_samples > 0);
    assert!(r.ledger.setup_time_s() > 0.0);
    assert!(r.ledger.run_time_s() > 0.0);
    let e = r.ledger.energy_j(&CostParams::default());
    assert!(
        e > r.ledger.dynamic_energy_j(),
        "static power must contribute"
    );
}

#[test]
fn energy_grows_with_variation_level() {
    // §4.4: both latency and energy grow with process variation (more
    // write-verify cycles and more iterations).
    let lp = RandomLp::paper(48, 17).feasible();
    let run = |var: f64| {
        let r = CrossbarPdipSolver::new(
            CrossbarConfig::paper_default()
                .with_variation(var)
                .with_seed(3),
            CrossbarSolverOptions::default(),
        )
        .solve(&lp);
        assert!(r.solution.status.is_optimal(), "var {var}");
        (
            r.ledger.run_time_s(),
            r.ledger.energy_j(&CostParams::default()),
        )
    };
    let (t0, e0) = run(0.0);
    let (t20, e20) = run(20.0);
    assert!(
        t20 > t0,
        "latency should grow with variation: {t0} vs {t20}"
    );
    assert!(e20 > e0, "energy should grow with variation: {e0} vs {e20}");
}

#[test]
fn seed_determinism_across_full_solves() {
    let lp = RandomLp::paper(24, 19).feasible();
    let run = || {
        CrossbarPdipSolver::new(
            CrossbarConfig::paper_default()
                .with_variation(10.0)
                .with_seed(42),
            CrossbarSolverOptions::default(),
        )
        .solve(&lp)
        .solution
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must reproduce the identical solve");
}
