//! End-to-end tests of the `memlp` command-line binary.

use std::process::Command;

fn memlp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_memlp"))
}

#[test]
fn generate_info_solve_pipeline() {
    let dir = std::env::temp_dir().join("memlp-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pipeline.lp");

    // generate
    let out = memlp()
        .args(["generate", "24", "--seed", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::write(&path, &out.stdout).unwrap();

    // info
    let out = memlp()
        .args(["info", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("constraints (m):        24"), "{text}");
    assert!(text.contains("variables (n):          8"), "{text}");

    // solve with every solver; a solver that reports success must agree
    // with the exact answer. (Algorithm 2 is allowed to *decline* — its
    // acceptance gate flags unreliable small-m runs rather than returning
    // a silently wrong optimum — but it must never succeed with a bad one.)
    let mut objectives = Vec::new();
    for solver in ["alg1", "alg2", "simplex", "pdip", "mehrotra"] {
        let out = memlp()
            .args([
                "solve",
                path.to_str().unwrap(),
                "--solver",
                solver,
                "--quiet",
            ])
            .output()
            .unwrap();
        if !out.status.success() {
            assert_eq!(solver, "alg2", "only alg2 may decline: {solver}");
            continue;
        }
        let text = String::from_utf8_lossy(&out.stdout);
        let obj: f64 = text
            .lines()
            .find_map(|l| l.strip_prefix("objective: "))
            .expect("objective line")
            .trim()
            .parse()
            .expect("numeric objective");
        objectives.push((solver, obj));
    }
    let reference = objectives.iter().find(|(s, _)| *s == "simplex").unwrap().1;
    for (solver, obj) in &objectives {
        let rel = (obj - reference).abs() / (1.0 + reference.abs());
        let budget = if *solver == "alg2" { 0.12 } else { 0.05 };
        assert!(rel < budget, "{solver}: {obj} vs simplex {reference}");
    }
}

#[test]
fn solve_reports_infeasible_with_nonzero_exit() {
    let dir = std::env::temp_dir().join("memlp-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("infeasible.lp");
    let out = memlp()
        .args(["generate", "16", "--seed", "5", "--infeasible"])
        .output()
        .unwrap();
    assert!(out.status.success());
    std::fs::write(&path, &out.stdout).unwrap();

    let out = memlp()
        .args([
            "solve",
            path.to_str().unwrap(),
            "--solver",
            "simplex",
            "--quiet",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "infeasible must exit non-zero");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("infeasible"), "{text}");
}

/// The fault knobs feed the recovery ladder: with 1% stuck cells and dead
/// lines the solve must still succeed (and say what the ladder did), while
/// the same defective hardware with `--recovery off` must fail.
#[test]
fn fault_flags_drive_the_recovery_ladder() {
    let dir = std::env::temp_dir().join("memlp-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("faulty.lp");
    let out = memlp()
        .args(["generate", "24", "--seed", "902"])
        .output()
        .unwrap();
    assert!(out.status.success());
    std::fs::write(&path, &out.stdout).unwrap();

    let fault_args = [
        "--solver",
        "alg1",
        "--seed",
        "2",
        "--stuck-rate",
        "0.01",
        "--dead-line-rate",
        "0.04",
        "--quiet",
    ];

    let out = memlp()
        .args(["solve", path.to_str().unwrap()])
        .args(fault_args)
        .args(["--recovery", "full"])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "recovery on must solve: {text}{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(text.contains("recovery:"), "{text}");
    assert!(text.contains("escalation"), "{text}");

    let out = memlp()
        .args(["solve", path.to_str().unwrap()])
        .args(fault_args)
        .args(["--recovery", "off"])
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "same defects with recovery off must fail: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Rates are validated up front: a probability above 1 is rejected.
    let out = memlp()
        .args(["solve", path.to_str().unwrap(), "--stuck-rate", "1.5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("fault"), "{err}");
}

/// `--path` selects the digital Newton factorization. Every valid value
/// must solve (and, unless quieted, report the factorization counters);
/// an unknown value must be rejected with the expected message.
#[test]
fn path_flag_selects_newton_factorization() {
    let dir = std::env::temp_dir().join("memlp-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("path-flag.lp");
    let out = memlp()
        .args(["generate", "24", "--seed", "11"])
        .output()
        .unwrap();
    assert!(out.status.success());
    std::fs::write(&path, &out.stdout).unwrap();

    let mut objectives = Vec::new();
    for mode in ["auto", "dense", "sparse"] {
        let out = memlp()
            .args([
                "solve",
                path.to_str().unwrap(),
                "--solver",
                "alg1",
                "--path",
                mode,
            ])
            .output()
            .unwrap();
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "--path {mode} must solve: {text}{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            text.contains("newton:") && text.contains("factorization"),
            "--path {mode} should report factorization counters: {text}"
        );
        let obj: f64 = text
            .lines()
            .find_map(|l| l.strip_prefix("objective: "))
            .expect("objective line")
            .trim()
            .parse()
            .expect("numeric objective");
        objectives.push(obj);
    }
    // Identical hardware seed → the paths agree on the optimum.
    for obj in &objectives[1..] {
        let rel = (obj - objectives[0]).abs() / (1.0 + objectives[0].abs());
        assert!(rel < 1e-6, "paths diverged: {objectives:?}");
    }

    // The software pdip honors the flag too.
    let out = memlp()
        .args([
            "solve",
            path.to_str().unwrap(),
            "--solver",
            "pdip",
            "--path",
            "sparse",
            "--quiet",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Unknown value → the parse error names the accepted set.
    let out = memlp()
        .args(["solve", path.to_str().unwrap(), "--path", "banded"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown solve path") && err.contains("expected auto, dense, or sparse"),
        "{err}"
    );
}

/// `--max-iters` / `--timeout-iters` degrade gracefully: the exhausted
/// budget is reported with a `degraded:` verdict, the best iterate is
/// still printed, and the exit code stays zero (a requested degradation
/// is not a failure). An ample budget must not change the result at all.
#[test]
fn budget_flags_degrade_gracefully() {
    let dir = std::env::temp_dir().join("memlp-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("budget.lp");
    let out = memlp()
        .args(["generate", "24", "--seed", "17"])
        .output()
        .unwrap();
    assert!(out.status.success());
    std::fs::write(&path, &out.stdout).unwrap();

    // Tiny iteration cap: degraded, zero exit, iterate still reported.
    let out = memlp()
        .args(["solve", path.to_str().unwrap(), "--max-iters", "2"])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "budget expiry must exit zero: {text}{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        text.contains("degraded:") && text.contains("iteration budget exhausted"),
        "{text}"
    );
    assert!(text.contains("objective:"), "{text}");

    // Tiny tick deadline: same contract, different cause.
    let out = memlp()
        .args(["solve", path.to_str().unwrap(), "--timeout-iters", "2"])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{text}");
    assert!(
        text.contains("degraded:") && text.contains("deadline exceeded"),
        "{text}"
    );

    // Ample budgets leave the solve untouched: no degraded line, and the
    // objective matches the unbudgeted run exactly.
    let unbudgeted = memlp()
        .args(["solve", path.to_str().unwrap(), "--quiet"])
        .output()
        .unwrap();
    assert!(unbudgeted.status.success());
    let ample = memlp()
        .args([
            "solve",
            path.to_str().unwrap(),
            "--quiet",
            "--max-iters",
            "100000",
            "--timeout-iters",
            "100000",
        ])
        .output()
        .unwrap();
    assert!(ample.status.success());
    let objective = |bytes: &[u8]| -> String {
        String::from_utf8_lossy(bytes)
            .lines()
            .find_map(|l| l.strip_prefix("objective: ").map(str::to_string))
            .expect("objective line")
    };
    assert!(!String::from_utf8_lossy(&ample.stdout).contains("degraded:"));
    assert_eq!(objective(&ample.stdout), objective(&unbudgeted.stdout));
}

/// Full serve lifecycle through the real binary: daemon up, warm repeat
/// solves through `client solve`, health, budget degradation over the
/// wire, and a graceful drain that stops the daemon.
#[test]
fn serve_and_client_round_trip() {
    use std::io::{BufRead, BufReader};

    let dir = std::env::temp_dir().join("memlp-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serve.lp");
    let out = memlp()
        .args(["generate", "16", "--seed", "29"])
        .output()
        .unwrap();
    assert!(out.status.success());
    std::fs::write(&path, &out.stdout).unwrap();

    // Daemon on an ephemeral port; the startup line announces the address.
    let mut server = memlp()
        .args(["serve", "--queue-depth", "4", "--variation", "5"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut lines = BufReader::new(server.stdout.take().unwrap()).lines();
    let first = lines.next().expect("startup line").unwrap();
    let addr = first
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {first}"))
        .to_string();

    // Cold then warm solve of the same family.
    let solve = |extra: &[&str]| {
        let out = memlp()
            .args(["client", &addr, "solve", path.to_str().unwrap()])
            .args(extra)
            .output()
            .unwrap();
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).to_string(),
        )
    };
    let (ok, cold) = solve(&["--family", "fam"]);
    assert!(ok, "{cold}");
    assert!(cold.contains("cold start"), "{cold}");
    let (ok, warm) = solve(&["--family", "fam"]);
    assert!(ok, "{warm}");
    assert!(warm.contains("warm start"), "{warm}");

    // Budget degradation over the wire: zero exit, degraded verdict.
    let (ok, degraded) = solve(&["--family", "fam", "--timeout-iters", "2"]);
    assert!(ok, "degraded solve must exit zero: {degraded}");
    assert!(degraded.contains("degraded:"), "{degraded}");

    // Health reflects the three completed solves.
    let out = memlp().args(["client", &addr, "health"]).output().unwrap();
    assert!(out.status.success());
    let health = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(health.contains("completed: 3"), "{health}");

    // Drain stops the daemon; it exits zero on its own.
    let out = memlp().args(["client", &addr, "drain"]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let status = server.wait().unwrap();
    assert!(status.success(), "server must exit cleanly after drain");
}

#[test]
fn bad_usage_prints_help() {
    let out = memlp().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");

    let out = memlp().args(["solve"]).output().unwrap();
    assert!(!out.status.success());

    let out = memlp().args(["solve", "/nonexistent.lp"]).output().unwrap();
    assert!(!out.status.success());
}
