//! End-to-end integration: both crossbar solvers against all three software
//! baselines on the paper's §4.2 random workloads.

use memlp::prelude::*;

fn relative_error(a: f64, b: f64) -> f64 {
    (a - b).abs() / (1.0 + b.abs())
}

#[test]
fn all_solvers_agree_on_feasible_instances() {
    for (m, seed) in [(16usize, 1u64), (48, 2), (96, 3)] {
        let lp = RandomLp::paper(m, seed).feasible();

        let simplex = Simplex::default().solve(&lp);
        let dense = DensePdip::default().solve(&lp);
        let normal = NormalEqPdip::default().solve(&lp);
        assert!(simplex.status.is_optimal(), "simplex m={m}");
        assert!(dense.status.is_optimal(), "dense m={m}");
        assert!(normal.status.is_optimal(), "normal m={m}");
        assert!(relative_error(dense.objective, simplex.objective) < 1e-5);
        assert!(relative_error(normal.objective, simplex.objective) < 1e-5);

        let alg1 = CrossbarPdipSolver::new(
            CrossbarConfig::paper_default().with_seed(seed),
            CrossbarSolverOptions::default(),
        )
        .solve(&lp);
        assert!(
            alg1.solution.status.is_optimal(),
            "alg1 m={m}: {}",
            alg1.solution
        );
        assert!(
            relative_error(alg1.solution.objective, simplex.objective) < 0.05,
            "alg1 m={m} error {}",
            relative_error(alg1.solution.objective, simplex.objective)
        );

        let alg2 = LargeScaleSolver::new(
            CrossbarConfig::paper_default().with_seed(seed),
            LargeScaleOptions::default(),
        )
        .solve(&lp);
        assert!(
            alg2.solution.status.is_optimal(),
            "alg2 m={m}: {}",
            alg2.solution
        );
        assert!(
            relative_error(alg2.solution.objective, simplex.objective) < 0.12,
            "alg2 m={m} error {}",
            relative_error(alg2.solution.objective, simplex.objective)
        );
    }
}

#[test]
fn all_solvers_detect_infeasible_instances() {
    for seed in [10u64, 11, 12] {
        let lp = RandomLp::paper(32, seed).infeasible();
        assert_eq!(
            Simplex::default().solve(&lp).status,
            LpStatus::Infeasible,
            "simplex {seed}"
        );
        assert_eq!(
            NormalEqPdip::default().solve(&lp).status,
            LpStatus::Infeasible,
            "normal {seed}"
        );
        let alg1 = CrossbarPdipSolver::new(
            CrossbarConfig::paper_default()
                .with_variation(10.0)
                .with_seed(seed),
            CrossbarSolverOptions::default(),
        )
        .solve(&lp);
        assert_eq!(alg1.solution.status, LpStatus::Infeasible, "alg1 {seed}");
        let alg2 = LargeScaleSolver::new(
            CrossbarConfig::paper_default()
                .with_variation(10.0)
                .with_seed(seed),
            LargeScaleOptions::default(),
        )
        .solve(&lp);
        assert_eq!(alg2.solution.status, LpStatus::Infeasible, "alg2 {seed}");
    }
}

#[test]
fn crossbar_error_grows_gracefully_with_variation() {
    let lp = RandomLp::paper(64, 5).feasible();
    let reference = NormalEqPdip::default().solve(&lp);
    let mut previous_budget: f64 = 0.02; // ideal hardware should be under 2%
    for var in [0.0, 5.0, 10.0, 20.0] {
        let mut worst = 0.0f64;
        for seed in 0..3 {
            let r = CrossbarPdipSolver::new(
                CrossbarConfig::paper_default()
                    .with_variation(var)
                    .with_seed(seed),
                CrossbarSolverOptions::default(),
            )
            .solve(&lp);
            assert!(
                r.solution.status.is_optimal(),
                "var={var} seed={seed}: {}",
                r.solution
            );
            worst = worst.max(relative_error(r.solution.objective, reference.objective));
        }
        // Paper Fig 5: inaccuracy stays below ~10% even at 20% variation.
        assert!(worst < 0.10, "var={var}: worst error {worst}");
        previous_budget = previous_budget.max(worst);
    }
    let _ = previous_budget;
}

#[test]
fn hardware_cost_scales_linearly_per_iteration() {
    // §3.5: per-iteration crossbar work is O(N) coefficient updates.
    let small = RandomLp::paper(32, 7).feasible();
    let large = RandomLp::paper(128, 7).feasible();
    let run = |lp: &LpProblem| {
        let r = CrossbarPdipSolver::new(
            CrossbarConfig::paper_default().with_seed(1),
            CrossbarSolverOptions::default(),
        )
        .solve(lp);
        assert!(r.solution.status.is_optimal());
        let iters = r.solution.iterations.max(1) as f64;
        r.ledger.counts().update_writes as f64 / iters
    };
    let per_iter_small = run(&small);
    let per_iter_large = run(&large);
    // 2(n+m) per iteration: ratio should be ≈ 128/32 = 4.
    let ratio = per_iter_large / per_iter_small;
    assert!(
        (ratio - 4.0).abs() < 0.5,
        "O(N) update scaling violated: ratio {ratio}"
    );
}

#[test]
fn retries_redraw_variation_and_eventually_succeed() {
    // At 20% variation some attempts fail; the retry scheme (§4.3 "double
    // checking") should still deliver verdicts on most seeds.
    let mut optimal = 0;
    let total = 6;
    for seed in 0..total {
        let lp = RandomLp::paper(48, 100 + seed).feasible();
        let r = CrossbarPdipSolver::new(
            CrossbarConfig::paper_default()
                .with_variation(20.0)
                .with_seed(seed),
            CrossbarSolverOptions::default(),
        )
        .solve(&lp);
        if r.solution.status.is_optimal() {
            optimal += 1;
        }
    }
    assert!(
        optimal >= total - 1,
        "only {optimal}/{total} succeeded at 20% variation"
    );
}
