//! Deterministic power-iteration estimate of the spectral norm `‖A‖₂`.
//!
//! First-order LP solvers (PDHG) need `‖A‖₂ = σ_max(A)` to set admissible
//! step sizes `τσ‖A‖² ≤ 1`. This module estimates it by power iteration on
//! the Gram operator `AᵀA`, built entirely from the CSR kernels
//! ([`SparseMatrix::matvec`] / [`SparseMatrix::matvec_transposed`]) with a
//! parallel row fan-out over the workspace thread pool:
//!
//! * **Deterministic** — the start vector is a fixed, non-uniform ramp (no
//!   RNG), so the estimate is a pure function of the matrix.
//! * **Thread-invariant** — the parallel spmv assigns whole rows to
//!   workers and each row is reduced by the sequential `spmv_row`
//!   microkernel, so the bit pattern is identical at every thread count.
//! * **One-sided** — the Rayleigh quotient of `AᵀA` converges to
//!   `σ_max²` *from below*, so `sigma ≤ σ_max` always; callers that need
//!   a safe upper bound multiply by a small margin or clamp against
//!   [`upper_bound`] (`√(‖A‖₁·‖A‖∞) ≥ σ_max`).
//!
//! Dense inputs are converted to CSR once and run the identical
//! iteration, so CSR and dense presentations of the same matrix produce
//! bitwise-identical estimates.

use crate::kernels::spmv_row;
use crate::matrix::Matrix;
use crate::parallel::{self, Threads};
use crate::sparse::SparseMatrix;

/// Result of a power-iteration spectral-norm estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormEstimate {
    /// Estimated `σ_max(A)`; a lower bound on the true value, tight at
    /// convergence.
    pub sigma: f64,
    /// Power iterations actually performed.
    pub iterations: usize,
    /// `true` if the relative change in `sigma` dropped below the
    /// requested tolerance before the iteration cap.
    pub converged: bool,
}

impl NormEstimate {
    /// The estimate inflated by a small safety margin and clamped to the
    /// `√(‖A‖₁·‖A‖∞)` upper bound: a step-size-safe stand-in for
    /// `σ_max` that never undershoots at convergence and never exceeds
    /// the provable bound.
    pub fn safe_sigma(&self, upper: f64) -> f64 {
        if self.sigma <= 0.0 {
            return upper.max(0.0);
        }
        (self.sigma * SAFETY_MARGIN).min(upper.max(self.sigma))
    }
}

/// Multiplicative head-room applied by [`NormEstimate::safe_sigma`] to
/// cover the residual of a converged-but-inexact power iteration.
pub const SAFETY_MARGIN: f64 = 1.01;

/// Default relative tolerance on successive `sigma` iterates.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Default iteration cap; power iteration on `AᵀA` squares the spectral
/// gap, so well under a hundred rounds suffice on LP constraint matrices.
pub const DEFAULT_MAX_ITERS: usize = 128;

/// Provable upper bound `√(‖A‖₁·‖A‖∞) ≥ σ_max(A)` from the Hölder
/// interpolation of induced norms, computed in one CSR sweep.
pub fn upper_bound(a: &SparseMatrix) -> f64 {
    let mut col_abs = vec![0.0f64; a.cols()];
    let mut inf = 0.0f64;
    let (rp, ci, vs) = (a.row_ptr(), a.col_idx(), a.values());
    for i in 0..a.rows() {
        let mut row_abs = 0.0f64;
        for k in rp[i]..rp[i + 1] {
            let v = vs[k].abs();
            row_abs += v;
            col_abs[ci[k]] += v;
        }
        inf = inf.max(row_abs);
    }
    let one = col_abs.iter().fold(0.0f64, |m, &v| m.max(v));
    (one * inf).sqrt()
}

/// Estimates `σ_max(A)` for a CSR matrix by power iteration on `AᵀA`
/// with the default tolerance and iteration cap.
pub fn spectral_norm(a: &SparseMatrix) -> NormEstimate {
    spectral_norm_with(a, DEFAULT_TOL, DEFAULT_MAX_ITERS)
}

/// Estimates `σ_max(A)` for a dense matrix. The matrix is converted to
/// CSR once and the identical iteration runs, so the result is
/// bitwise-identical to [`spectral_norm`] on the CSR form.
pub fn spectral_norm_dense(a: &Matrix) -> NormEstimate {
    spectral_norm(&SparseMatrix::from_dense(a))
}

/// Estimates `σ_max(A)` by power iteration on `AᵀA`, stopping when the
/// relative change in the singular-value iterate drops below `tol` or
/// after `max_iters` rounds.
pub fn spectral_norm_with(a: &SparseMatrix, tol: f64, max_iters: usize) -> NormEstimate {
    let (m, n) = (a.rows(), a.cols());
    if m == 0 || n == 0 || a.nnz() == 0 {
        return NormEstimate {
            sigma: 0.0,
            iterations: 0,
            converged: true,
        };
    }
    // Fixed non-uniform ramp: strictly positive with incommensurate
    // component ratios, so it is never orthogonal to the dominant
    // singular subspace of a real-world constraint matrix, and it makes
    // the estimate a pure function of the matrix (no RNG state).
    let mut v: Vec<f64> = (0..n).map(|j| 1.0 + 0.125 * ((j % 7) as f64)).collect();
    normalize(&mut v);
    let mut sigma = 0.0f64;
    let mut iterations = 0usize;
    let mut converged = false;
    for _ in 0..max_iters {
        iterations += 1;
        let av = par_matvec(a, &v);
        let mut w = a.matvec_transposed(&av);
        // ‖Av‖ over a unit v is the Rayleigh estimate of σ_max; it is
        // monotone non-decreasing and bounded above by the true value.
        let next = norm2(&av);
        let wn = normalize(&mut w);
        if wn == 0.0 {
            // v landed in the null space; the ramp start makes this a
            // structurally-zero matrix in practice.
            sigma = next;
            converged = true;
            break;
        }
        v = w;
        if next.is_finite() && (next - sigma).abs() <= tol * next.max(1.0) {
            sigma = next;
            converged = true;
            break;
        }
        sigma = next;
    }
    NormEstimate {
        sigma,
        iterations,
        converged,
    }
}

/// Row-parallel CSR spmv: whole rows are distributed over the pool and
/// each row is reduced by the sequential [`spmv_row`] microkernel, so the
/// output bits do not depend on the worker count.
fn par_matvec(a: &SparseMatrix, x: &[f64]) -> Vec<f64> {
    let threads = Threads::resolve().for_flops(2 * a.nnz());
    let (rp, ci, vs) = (a.row_ptr(), a.col_idx(), a.values());
    let mut y = vec![0.0f64; a.rows()];
    parallel::par_bands(threads, &mut y, |band_start, band| {
        for (off, yi) in band.iter_mut().enumerate() {
            let i = band_start + off;
            let (lo, hi) = (rp[i], rp[i + 1]);
            *yi = spmv_row(&vs[lo..hi], &ci[lo..hi], x);
        }
    });
    y
}

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|&x| x * x).sum::<f64>().sqrt()
}

/// Normalizes in place; returns the pre-normalization 2-norm.
fn normalize(v: &mut [f64]) -> f64 {
    let n = norm2(v);
    if n > 0.0 && n.is_finite() {
        let inv = 1.0 / n;
        for x in v.iter_mut() {
            *x *= inv;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(values: &[f64]) -> SparseMatrix {
        let ts: Vec<(usize, usize, f64)> =
            values.iter().enumerate().map(|(i, &v)| (i, i, v)).collect();
        SparseMatrix::from_triplets(values.len(), values.len(), &ts).expect("in bounds")
    }

    #[test]
    fn diagonal_matrix_recovers_largest_entry() {
        let a = diag(&[3.0, -7.0, 2.0, 5.0]);
        let est = spectral_norm(&a);
        assert!(est.converged);
        assert!((est.sigma - 7.0).abs() < 1e-6, "sigma {}", est.sigma);
        assert!(est.sigma <= 7.0 + 1e-12);
    }

    #[test]
    fn zero_and_empty_matrices_are_zero() {
        let z = SparseMatrix::from_triplets(3, 4, &[]).unwrap();
        let est = spectral_norm(&z);
        assert_eq!(est.sigma, 0.0);
        assert!(est.converged);
        assert_eq!(upper_bound(&z), 0.0);
    }

    #[test]
    fn dense_and_sparse_agree_bitwise() {
        let d = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, -3.0, 4.0]]).unwrap();
        let s = SparseMatrix::from_dense(&d);
        let a = spectral_norm_dense(&d);
        let b = spectral_norm(&s);
        assert_eq!(a.sigma.to_bits(), b.sigma.to_bits());
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn upper_bound_dominates_estimate() {
        let d = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 0.5], &[0.0, 1.5]]).unwrap();
        let s = SparseMatrix::from_dense(&d);
        let est = spectral_norm(&s);
        assert!(est.converged);
        let ub = upper_bound(&s);
        assert!(est.sigma <= ub + 1e-12);
        let safe = est.safe_sigma(ub);
        assert!(safe >= est.sigma);
        assert!(safe <= ub.max(est.sigma) + 1e-12);
    }
}
