//! Scoped-thread parallel execution for the dense kernels.
//!
//! This is the workspace's single threading layer: the LU trailing update,
//! matrix–vector products, tiled-crossbar fan-out, batched solves, and the
//! bench harness all schedule work through here. It is built on
//! `std::thread::scope` only — no external dependencies — so offline builds
//! keep working.
//!
//! # Thread-count resolution
//!
//! [`Threads::resolve`] picks the worker count from, in priority order:
//!
//! 1. a thread-local override installed by [`with_threads`] (used by tests
//!    and the CLI's `--jobs` flag),
//! 2. the `MEMLP_THREADS` environment variable (parsed once per process),
//! 3. [`std::thread::available_parallelism`].
//!
//! # Determinism
//!
//! Every helper here partitions work into *fixed* index ranges that do not
//! depend on the worker count or scheduling order, and each unit writes only
//! its own disjoint output. A kernel that performs the same per-element
//! arithmetic in the same order inside each unit therefore produces
//! bit-for-bit identical results at every thread count — the property the
//! `threaded_*` property tests assert.

use std::cell::Cell;
// memlp-lint: allow(concurrency::primitive, reason = "this module IS the pool: the one place atomics are allowed")
use std::sync::atomic::{AtomicUsize, Ordering};
// memlp-lint: allow(concurrency::primitive, reason = "OnceLock caches the MEMLP_THREADS parse; pool internals")
use std::sync::OnceLock;

/// Minimum flops a worker thread should amortize; below
/// `work / MIN_FLOPS_PER_THREAD` threads, spawn overhead dominates.
///
/// Re-measured against the register-tiled microkernels (`kernels`
/// module): a scoped-spawn round trip costs ~15–25 µs, and the tiled
/// kernels retire ~6–9 Gflop/s per core (vs ~3.5–4 for the scalar loops
/// they replaced), so the break-even work per extra worker roughly
/// doubled — `rate × overhead ≈ 7e9 × 18e-6 ≈ 1.3e5` flops. The kernel
/// microbench records the measured rates behind this number in
/// `BENCH_kernels.json` (`threading_cutoff` cell).
pub const MIN_FLOPS_PER_THREAD: usize = 128 * 1024;

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_threads() -> Option<usize> {
    // memlp-lint: allow(concurrency::primitive, reason = "env-var parse cache; pool internals")
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("MEMLP_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
    })
}

/// The resolved worker-thread budget for parallel kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threads {
    cap: usize,
}

impl Threads {
    /// Resolves the budget: `with_threads` override → `MEMLP_THREADS` →
    /// available parallelism (never zero).
    ///
    /// The `available_parallelism` syscall is cached per process: it costs
    /// ~10 µs per call on Linux (cgroup probing), which dominated the tiny
    /// per-iteration kernels when every one re-resolved the budget.
    pub fn resolve() -> Threads {
        // memlp-lint: allow(concurrency::primitive, reason = "available_parallelism cache; pool internals")
        static AVAILABLE: OnceLock<usize> = OnceLock::new();
        let cap = OVERRIDE
            .with(Cell::get)
            .or_else(env_threads)
            .unwrap_or_else(|| {
                *AVAILABLE.get_or_init(|| {
                    std::thread::available_parallelism()
                        .map(|p| p.get())
                        .unwrap_or(1)
                })
            });
        Threads { cap: cap.max(1) }
    }

    /// A fixed budget, ignoring the environment.
    pub fn exact(n: usize) -> Threads {
        Threads { cap: n.max(1) }
    }

    /// The raw budget.
    pub fn get(self) -> usize {
        self.cap
    }

    /// Workers to actually use for a kernel costing `flops` total: enough
    /// that each amortizes [`MIN_FLOPS_PER_THREAD`], and never more than the
    /// budget. Returns 1 (the serial path) for small kernels.
    pub fn for_flops(self, flops: usize) -> usize {
        if self.cap <= 1 {
            return 1;
        }
        self.cap.min(flops / MIN_FLOPS_PER_THREAD).max(1)
    }
}

/// Runs `f` with the calling thread's budget forced to `threads`
/// (overriding `MEMLP_THREADS`), restoring the previous override after.
pub fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let prev = OVERRIDE.with(|c| c.replace(Some(threads.max(1))));
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Runs `f(0..count)` across up to `threads` workers (work-stealing, so
/// uneven items balance) and returns the results in index order. Panics in
/// `f` propagate.
pub fn run_indexed<T: Send>(threads: usize, count: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let t = threads.min(count).max(1);
    if t <= 1 {
        return (0..count).map(f).collect();
    }
    // memlp-lint: allow(concurrency::primitive, reason = "work-stealing counter; results are reordered by index so scheduling never affects output")
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    // memlp-lint: allow(concurrency::primitive, reason = "the pool's own scoped spawn point")
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..t)
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    // Each index was claimed by exactly one worker, so the flattened list
    // is a permutation of 0..count: sorting restores input order without
    // needing an Option per slot.
    let mut flat: Vec<(usize, T)> = per_worker.into_iter().flatten().collect();
    flat.sort_unstable_by_key(|&(i, _)| i);
    flat.into_iter().map(|(_, v)| v).collect()
}

/// Maps `f` over `items` in place across up to `threads` workers (static
/// contiguous bands) and returns the results in item order. Each item is
/// visited exactly once with exclusive access, so the partition never
/// affects results.
pub fn par_map_mut<T: Send, R: Send>(
    threads: usize,
    items: &mut [T],
    f: impl Fn(usize, &mut T) -> R + Sync,
) -> Vec<R> {
    let len = items.len();
    let t = threads.min(len).max(1);
    if t <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, it)| f(i, it))
            .collect();
    }
    let f = &f;
    // memlp-lint: allow(concurrency::primitive, reason = "the pool's own scoped spawn point")
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(t);
        let mut rest = items;
        let mut start = 0;
        for w in 0..t {
            let count = len / t + usize::from(w < len % t);
            let (band, tail) = rest.split_at_mut(count);
            rest = tail;
            let base = start;
            start += count;
            handles.push(scope.spawn(move || {
                band.iter_mut()
                    .enumerate()
                    .map(|(i, it)| f(base + i, it))
                    .collect::<Vec<R>>()
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// Splits `data` into equal `chunk_len`-element chunks (e.g. matrix rows)
/// and calls `f(chunk_index, chunk)` for each, distributing contiguous
/// chunk ranges across up to `threads` workers. The partition is a pure
/// function of the lengths, so results are bit-for-bit independent of the
/// worker count.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `chunk_len`.
pub fn par_chunks<T: Send>(
    threads: usize,
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(
        chunk_len > 0 && data.len().is_multiple_of(chunk_len),
        "data must split into whole chunks"
    );
    let n_chunks = data.len() / chunk_len;
    let t = threads.min(n_chunks).max(1);
    if t <= 1 {
        for (i, c) in data.chunks_mut(chunk_len).enumerate() {
            f(i, c);
        }
        return;
    }
    let f = &f;
    // memlp-lint: allow(concurrency::primitive, reason = "the pool's own scoped spawn point")
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut first_chunk = 0;
        for w in 0..t {
            let count = n_chunks / t + usize::from(w < n_chunks % t);
            let (band, tail) = rest.split_at_mut(count * chunk_len);
            rest = tail;
            let base = first_chunk;
            first_chunk += count;
            scope.spawn(move || {
                for (i, c) in band.chunks_mut(chunk_len).enumerate() {
                    f(base + i, c);
                }
            });
        }
    });
}

/// Splits `data` into equal `chunk_len`-element chunks (e.g. matrix rows)
/// and distributes contiguous **bands of whole chunks** across up to
/// `threads` workers, calling `f(first_chunk_index, band)` once per band.
/// Unlike [`par_chunks`] the callback sees a worker's whole contiguous
/// range, so multi-row register tiles (`kernels` module) can span chunks
/// inside a band. The band boundaries are a pure function of the lengths;
/// kernels whose per-element arithmetic order is partition-independent
/// (every kernel in this workspace) stay bit-for-bit reproducible at any
/// worker count.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `chunk_len`.
pub fn par_chunk_bands<T: Send>(
    threads: usize,
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(
        chunk_len > 0 && data.len().is_multiple_of(chunk_len),
        "data must split into whole chunks"
    );
    let n_chunks = data.len() / chunk_len;
    let t = threads.min(n_chunks).max(1);
    if t <= 1 {
        if n_chunks > 0 {
            f(0, data);
        }
        return;
    }
    let f = &f;
    // memlp-lint: allow(concurrency::primitive, reason = "the pool's own scoped spawn point")
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut first_chunk = 0;
        for w in 0..t {
            let count = n_chunks / t + usize::from(w < n_chunks % t);
            let (band, tail) = rest.split_at_mut(count * chunk_len);
            rest = tail;
            let base = first_chunk;
            first_chunk += count;
            scope.spawn(move || f(base, band));
        }
    });
}

/// Splits `data` into at most `threads` contiguous bands of near-equal
/// length and calls `f(start_offset, band)` on each concurrently. Like
/// [`par_chunks`], the band boundaries depend only on the lengths, so a
/// kernel that is serial within each band stays bit-for-bit reproducible.
pub fn par_bands<T: Send>(threads: usize, data: &mut [T], f: impl Fn(usize, &mut [T]) + Sync) {
    let len = data.len();
    let t = threads.min(len).max(1);
    if t <= 1 {
        f(0, data);
        return;
    }
    let f = &f;
    // memlp-lint: allow(concurrency::primitive, reason = "the pool's own scoped spawn point")
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut offset = 0;
        for w in 0..t {
            let count = len / t + usize::from(w < len % t);
            let (band, tail) = rest.split_at_mut(count);
            rest = tail;
            let start = offset;
            offset += count;
            scope.spawn(move || f(start, band));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_is_at_least_one() {
        assert!(Threads::resolve().get() >= 1);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = with_threads(3, || {
            let inner = with_threads(7, || Threads::resolve().get());
            assert_eq!(inner, 7);
            Threads::resolve().get()
        });
        assert_eq!(outer, 3);
    }

    #[test]
    fn for_flops_scales_with_work() {
        let t = Threads::exact(8);
        assert_eq!(t.for_flops(10), 1);
        assert_eq!(t.for_flops(MIN_FLOPS_PER_THREAD * 3), 3);
        assert_eq!(t.for_flops(MIN_FLOPS_PER_THREAD * 100), 8);
        assert_eq!(Threads::exact(1).for_flops(usize::MAX), 1);
    }

    #[test]
    fn run_indexed_preserves_order() {
        for threads in [1, 2, 8] {
            let out = run_indexed(threads, 33, |i| i * i);
            assert_eq!(out, (0..33).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_indexed_handles_empty_and_single() {
        assert!(run_indexed(4, 0, |i| i).is_empty());
        assert_eq!(run_indexed(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn run_indexed_propagates_panics() {
        run_indexed(2, 8, |i| {
            if i == 5 {
                panic!("worker boom");
            }
            i
        });
    }

    #[test]
    fn par_map_mut_orders_results_and_mutates() {
        for threads in [1, 2, 4, 16] {
            let mut items: Vec<usize> = (0..13).collect();
            let out = par_map_mut(threads, &mut items, |i, v| {
                *v += 100;
                i * 2
            });
            assert_eq!(out, (0..13).map(|i| i * 2).collect::<Vec<_>>());
            assert_eq!(items, (100..113).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_chunks_visits_every_chunk_once() {
        for threads in [1, 2, 3, 8] {
            let mut data = vec![0usize; 7 * 4];
            par_chunks(threads, &mut data, 4, |i, chunk| {
                for v in chunk.iter_mut() {
                    *v += i + 1;
                }
            });
            for (i, chunk) in data.chunks(4).enumerate() {
                assert!(chunk.iter().all(|&v| v == i + 1));
            }
        }
    }

    #[test]
    fn par_chunk_bands_covers_whole_chunks() {
        for threads in [1, 2, 3, 8] {
            let mut data = vec![0usize; 7 * 4];
            par_chunk_bands(threads, &mut data, 4, |first, band| {
                assert!(band.len().is_multiple_of(4));
                for (i, chunk) in band.chunks_mut(4).enumerate() {
                    for v in chunk.iter_mut() {
                        *v = first + i + 1;
                    }
                }
            });
            for (i, chunk) in data.chunks(4).enumerate() {
                assert!(chunk.iter().all(|&v| v == i + 1), "chunk {i}");
            }
        }
    }

    #[test]
    fn par_bands_covers_all_offsets() {
        for threads in [1, 2, 5, 16] {
            let mut data = vec![0usize; 23];
            par_bands(threads, &mut data, |start, band| {
                for (i, v) in band.iter_mut().enumerate() {
                    *v = start + i;
                }
            });
            assert_eq!(data, (0..23).collect::<Vec<_>>());
        }
    }
}
