//! Vector kernels on plain `&[f64]` slices.
//!
//! These are the hot inner loops of the workspace; they are written so the
//! compiler can auto-vectorize them (no bounds checks in the loop bodies,
//! unrolled accumulators for `dot`).

/// Dot product `x · y`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(
        x.len(),
        y.len(),
        "dot: length mismatch {} vs {}",
        x.len(),
        y.len()
    );
    // Four independent accumulators break the FP dependency chain and let
    // LLVM vectorize despite float non-associativity.
    let chunks = x.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for k in 0..chunks {
        let i = 4 * k;
        s0 += x[i] * y[i];
        s1 += x[i + 1] * y[i + 1];
        s2 += x[i + 2] * y[i + 2];
        s3 += x[i + 3] * y[i + 3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for i in 4 * chunks..x.len() {
        s += x[i] * y[i];
    }
    s
}

/// `y ← y + a·x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(
        x.len(),
        y.len(),
        "axpy: length mismatch {} vs {}",
        x.len(),
        y.len()
    );
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `x ← s·x`.
#[inline]
pub fn scale(s: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= s;
    }
}

/// Elementwise difference `x - y` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(
        x.len(),
        y.len(),
        "sub: length mismatch {} vs {}",
        x.len(),
        y.len()
    );
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Elementwise sum `x + y` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(
        x.len(),
        y.len(),
        "add: length mismatch {} vs {}",
        x.len(),
        y.len()
    );
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// Infinity norm `max |x_i|` (0.0 for an empty slice).
#[inline]
pub fn inf_norm(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn two_norm(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// One norm `Σ |x_i|`.
#[inline]
pub fn one_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Largest entry (not absolute; `-inf` for an empty slice).
#[inline]
pub fn max(x: &[f64]) -> f64 {
    x.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
}

/// Smallest entry (`+inf` for an empty slice).
#[inline]
pub fn min(x: &[f64]) -> f64 {
    x.iter().fold(f64::INFINITY, |m, &v| m.min(v))
}

/// Returns `true` if every entry is finite.
#[inline]
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..17).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = (0..17).map(|i| (17 - i) as f64).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-9);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 42.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![0.5, -1.0, 4.0];
        assert_eq!(sub(&add(&x, &y), &y), x);
    }

    #[test]
    fn norms_known_values() {
        let x = [3.0, -4.0];
        assert_eq!(inf_norm(&x), 4.0);
        assert!((two_norm(&x) - 5.0).abs() < 1e-12);
        assert_eq!(one_norm(&x), 7.0);
    }

    #[test]
    fn norms_empty() {
        assert_eq!(inf_norm(&[]), 0.0);
        assert_eq!(one_norm(&[]), 0.0);
    }

    #[test]
    fn max_min_values() {
        let x = [2.0, -5.0, 3.0];
        assert_eq!(max(&x), 3.0);
        assert_eq!(min(&x), -5.0);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[1.0, -2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }
}
