use crate::error::{dim_mismatch, LinalgError};
use crate::kernels::{self, KernelPolicy};
use crate::matrix::Matrix;
use crate::parallel::{self, Threads};

/// Block size for the right-looking blocked factorization. 48 keeps the
/// panel plus a stripe of the trailing matrix inside L1/L2 for the matrix
/// sizes this workspace sees (up to a few thousand).
const BLOCK: usize = 48;

/// An LU decomposition with partial pivoting: `P·A = L·U`.
///
/// This is the O(N³) direct method that the paper's complexity comparison
/// (§3.5) attributes to the software PDIP baseline, and it is also how the
/// simulator computes the settled state of an analog crossbar solve (the
/// hardware itself is O(1); the simulator is not).
///
/// # Example
///
/// ```
/// use memlp_linalg::{LuFactors, Matrix};
///
/// # fn main() -> Result<(), memlp_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = LuFactors::factor(a.clone())?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// let r = a.matvec(&x);
/// assert!((r[0] - 3.0).abs() < 1e-12 && (r[1] - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: step k swapped rows k and `piv[k]`.
    piv: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), for the determinant.
    perm_sign: f64,
}

impl LuFactors {
    /// Factors a square matrix in place (consumes it).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the matrix is not
    /// square, and [`LinalgError::Singular`] if a column has no usable
    /// pivot (exactly zero).
    pub fn factor(a: Matrix) -> Result<Self, LinalgError> {
        Self::factor_reusing(a, Vec::new())
    }

    /// [`Self::factor`] with a caller-recycled pivot buffer: solvers that
    /// factor repeatedly at a fixed size pass back the permutation vector
    /// from [`Self::into_parts`] so neither the `n²` matrix buffer nor the
    /// pivot allocation churns per iteration.
    ///
    /// # Errors
    ///
    /// Same as [`Self::factor`] (the buffer is dropped on error).
    pub fn factor_reusing(mut a: Matrix, mut piv: Vec<usize>) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(dim_mismatch(
                "square matrix",
                format!("{}x{}", a.rows(), a.cols()),
            ));
        }
        let n = a.rows();
        piv.clear();
        piv.reserve(n);
        let mut perm_sign = 1.0;

        let mut k = 0;
        while k < n {
            let nb = BLOCK.min(n - k);
            // Factor the panel a[k.., k..k+nb] with partial pivoting; row
            // swaps are applied across the full matrix.
            for j in k..k + nb {
                // Pivot search in column j, rows j..n.
                let mut p = j;
                let mut pmax = a[(j, j)].abs();
                for i in j + 1..n {
                    let v = a[(i, j)].abs();
                    if v > pmax {
                        pmax = v;
                        p = i;
                    }
                }
                if pmax == 0.0 {
                    return Err(LinalgError::Singular { column: j });
                }
                piv.push(p);
                if p != j {
                    a.swap_rows(p, j);
                    perm_sign = -perm_sign;
                }
                // Eliminate below the pivot within the panel columns only.
                let pivot = a[(j, j)];
                let inv_pivot = 1.0 / pivot;
                for i in j + 1..n {
                    let lij = a[(i, j)] * inv_pivot;
                    a[(i, j)] = lij;
                    if lij != 0.0 {
                        for c in j + 1..k + nb {
                            let u = a[(j, c)];
                            a[(i, c)] -= lij * u;
                        }
                    }
                }
            }

            let rest = k + nb;
            if rest < n {
                // U12 ← L11⁻¹ · A12 (unit-lower triangular solve, in place).
                for j in k..rest {
                    for i in k..j {
                        let lji = a[(j, i)];
                        if lji != 0.0 {
                            // row_j ← row_j − lji · row_i over columns rest..n
                            let (ri, rj) = borrow_two_rows(&mut a, i, j);
                            for c in rest..rj.len() {
                                rj[c] -= lji * ri[c];
                            }
                        }
                    }
                }
                // Trailing update A22 ← A22 − L21 · U12.
                // Copy U12 to a temp for alias-free, cache-friendly access.
                let width = n - rest;
                let mut u12 = vec![0.0; nb * width];
                for (r, row) in u12.chunks_exact_mut(width).enumerate() {
                    row.copy_from_slice(&a.row(k + r)[rest..]);
                }
                // Each trailing row reads only its own L21 segment and
                // writes only its own tail, and every tail element
                // accumulates sequentially over the panel index, so the
                // update fans out across thread bands and register tiles
                // with bit-for-bit identical results. Each band packs its
                // (negated) L21 panel into the reusable scratch first —
                // IEEE negation is exact, so `A22 += (−L21)·U12` matches
                // the subtraction bit-for-bit — which both breaks the
                // aliasing between the L21 columns and the updated tail
                // and gives the tile kernel a contiguous operand.
                let flops = 2 * (n - rest) * nb * width;
                let tile = KernelPolicy::resolve().gemm_tile(flops);
                let threads = Threads::resolve().for_flops(flops);
                let cols = a.cols();
                let tail_rows = &mut a.as_mut_slice()[rest * cols..];
                parallel::par_chunk_bands(threads, tail_rows, cols, |_, band| {
                    let rows = band.len() / cols;
                    kernels::with_pack_buffer(rows * nb, |l21| {
                        for (seg, row) in l21.chunks_exact_mut(nb).zip(band.chunks_exact(cols)) {
                            for (li, &v) in seg.iter_mut().zip(&row[k..rest]) {
                                *li = -v;
                            }
                        }
                        let tails = &mut band[rest..];
                        kernels::gemm_acc(tile, tails, cols, l21, nb, &u12, width, rows, width, nb);
                    });
                });
            }
            k += nb;
        }

        Ok(LuFactors {
            lu: a,
            piv,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` using the precomputed factors.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(dim_mismatch(
                format!("vector of length {n}"),
                format!("length {}", b.len()),
            ));
        }
        let mut x = b.to_vec();
        // Apply the permutation.
        for (k, &p) in self.piv.iter().enumerate() {
            if p != k {
                x.swap(k, p);
            }
        }
        // Forward substitution L·y = P·b (unit lower).
        for i in 1..n {
            let row = self.lu.row(i);
            let s = crate::ops::dot(&row[..i], &x[..i]);
            x[i] -= s;
        }
        // Back substitution U·x = y.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let s = crate::ops::dot(&row[i + 1..], &x[i + 1..]);
            x[i] = (x[i] - s) / row[i];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column by column; independent columns are solved
    /// concurrently above the size cutoff.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(dim_mismatch(
                format!("{n} rows"),
                format!("{} rows", b.rows()),
            ));
        }
        let threads = Threads::resolve().for_flops(2 * n * n * b.cols());
        let cols = parallel::run_indexed(threads, b.cols(), |j| self.solve(&b.col(j)));
        let mut x = Matrix::zeros(n, b.cols());
        for (j, col) in cols.into_iter().enumerate() {
            let col = col?;
            for i in 0..n {
                x[(i, j)] = col[i];
            }
        }
        Ok(x)
    }

    /// Consumes the factorization and returns the packed LU buffer, letting
    /// callers that factor repeatedly at a fixed size recycle the `n²`
    /// allocation (the contents are factor output, not the original matrix).
    pub fn into_matrix(self) -> Matrix {
        self.lu
    }

    /// Consumes the factorization and returns both reusable buffers — the
    /// packed LU matrix and the pivot vector — for
    /// [`Self::factor_reusing`].
    pub fn into_parts(self) -> (Matrix, Vec<usize>) {
        (self.lu, self.piv)
    }

    /// Determinant of the original matrix (product of U's diagonal times the
    /// permutation sign).
    pub fn det(&self) -> f64 {
        self.perm_sign * self.lu.diag().iter().product::<f64>()
    }

    /// Inverse of the original matrix.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (none expected once factored).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Smallest absolute diagonal entry of U — a cheap proxy for how close
    /// the factored matrix is to singular (used by the paper's §4.3
    /// discussion of variation-induced near-singularity).
    pub fn min_abs_pivot(&self) -> f64 {
        self.lu
            .diag()
            .iter()
            .fold(f64::INFINITY, |m, v| m.min(v.abs()))
    }
}

/// Borrows two distinct rows of a matrix mutably. Rows must differ.
fn borrow_two_rows(a: &mut Matrix, lo: usize, hi: usize) -> (&[f64], &mut [f64]) {
    debug_assert!(lo < hi);
    let cols = a.cols();
    let data = a.as_mut_slice();
    let (head, tail) = data.split_at_mut(hi * cols);
    (&head[lo * cols..(lo + 1) * cols], &mut tail[..cols])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= tol, "{x} vs {y} (tol {tol})");
        }
    }

    #[test]
    fn rejects_non_square() {
        assert!(LuFactors::factor(Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let err = LuFactors::factor(a).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { .. }));
    }

    #[test]
    fn solves_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let lu = LuFactors::factor(a).unwrap();
        let x = lu.solve(&[3.0, 5.0]).unwrap();
        assert_close(&x, &[0.8, 1.4], 1e-12);
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let lu = LuFactors::factor(Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn det_of_identity_is_one() {
        let lu = LuFactors::factor(Matrix::identity(5)).unwrap();
        assert!((lu.det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn det_known_value() {
        // det [[1,2],[3,4]] = -2, requires a pivot swap.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let lu = LuFactors::factor(a).unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0, 2.0], &[2.0, 6.0, 1.0], &[1.0, 1.0, 9.0]]).unwrap();
        let inv = LuFactors::factor(a.clone()).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let eye = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert!((prod[(i, j)] - eye[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn random_large_roundtrip_crosses_block_boundary() {
        // n > BLOCK so the blocked path (panel + trailing update) is used.
        let n = BLOCK * 2 + 7;
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut rnd = move || {
            // xorshift64* — deterministic, no rand dependency in this crate.
            seed ^= seed >> 12;
            seed ^= seed << 25;
            seed ^= seed >> 27;
            (seed.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let a = Matrix::from_fn(n, n, |i, j| rnd() + if i == j { 4.0 } else { 0.0 });
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.matvec(&xtrue);
        let x = LuFactors::factor(a).unwrap().solve(&b).unwrap();
        assert_close(&x, &xtrue, 1e-8);
    }

    #[test]
    fn solve_matrix_matches_column_solves() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let lu = LuFactors::factor(a.clone()).unwrap();
        let x = lu.solve_matrix(&b).unwrap();
        let prod = a.matmul(&x).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn min_abs_pivot_small_for_near_singular() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0 + 1e-9]]).unwrap();
        let lu = LuFactors::factor(a).unwrap();
        assert!(lu.min_abs_pivot() < 1e-8);
    }
}
