use std::fmt;
use std::ops::{Index, IndexMut};

use crate::error::{dim_mismatch, LinalgError};
use crate::kernels::{self, KernelPolicy};
use crate::parallel::{self, Threads};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse of the workspace: crossbar conductance maps,
/// Newton systems, and LP constraint matrices are all `Matrix` values. It
/// favours explicit, allocation-transparent operations over operator
/// overloading; the only overloaded operators are indexing (`m[(i, j)]`).
///
/// # Example
///
/// ```
/// use memlp_linalg::Matrix;
///
/// let mut m = Matrix::zeros(2, 3);
/// m[(0, 1)] = 5.0;
/// assert_eq!(m.transpose()[(1, 0)], 5.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Default for Matrix {
    /// The empty `0 × 0` matrix (a placeholder, e.g. for reusable buffers).
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(i, j)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the rows have unequal
    /// lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        let r = rows.len();
        if r == 0 {
            return Err(dim_mismatch("at least one row", "0 rows"));
        }
        let c = rows[0].len();
        let mut data = Vec::with_capacity(r * c);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != c {
                return Err(dim_mismatch(
                    format!("row of length {c}"),
                    format!("row {i} of length {}", row.len()),
                ));
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Creates a square matrix with `d` on the diagonal and zeros elsewhere.
    pub fn from_diag(d: &[f64]) -> Self {
        let n = d.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &v) in d.iter().enumerate() {
            m.data[i * n + i] = v;
        }
        m
    }

    /// Wraps an existing row-major buffer as a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(dim_mismatch(
                format!("{} elements for {rows}x{cols}", rows * cols),
                format!("{} elements", data.len()),
            ));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the underlying row-major buffer mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns row `i` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "column index {j} out of bounds for {} columns",
            self.cols
        );
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Returns the main diagonal as a vector.
    pub fn diag(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.data[i * self.cols + i]).collect()
    }

    /// Swaps rows `a` and `b` in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Computes the matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.cols,
            "matvec: vector length {} != cols {}",
            x.len(),
            self.cols
        );
        let mut y = vec![0.0; self.rows];
        // Row-disjoint: each output element is one fixed-order dot product,
        // so banding the output across threads — and register-tiling rows
        // inside each band — is bit-for-bit identical to serial.
        let flops = 2 * self.rows * self.cols;
        let mr = KernelPolicy::resolve().row_tile(flops);
        let threads = Threads::resolve().for_flops(flops);
        parallel::par_bands(threads, &mut y, |start, band| {
            kernels::matvec_rows(mr, &self.data[start * self.cols..], self.cols, x, band);
        });
        y
    }

    /// Computes `Aᵀ·x` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.rows,
            "matvec_transposed: vector length {} != rows {}",
            x.len(),
            self.rows
        );
        let mut y = vec![0.0; self.cols];
        // Column bands: each worker owns a contiguous slice of y and walks
        // all rows in the same order as the serial loop, so the per-element
        // accumulation order (and thus the rounding) is unchanged.
        let threads = Threads::resolve().for_flops(2 * self.rows * self.cols);
        parallel::par_bands(threads, &mut y, |start, band| {
            for (i, &xi) in x.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                let row = &self.row(i)[start..start + band.len()];
                for (yj, &aij) in band.iter_mut().zip(row) {
                    *yj += aij * xi;
                }
            }
        });
        y
    }

    /// Computes the matrix product `A·B`.
    ///
    /// Uses a cache-friendly i-k-j loop order; adequate for the workspace's
    /// medium-sized dense blocks.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols() != b.rows()`.
    pub fn matmul(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != b.rows {
            return Err(dim_mismatch(
                format!("{}x{} · {}xK", self.rows, self.cols, self.cols),
                format!("{}x{} · {}x{}", self.rows, self.cols, b.rows, b.cols),
            ));
        }
        let mut c = Matrix::zeros(self.rows, b.cols);
        if c.data.is_empty() {
            return Ok(c);
        }
        // Each C element accumulates sequentially over k regardless of the
        // band partition or register-tile shape, so threading and tiling
        // are both bitwise-invariant (see `kernels`).
        let flops = 2 * self.rows * self.cols * b.cols;
        let tile = KernelPolicy::resolve().gemm_tile(flops);
        let threads = Threads::resolve().for_flops(flops);
        parallel::par_chunk_bands(threads, &mut c.data, b.cols, |first_row, band| {
            let rows = band.len() / b.cols;
            kernels::gemm_acc(
                tile,
                band,
                b.cols,
                &self.data[first_row * self.cols..],
                self.cols,
                &b.data,
                b.cols,
                rows,
                b.cols,
                self.cols,
            );
        });
        Ok(c)
    }

    /// Computes the scaled Gram (normal) matrix `N = A·diag(d)·Aᵀ` — the
    /// Schur-complement core the software PDIP baselines form every
    /// iteration, and their dominant O(m²·n) cost.
    ///
    /// The upper triangle is computed per output row (rows are disjoint, so
    /// they fan out across threads with unchanged per-entry summation
    /// order) and mirrored into the lower triangle serially; results are
    /// bit-for-bit identical at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != self.cols()`.
    pub fn scaled_gram(&self, d: &[f64]) -> Matrix {
        assert_eq!(
            d.len(),
            self.cols,
            "scaled_gram: diagonal length {} != cols {}",
            d.len(),
            self.cols
        );
        let m = self.rows;
        let n = self.cols;
        let mut out = Matrix::zeros(m, m);
        if m == 0 {
            return out;
        }
        // Row i packs its d-scaled copy `aᵢ ∘ d` once into the reusable
        // scratch (one multiply per column instead of one per output
        // element), then the upper-triangle entries are fixed-order dots
        // against rows k ≥ i — register-tiled like matvec. Per-element
        // bits depend only on the packed values, never on the tile shape.
        let flops = m * m * n + m * n;
        let mr = KernelPolicy::resolve().row_tile(flops);
        let threads = Threads::resolve().for_flops(flops);
        parallel::par_chunks(threads, &mut out.data, m, |i, orow| {
            kernels::with_pack_buffer(n, |scaled| {
                let ai = self.row(i);
                for ((s, &aij), &dj) in scaled.iter_mut().zip(ai).zip(d) {
                    *s = aij * dj;
                }
                kernels::matvec_rows(mr, &self.data[i * n..], n, scaled, &mut orow[i..]);
            });
        });
        for i in 0..m {
            for k in 0..i {
                out.data[i * m + k] = out.data[k * m + i];
            }
        }
        out
    }

    /// Returns `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Returns `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Returns the elementwise (Hadamard) product `self ∘ other`, the
    /// operation used by the paper's process-variation model (Eqn 18).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(other, |a, b| a * b)
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Result<Matrix, LinalgError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(dim_mismatch(
                format!("{}x{}", self.rows, self.cols),
                format!("{}x{}", other.rows, other.cols),
            ));
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns a copy with every entry transformed by `f`.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Multiplies every entry by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns the largest absolute entry (0.0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Returns the smallest entry (`+inf` for an empty matrix).
    pub fn min(&self) -> f64 {
        self.data.iter().fold(f64::INFINITY, |m, &v| m.min(v))
    }

    /// Returns `true` if every entry is finite and non-negative — the
    /// condition for a matrix to be mappable onto a memristor crossbar.
    pub fn is_nonnegative(&self) -> bool {
        self.data.iter().all(|&v| v.is_finite() && v >= 0.0)
    }

    /// Copies `block` into `self` with its top-left corner at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "block {}x{} at ({r0},{c0}) does not fit in {}x{}",
            block.rows,
            block.cols,
            self.rows,
            self.cols
        );
        for i in 0..block.rows {
            let src = block.row(i);
            let dst =
                &mut self.data[(r0 + i) * self.cols + c0..(r0 + i) * self.cols + c0 + block.cols];
            dst.copy_from_slice(src);
        }
    }

    /// Writes `d` onto the diagonal of the square sub-block whose top-left
    /// corner is `(r0, c0)` (other entries of that block are untouched).
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit.
    pub fn set_diag_block(&mut self, r0: usize, c0: usize, d: &[f64]) {
        assert!(
            r0 + d.len() <= self.rows && c0 + d.len() <= self.cols,
            "diagonal block of length {} at ({r0},{c0}) does not fit in {}x{}",
            d.len(),
            self.rows,
            self.cols
        );
        for (i, &v) in d.iter().enumerate() {
            self.data[(r0 + i) * self.cols + (c0 + i)] = v;
        }
    }

    /// Extracts the `nr × nc` sub-block whose top-left corner is `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Matrix {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "block {nr}x{nc} at ({r0},{c0}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        let mut b = Matrix::zeros(nr, nc);
        for i in 0..nr {
            let src = &self.data[(r0 + i) * self.cols + c0..(r0 + i) * self.cols + c0 + nc];
            b.row_mut(i).copy_from_slice(src);
        }
        b
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            if self.cols > show_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        assert!(i.is_square());
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn from_diag_places_entries() {
        let m = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(m.diag(), vec![1.0, 2.0, 3.0]);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 10 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.transpose(), m);
        assert_eq!(t[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose() {
        let m = Matrix::from_fn(4, 3, |i, j| (i + 2 * j) as f64 - 3.0);
        let x = [1.0, -2.0, 0.5, 3.0];
        let expect = m.transpose().matvec(&x);
        assert_eq!(m.matvec_transposed(&x), expect);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let p = m.matmul(&Matrix::identity(3)).unwrap();
        assert_eq!(p, m);
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn add_sub_hadamard() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 5.0]]).unwrap();
        assert_eq!(
            a.add(&b).unwrap(),
            Matrix::from_rows(&[&[4.0, 7.0]]).unwrap()
        );
        assert_eq!(
            b.sub(&a).unwrap(),
            Matrix::from_rows(&[&[2.0, 3.0]]).unwrap()
        );
        assert_eq!(
            a.hadamard(&b).unwrap(),
            Matrix::from_rows(&[&[3.0, 10.0]]).unwrap()
        );
        assert!(a.add(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn swap_rows_swaps() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[5.0, 6.0]);
        assert_eq!(m.row(2), &[1.0, 2.0]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn block_get_set_roundtrip() {
        let mut big = Matrix::zeros(4, 4);
        let small = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        big.set_block(1, 2, &small);
        assert_eq!(big[(1, 2)], 1.0);
        assert_eq!(big[(2, 3)], 4.0);
        assert_eq!(big.block(1, 2, 2, 2), small);
    }

    #[test]
    fn set_diag_block_leaves_off_diagonal() {
        let mut m = Matrix::zeros(3, 3);
        m[(0, 1)] = 9.0;
        m.set_diag_block(0, 0, &[1.0, 2.0, 3.0]);
        assert_eq!(m.diag(), vec![1.0, 2.0, 3.0]);
        assert_eq!(m[(0, 1)], 9.0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn set_block_panics_out_of_bounds() {
        let mut big = Matrix::zeros(2, 2);
        big.set_block(1, 1, &Matrix::zeros(2, 2));
    }

    #[test]
    fn col_extracts_column() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn max_abs_and_min() {
        let m = Matrix::from_rows(&[&[-3.0, 2.0], &[1.0, -0.5]]).unwrap();
        assert_eq!(m.max_abs(), 3.0);
        assert_eq!(m.min(), -3.0);
    }

    #[test]
    fn is_nonnegative_detects_negatives() {
        assert!(Matrix::identity(3).is_nonnegative());
        let m = Matrix::from_rows(&[&[1.0, -0.001]]).unwrap();
        assert!(!m.is_nonnegative());
    }

    #[test]
    fn map_and_scale() {
        let mut m = Matrix::from_rows(&[&[1.0, -2.0]]).unwrap();
        assert_eq!(m.map(f64::abs).as_slice(), &[1.0, 2.0]);
        m.scale_mut(2.0);
        assert_eq!(m.as_slice(), &[2.0, -4.0]);
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Matrix::zeros(1, 1));
        assert!(s.contains("Matrix 1x1"));
    }

    #[test]
    fn scaled_gram_matches_explicit_product() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64 * 0.5 - 2.0);
        let d = [0.5, 2.0, 1.5, 0.25];
        let got = a.scaled_gram(&d);
        let ad = Matrix::from_fn(3, 4, |i, j| a[(i, j)] * d[j]);
        let want = ad.matmul(&a.transpose()).unwrap();
        assert_eq!(got.rows(), 3);
        for i in 0..3 {
            for k in 0..3 {
                assert!((got[(i, k)] - want[(i, k)]).abs() < 1e-12);
                assert_eq!(got[(i, k)], got[(k, i)]);
            }
        }
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
