//! Compressed sparse row (CSR) matrices.
//!
//! §3.5 of the paper points out that LP constraint matrices are commonly
//! sparse, which lowers the O(N²) crossbar initialization cost to
//! O(nnz) — erased cells need no write pulses. This module provides the
//! sparse representation the workload generators and setup-cost analyses
//! use; the analog *solve* path stays dense (the realized array is a dense
//! physical object).

use crate::error::{dim_mismatch, LinalgError};
use crate::matrix::Matrix;

/// A compressed-sparse-row matrix of `f64` values.
///
/// # Example
///
/// ```
/// use memlp_linalg::{Matrix, SparseMatrix};
///
/// # fn main() -> Result<(), memlp_linalg::LinalgError> {
/// let dense = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 3.0]])?;
/// let sparse = SparseMatrix::from_dense(&dense);
/// assert_eq!(sparse.nnz(), 3);
/// assert_eq!(sparse.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// Row start offsets into `col_idx`/`values` (length rows + 1).
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a CSR matrix from (row, col, value) triplets; duplicate
    /// coordinates are summed, explicit zeros dropped.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if any coordinate is out
    /// of bounds.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, LinalgError> {
        for &(i, j, _) in triplets {
            if i >= rows || j >= cols {
                return Err(dim_mismatch(
                    format!("coordinates within {rows}x{cols}"),
                    format!("({i}, {j})"),
                ));
            }
        }
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|&(i, j, _)| (i, j));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut cur_row = 0usize;
        for &(i, j, v) in &sorted {
            // Close every row before i (empty rows get zero-length spans).
            for r in cur_row..i {
                row_ptr[r + 1] = col_idx.len();
            }
            cur_row = i;
            // Merge a duplicate coordinate within the current row.
            let row_start = row_ptr[cur_row];
            match values.last_mut() {
                Some(last) if col_idx.len() > row_start && col_idx.last() == Some(&j) => {
                    *last += v;
                }
                _ => {
                    col_idx.push(j);
                    values.push(v);
                }
            }
        }
        for r in cur_row..rows {
            row_ptr[r + 1] = col_idx.len();
        }
        let mut m = SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        };
        m.prune_zeros();
        Ok(m)
    }

    /// Converts from a dense matrix, keeping only non-zero entries.
    pub fn from_dense(dense: &Matrix) -> SparseMatrix {
        let rows = dense.rows();
        let cols = dense.cols();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..rows {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Materializes the dense equivalent.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                m[(i, self.col_idx[k])] = self.values[k];
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fill fraction `nnz / (rows·cols)` (0 for an empty matrix).
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// Sparse matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.cols,
            "matvec: length {} != cols {}",
            x.len(),
            self.cols
        );
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut s = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                s += self.values[k] * x[self.col_idx[k]];
            }
            *yi = s;
        }
        y
    }

    /// Sparse transposed product `Aᵀ·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.rows,
            "matvec_transposed: length {} != rows {}",
            x.len(),
            self.rows
        );
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                y[self.col_idx[k]] += self.values[k] * xi;
            }
        }
        y
    }

    /// Iterates `(row, col, value)` over stored entries in row order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            (self.row_ptr[i]..self.row_ptr[i + 1])
                .map(move |k| (i, self.col_idx[k], self.values[k]))
        })
    }

    fn prune_zeros(&mut self) {
        if !self.values.contains(&0.0) {
            return;
        }
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                if self.values[k] != 0.0 {
                    col_idx.push(self.col_idx[k]);
                    values.push(self.values[k]);
                }
            }
            row_ptr[i + 1] = col_idx.len();
        }
        self.row_ptr = row_ptr;
        self.col_idx = col_idx;
        self.values = values;
    }
}

impl From<&Matrix> for SparseMatrix {
    fn from(dense: &Matrix) -> SparseMatrix {
        SparseMatrix::from_dense(dense)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 0.0, 2.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0],
            &[0.0, 3.0, 0.0, 4.0],
        ])
        .unwrap()
    }

    #[test]
    fn dense_roundtrip() {
        let d = sample_dense();
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn matvec_matches_dense() {
        let d = sample_dense();
        let s = SparseMatrix::from_dense(&d);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(s.matvec(&x), d.matvec(&x));
        let y = [1.0, -1.0, 0.5];
        assert_eq!(s.matvec_transposed(&y), d.matvec_transposed(&y));
    }

    #[test]
    fn from_triplets_sorts_and_sums() {
        let s =
            SparseMatrix::from_triplets(2, 2, &[(1, 1, 2.0), (0, 0, 1.0), (1, 1, 3.0)]).unwrap();
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense()[(1, 1)], 5.0);
    }

    #[test]
    fn from_triplets_rejects_out_of_bounds() {
        assert!(SparseMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(SparseMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn explicit_zeros_are_dropped() {
        let s = SparseMatrix::from_triplets(2, 2, &[(0, 0, 0.0), (1, 0, 2.0)]).unwrap();
        assert_eq!(s.nnz(), 1);
    }

    #[test]
    fn empty_rows_handled() {
        let s = SparseMatrix::from_triplets(4, 3, &[(3, 2, 1.0)]).unwrap();
        assert_eq!(s.matvec(&[0.0, 0.0, 2.0]), vec![0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn density_reports_fill() {
        let s = SparseMatrix::from_dense(&sample_dense());
        assert!((s.density() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn iter_yields_all_entries() {
        let s = SparseMatrix::from_dense(&sample_dense());
        let entries: Vec<_> = s.iter().collect();
        assert_eq!(
            entries,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0), (2, 3, 4.0)]
        );
    }

    #[test]
    fn conversion_trait() {
        let d = sample_dense();
        let s: SparseMatrix = (&d).into();
        assert_eq!(s.to_dense(), d);
    }
}
