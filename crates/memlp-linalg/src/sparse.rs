//! Compressed sparse row (CSR) matrices.
//!
//! §3.5 of the paper points out that LP constraint matrices are commonly
//! sparse, which lowers the O(N²) crossbar initialization cost to
//! O(nnz) — erased cells need no write pulses. The analog *solve* path
//! stays dense (the realized array is a dense physical object), but the
//! **digital** side — the simulator's block-elimination core and the
//! software reference/fallback solvers — runs on the kernels here: CSR
//! transpose, sparse×dense and sparse×sparse products, scaled Gram
//! products, and triangular solves. The fill-reducing sparse LU that
//! consumes them lives in [`crate::sparse_lu`].

use crate::error::{dim_mismatch, LinalgError};
use crate::matrix::Matrix;

/// A compressed-sparse-row matrix of `f64` values.
///
/// # Example
///
/// ```
/// use memlp_linalg::{Matrix, SparseMatrix};
///
/// # fn main() -> Result<(), memlp_linalg::LinalgError> {
/// let dense = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 3.0]])?;
/// let sparse = SparseMatrix::from_dense(&dense);
/// assert_eq!(sparse.nnz(), 3);
/// assert_eq!(sparse.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// Row start offsets into `col_idx`/`values` (length rows + 1).
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds a CSR matrix from (row, col, value) triplets.
    ///
    /// **Duplicate-entry policy:** triplets naming the same `(row, col)`
    /// coordinate are **summed** (the finite-element/assembly convention),
    /// and entries whose final value is exactly `0.0` — including duplicates
    /// that cancel — are dropped from the stored pattern. Out-of-bounds
    /// coordinates are an error, never silently accepted.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if any coordinate is out
    /// of bounds for the `rows × cols` shape.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, LinalgError> {
        for &(i, j, _) in triplets {
            if i >= rows || j >= cols {
                return Err(dim_mismatch(
                    format!("coordinates within {rows}x{cols}"),
                    format!("({i}, {j})"),
                ));
            }
        }
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|&(i, j, _)| (i, j));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut cur_row = 0usize;
        for &(i, j, v) in &sorted {
            // Close every row before i (empty rows get zero-length spans).
            for r in cur_row..i {
                row_ptr[r + 1] = col_idx.len();
            }
            cur_row = i;
            // Merge a duplicate coordinate within the current row.
            let row_start = row_ptr[cur_row];
            match values.last_mut() {
                Some(last) if col_idx.len() > row_start && col_idx.last() == Some(&j) => {
                    *last += v;
                }
                _ => {
                    col_idx.push(j);
                    values.push(v);
                }
            }
        }
        for r in cur_row..rows {
            row_ptr[r + 1] = col_idx.len();
        }
        let mut m = SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        };
        m.prune_zeros();
        Ok(m)
    }

    /// Converts from a dense matrix, keeping only non-zero entries.
    pub fn from_dense(dense: &Matrix) -> SparseMatrix {
        let rows = dense.rows();
        let cols = dense.cols();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..rows {
            for (j, &v) in dense.row(i).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Materializes the dense equivalent.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                m[(i, self.col_idx[k])] = self.values[k];
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zero entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fill fraction `nnz / (rows·cols)` (0 for an empty matrix).
    pub fn density(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// Sparse matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// In-place [`matvec`](SparseMatrix::matvec): writes `A·x` into `y`
    /// without allocating. Results are bitwise identical to the allocating
    /// variant — iterative solvers hoist their product buffers through
    /// this.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(
            x.len(),
            self.cols,
            "matvec: length {} != cols {}",
            x.len(),
            self.cols
        );
        assert_eq!(
            y.len(),
            self.rows,
            "matvec: output length {} != rows {}",
            y.len(),
            self.rows
        );
        // Blocked over each row's nonzero span: the fixed 4-lane tree of
        // `kernels::spmv_row` (gathered loads, four independent chains).
        for (i, yi) in y.iter_mut().enumerate() {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            *yi = crate::kernels::spmv_row(&self.values[lo..hi], &self.col_idx[lo..hi], x);
        }
    }

    /// Sparse transposed product `Aᵀ·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.cols];
        self.matvec_transposed_into(x, &mut y);
        y
    }

    /// In-place [`matvec_transposed`](SparseMatrix::matvec_transposed):
    /// writes `Aᵀ·x` into `y` without allocating, bitwise identical to the
    /// allocating variant.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()` or `y.len() != self.cols()`.
    pub fn matvec_transposed_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(
            x.len(),
            self.rows,
            "matvec_transposed: length {} != rows {}",
            x.len(),
            self.rows
        );
        assert_eq!(
            y.len(),
            self.cols,
            "matvec_transposed: output length {} != cols {}",
            y.len(),
            self.cols
        );
        y.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                y[self.col_idx[k]] += self.values[k] * xi;
            }
        }
    }

    /// Iterates `(row, col, value)` over stored entries in row order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            (self.row_ptr[i]..self.row_ptr[i + 1])
                .map(move |k| (i, self.col_idx[k], self.values[k]))
        })
    }

    /// Row start offsets (length `rows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices of the stored entries, in row order.
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Values of the stored entries, in row order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values (the pattern is fixed). This is
    /// the in-place update hook for per-iteration numeric refreshes: solvers
    /// keep the CSR pattern and overwrite only the numbers.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The storage slot of entry `(i, j)` in [`Self::values`], or `None` if
    /// the coordinate is outside the stored pattern. Binary search within
    /// the row — `O(log nnz_row)`.
    pub fn entry_index(&self, i: usize, j: usize) -> Option<usize> {
        if i >= self.rows {
            return None;
        }
        let span = &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]];
        span.binary_search(&j).ok().map(|k| self.row_ptr[i] + k)
    }

    /// CSR transpose: returns `Aᵀ` in CSR form (counting sort, `O(nnz)`).
    pub fn transpose(&self) -> SparseMatrix {
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &j in &self.col_idx {
            row_ptr[j + 1] += 1;
        }
        for j in 0..self.cols {
            row_ptr[j + 1] += row_ptr[j];
        }
        let mut next = row_ptr.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                let slot = next[j];
                next[j] += 1;
                col_idx[slot] = i;
                values[slot] = self.values[k];
            }
        }
        SparseMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Sparse×dense product `A·B` (`O(nnz(A)·cols(B))`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols() !=
    /// b.rows()`.
    pub fn matmul_dense(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != b.rows() {
            return Err(dim_mismatch(
                format!("{} rows", self.cols),
                format!("{} rows", b.rows()),
            ));
        }
        let mut c = Matrix::zeros(self.rows, b.cols());
        for i in 0..self.rows {
            let out = c.row_mut(i);
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let v = self.values[k];
                let brow = b.row(self.col_idx[k]);
                for (o, &bv) in out.iter_mut().zip(brow) {
                    *o += v * bv;
                }
            }
        }
        Ok(c)
    }

    /// Sparse×sparse product `A·B` (Gustavson's algorithm with a dense
    /// accumulator per output row; column indices emitted sorted, so the
    /// result is a canonical CSR matrix).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols() !=
    /// b.rows()`.
    pub fn matmul_sparse(&self, b: &SparseMatrix) -> Result<SparseMatrix, LinalgError> {
        if self.cols != b.rows {
            return Err(dim_mismatch(
                format!("{} rows", self.cols),
                format!("{} rows", b.rows),
            ));
        }
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut acc = vec![0.0f64; b.cols];
        let mut seen = vec![false; b.cols];
        let mut touched: Vec<usize> = Vec::new();
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let av = self.values[k];
                let br = self.col_idx[k];
                for kb in b.row_ptr[br]..b.row_ptr[br + 1] {
                    let j = b.col_idx[kb];
                    if !seen[j] {
                        seen[j] = true;
                        touched.push(j);
                    }
                    acc[j] += av * b.values[kb];
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                if acc[j] != 0.0 {
                    col_idx.push(j);
                    values.push(acc[j]);
                }
                acc[j] = 0.0;
                seen[j] = false;
            }
            touched.clear();
            row_ptr.push(col_idx.len());
        }
        Ok(SparseMatrix {
            rows: self.rows,
            cols: b.cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Sparse scaled Gram product `A·diag(d)·Aᵀ` — the sparse counterpart of
    /// [`Matrix::scaled_gram`], the normal-equations kernel of the PDIP
    /// reference solver.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `d.len() !=
    /// self.cols()`.
    pub fn scaled_gram(&self, d: &[f64]) -> Result<SparseMatrix, LinalgError> {
        if d.len() != self.cols {
            return Err(dim_mismatch(
                format!("diagonal of length {}", self.cols),
                format!("length {}", d.len()),
            ));
        }
        let mut scaled = self.clone();
        for (v, &j) in scaled.values.iter_mut().zip(&scaled.col_idx) {
            *v *= d[j];
        }
        scaled.matmul_sparse(&self.transpose())
    }

    /// Forward substitution `L·x = b` for a lower-triangular CSR matrix
    /// (stored entries above the diagonal are rejected; the diagonal must be
    /// present and non-zero in every row).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch or a
    /// stored entry above the diagonal, and [`LinalgError::Singular`] if a
    /// diagonal entry is missing or zero.
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.check_triangular_shapes(b)?;
        let mut x = b.to_vec();
        for i in 0..self.rows {
            let mut diag = 0.0;
            let mut s = x[i];
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                match j.cmp(&i) {
                    std::cmp::Ordering::Less => s -= self.values[k] * x[j],
                    std::cmp::Ordering::Equal => diag = self.values[k],
                    std::cmp::Ordering::Greater => {
                        return Err(dim_mismatch(
                            "lower-triangular matrix",
                            format!("entry ({i}, {j}) above the diagonal"),
                        ))
                    }
                }
            }
            if diag == 0.0 {
                return Err(LinalgError::Singular { column: i });
            }
            x[i] = s / diag;
        }
        Ok(x)
    }

    /// Backward substitution `U·x = b` for an upper-triangular CSR matrix
    /// (stored entries below the diagonal are rejected; the diagonal must be
    /// present and non-zero in every row).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on shape mismatch or a
    /// stored entry below the diagonal, and [`LinalgError::Singular`] if a
    /// diagonal entry is missing or zero.
    pub fn solve_upper(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.check_triangular_shapes(b)?;
        let mut x = b.to_vec();
        for i in (0..self.rows).rev() {
            let mut diag = 0.0;
            let mut s = x[i];
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                match j.cmp(&i) {
                    std::cmp::Ordering::Greater => s -= self.values[k] * x[j],
                    std::cmp::Ordering::Equal => diag = self.values[k],
                    std::cmp::Ordering::Less => {
                        return Err(dim_mismatch(
                            "upper-triangular matrix",
                            format!("entry ({i}, {j}) below the diagonal"),
                        ))
                    }
                }
            }
            if diag == 0.0 {
                return Err(LinalgError::Singular { column: i });
            }
            x[i] = s / diag;
        }
        Ok(x)
    }

    fn check_triangular_shapes(&self, b: &[f64]) -> Result<(), LinalgError> {
        if self.rows != self.cols {
            return Err(dim_mismatch(
                "square matrix",
                format!("{}x{}", self.rows, self.cols),
            ));
        }
        if b.len() != self.rows {
            return Err(dim_mismatch(
                format!("vector of length {}", self.rows),
                format!("length {}", b.len()),
            ));
        }
        Ok(())
    }

    fn prune_zeros(&mut self) {
        if !self.values.contains(&0.0) {
            return;
        }
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                if self.values[k] != 0.0 {
                    col_idx.push(self.col_idx[k]);
                    values.push(self.values[k]);
                }
            }
            row_ptr[i + 1] = col_idx.len();
        }
        self.row_ptr = row_ptr;
        self.col_idx = col_idx;
        self.values = values;
    }
}

impl From<&Matrix> for SparseMatrix {
    fn from(dense: &Matrix) -> SparseMatrix {
        SparseMatrix::from_dense(dense)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 0.0, 2.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0],
            &[0.0, 3.0, 0.0, 4.0],
        ])
        .unwrap()
    }

    #[test]
    fn dense_roundtrip() {
        let d = sample_dense();
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn matvec_matches_dense() {
        let d = sample_dense();
        let s = SparseMatrix::from_dense(&d);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(s.matvec(&x), d.matvec(&x));
        let y = [1.0, -1.0, 0.5];
        assert_eq!(s.matvec_transposed(&y), d.matvec_transposed(&y));
    }

    #[test]
    fn from_triplets_sorts_and_sums() {
        let s =
            SparseMatrix::from_triplets(2, 2, &[(1, 1, 2.0), (0, 0, 1.0), (1, 1, 3.0)]).unwrap();
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense()[(1, 1)], 5.0);
    }

    #[test]
    fn from_triplets_rejects_out_of_bounds() {
        assert!(SparseMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(SparseMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn explicit_zeros_are_dropped() {
        let s = SparseMatrix::from_triplets(2, 2, &[(0, 0, 0.0), (1, 0, 2.0)]).unwrap();
        assert_eq!(s.nnz(), 1);
    }

    #[test]
    fn empty_rows_handled() {
        let s = SparseMatrix::from_triplets(4, 3, &[(3, 2, 1.0)]).unwrap();
        assert_eq!(s.matvec(&[0.0, 0.0, 2.0]), vec![0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn density_reports_fill() {
        let s = SparseMatrix::from_dense(&sample_dense());
        assert!((s.density() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn iter_yields_all_entries() {
        let s = SparseMatrix::from_dense(&sample_dense());
        let entries: Vec<_> = s.iter().collect();
        assert_eq!(
            entries,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0), (2, 3, 4.0)]
        );
    }

    #[test]
    fn conversion_trait() {
        let d = sample_dense();
        let s: SparseMatrix = (&d).into();
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn duplicates_that_cancel_are_pruned() {
        let s =
            SparseMatrix::from_triplets(2, 2, &[(0, 1, 3.0), (0, 1, -3.0), (1, 0, 1.0)]).unwrap();
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.entry_index(0, 1), None);
        assert!(s.entry_index(1, 0).is_some());
    }

    #[test]
    fn transpose_round_trips() {
        let s = SparseMatrix::from_dense(&sample_dense());
        let t = s.transpose();
        assert_eq!(t.rows(), s.cols());
        assert_eq!(t.cols(), s.rows());
        assert_eq!(t.transpose().to_dense(), s.to_dense());
        for (i, j, v) in s.iter() {
            assert_eq!(t.to_dense()[(j, i)], v);
        }
    }

    #[test]
    fn matmul_dense_matches_dense_matmul() {
        let a = sample_dense();
        let s = SparseMatrix::from_dense(&a);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[0.5, -1.0], &[3.0, 0.0], &[-2.0, 4.0]]).unwrap();
        let want = a.matmul(&b).unwrap();
        let got = s.matmul_dense(&b).unwrap();
        for i in 0..want.rows() {
            for j in 0..want.cols() {
                assert!((want[(i, j)] - got[(i, j)]).abs() < 1e-12);
            }
        }
        assert!(s.matmul_dense(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn matmul_sparse_matches_dense_and_stays_canonical() {
        let a = sample_dense();
        let s = SparseMatrix::from_dense(&a);
        let t = s.transpose();
        let got = s.matmul_sparse(&t).unwrap();
        let want = a.matmul(&a.transpose()).unwrap();
        assert_eq!(got.to_dense(), want);
        // Canonical CSR: sorted, unique columns per row.
        for i in 0..got.rows() {
            let span = &got.col_idx()[got.row_ptr()[i]..got.row_ptr()[i + 1]];
            assert!(span.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(s.matmul_sparse(&s).is_err());
    }

    #[test]
    fn scaled_gram_matches_dense_kernel() {
        let a = sample_dense();
        let s = SparseMatrix::from_dense(&a);
        let d = [2.0, 0.5, 1.0, 3.0];
        let want = a.scaled_gram(&d);
        let got = s.scaled_gram(&d).unwrap().to_dense();
        for i in 0..want.rows() {
            for j in 0..want.cols() {
                assert!((want[(i, j)] - got[(i, j)]).abs() < 1e-12);
            }
        }
        assert!(s.scaled_gram(&[1.0]).is_err());
    }

    #[test]
    fn triangular_solves_match_dense_lu() {
        let l = SparseMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (1, 0, 1.0),
                (1, 1, 4.0),
                (2, 1, -1.0),
                (2, 2, 0.5),
            ],
        )
        .unwrap();
        let x = l.solve_lower(&[2.0, 6.0, 1.0]).unwrap();
        // Forward-substitute by hand: x0=1, x1=(6-1)/4=1.25, x2=(1+1.25)/0.5=4.5.
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.25).abs() < 1e-12);
        assert!((x[2] - 4.5).abs() < 1e-12);

        let u = l.transpose();
        let b = u.matvec(&[1.0, -2.0, 3.0]);
        let y = u.solve_upper(&b).unwrap();
        assert!((y[0] - 1.0).abs() < 1e-12);
        assert!((y[1] + 2.0).abs() < 1e-12);
        assert!((y[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn triangular_solve_rejects_bad_shapes_and_singularity() {
        let l = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]).unwrap();
        // Missing diagonal in row 1 → singular.
        assert!(l.solve_lower(&[1.0, 1.0]).is_err());
        // Entry above the diagonal rejected by solve_lower.
        let bad =
            SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 1.0), (1, 1, 1.0)]).unwrap();
        assert!(bad.solve_lower(&[1.0, 1.0]).is_err());
        assert!(bad.solve_upper(&[1.0]).is_err());
        let rect = SparseMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(rect.solve_lower(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn values_mut_updates_in_place() {
        let mut s = SparseMatrix::from_dense(&sample_dense());
        let k = s.entry_index(2, 1).unwrap();
        s.values_mut()[k] = 7.5;
        assert_eq!(s.to_dense()[(2, 1)], 7.5);
        assert_eq!(s.entry_index(9, 0), None);
    }
}
