#![forbid(unsafe_code)]
//! Dense linear algebra substrate for the `memlp` workspace.
//!
//! The memristor-crossbar LP solver simulates analog hardware by solving the
//! *perturbed* linear systems the hardware would physically settle to, so the
//! whole workspace rests on a small, fast, dependency-free dense linear
//! algebra kernel:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with block operations,
//! * [`LuFactors`] — blocked LU decomposition with partial pivoting
//!   (the O(N³) direct method the paper's complexity comparison targets),
//! * [`iterative`] — Gauss–Seidel and Jacobi (the O(N²)-per-iteration
//!   methods mentioned in §3.5 of the paper),
//! * [`SparseMatrix`] / [`SparseLu`] — CSR kernels and a fill-reducing
//!   sparse LU with symbolic-analysis reuse, the structure-exploiting
//!   digital path matching the paper's O(N)-per-iteration argument,
//! * [`ops`] — vector kernels (dot, axpy, norms) on plain `&[f64]` slices,
//! * [`kernels`] — register-tiled, autovectorizer-friendly microkernels
//!   behind the dense and CSR entry points, with a [`KernelPolicy`]
//!   selecting tile shapes (all shapes are bitwise-identical),
//! * [`parallel`] — the scoped-thread execution layer the hot kernels
//!   (LU trailing update, matvec, multi-column solves) schedule through,
//!   governed by `MEMLP_THREADS`,
//! * [`norm_est`] — a deterministic power-iteration estimate of `‖A‖₂`
//!   for first-order step-size selection, built on the CSR kernels and
//!   the thread pool.
//!
//! Vectors are deliberately plain `Vec<f64>` / `&[f64]`: every consumer in
//! the workspace (solvers, crossbar models, generators) wants to own and
//! mutate raw buffers, and a wrapper type would add friction without adding
//! invariants.
//!
//! # Example
//!
//! ```
//! use memlp_linalg::{Matrix, solve};
//!
//! # fn main() -> Result<(), memlp_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let x = solve(&a, &[1.0, 2.0])?;
//! assert!((a.matvec(&x)[0] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod error;
mod lu;
mod matrix;
mod norms;
mod sparse;
mod sparse_lu;

pub mod iterative;
pub mod kernels;
pub mod norm_est;
pub mod ops;
pub mod parallel;

pub use error::LinalgError;
pub use kernels::KernelPolicy;
pub use lu::LuFactors;
pub use matrix::Matrix;
pub use norms::{cond_1_estimate, inf_norm_mat, one_norm_mat};
pub use sparse::SparseMatrix;
pub use sparse_lu::SparseLu;

/// Solves the dense linear system `A·x = b` by LU decomposition with partial
/// pivoting.
///
/// This is a convenience wrapper around [`LuFactors::factor`] followed by
/// [`LuFactors::solve`]; factor explicitly when solving against multiple
/// right-hand sides.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if `A` is not square or `b`
/// has the wrong length, and [`LinalgError::Singular`] if a zero pivot is
/// encountered.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    LuFactors::factor(a.clone())?.solve(b)
}

/// Solves `A·x = b` and polishes the result with `steps` rounds of iterative
/// refinement (residual recomputed in f64; helpful when `A` is
/// ill-conditioned).
///
/// # Errors
///
/// Same error conditions as [`solve`].
pub fn solve_refined(a: &Matrix, b: &[f64], steps: usize) -> Result<Vec<f64>, LinalgError> {
    let lu = LuFactors::factor(a.clone())?;
    let mut x = lu.solve(b)?;
    for _ in 0..steps {
        // r = b - A x
        let ax = a.matvec(&x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let dx = lu.solve(&r)?;
        ops::axpy(1.0, &dx, &mut x);
    }
    Ok(x)
}
