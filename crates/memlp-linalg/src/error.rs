use std::error::Error;
use std::fmt;

/// Errors produced by the linear algebra substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The matrix is (numerically) singular: no usable pivot was found while
    /// factoring column `column`.
    Singular {
        /// Column index at which factorization broke down.
        column: usize,
    },
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape that was supplied.
        found: String,
    },
    /// An iterative method failed to reach the requested tolerance.
    NotConverged {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual norm when iteration stopped.
        residual: f64,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular { column } => {
                write!(f, "matrix is singular (zero pivot at column {column})")
            }
            LinalgError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            LinalgError::NotConverged { iterations, residual } => write!(
                f,
                "iterative method did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
        }
    }
}

impl Error for LinalgError {}

pub(crate) fn dim_mismatch(expected: impl Into<String>, found: impl Into<String>) -> LinalgError {
    LinalgError::DimensionMismatch {
        expected: expected.into(),
        found: found.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_singular() {
        let e = LinalgError::Singular { column: 3 };
        assert_eq!(e.to_string(), "matrix is singular (zero pivot at column 3)");
    }

    #[test]
    fn display_dimension_mismatch() {
        let e = dim_mismatch("3x3", "3x4");
        assert!(e.to_string().contains("expected 3x3"));
        assert!(e.to_string().contains("found 3x4"));
    }

    #[test]
    fn display_not_converged() {
        let e = LinalgError::NotConverged {
            iterations: 10,
            residual: 0.5,
        };
        assert!(e.to_string().contains("10 iterations"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
