//! Register-tiled, autovectorizer-friendly microkernels for the dense hot
//! paths (and the blocked CSR SpMV), plus the [`KernelPolicy`] that selects
//! tile shapes at the `Matrix`/CSR entry points.
//!
//! # Why tiles help on this workload
//!
//! The workspace forbids `unsafe`, so there are no intrinsics here: every
//! kernel is plain indexed Rust shaped so LLVM's autovectorizer emits SIMD.
//! The scalar kernels (one output element at a time, a single 4-lane
//! accumulator tree) already vectorize, but they are latency-bound: one
//! f64 add chain per lane leaves most of the FP pipes idle. A register
//! tile computes `MR` output rows (matvec) or an `MR × NR` output block
//! (matmul / LU trailing update) per pass, which
//!
//! 1. multiplies the number of independent accumulation chains (`MR × 4`
//!    lanes for matvec) so FP latency is hidden, and
//! 2. shares each loaded `x`/`B`-row chunk across all `MR` rows, cutting
//!    memory traffic per flop.
//!
//! # Determinism across tile shapes (and threads)
//!
//! Every kernel obeys one discipline, inherited from [`crate::ops::dot`]:
//!
//! * **Reductions** (matvec, scaled-Gram rows, SpMV rows) use exactly four
//!   accumulator lanes — lane `l` sums the elements at indices
//!   `≡ l (mod 4)` in order — combined as `(s0 + s1) + (s2 + s3)`, with a
//!   sequential tail. The lane assignment is a pure function of the
//!   problem shape, never of `MR`/`NR` or the thread count.
//! * **Updates** (matmul, LU trailing update) accumulate each output
//!   element sequentially over the inner `k` index, seeded from the
//!   element's current value. Tiling groups *outputs* into register
//!   blocks; it never reorders the per-element sum.
//!
//! Because per-element arithmetic order is fixed, every supported tile
//! shape — including the plain-loop fallback below the flop cutoff — is
//! **bit-for-bit identical**, and tiling composes freely with the fixed
//! band partitions of [`crate::parallel`]. The `kernel_properties` and
//! `threaded` test suites pin both properties.
//!
//! # Packing
//!
//! Kernels that cannot read their operands contiguously (the scaled-Gram
//! row scaling, the LU trailing update's strided `L21` panel) first pack
//! them into a reusable thread-local scratch buffer via
//! [`with_pack_buffer`] — the same buffer-recycling approach as the
//! solver-side scratch workspaces, so steady-state iterations do not
//! allocate.

use std::cell::Cell;

/// Accumulator lanes per reduction — the fixed fan-out of the workspace's
/// summation tree (see [`crate::ops::dot`]). Never varies with the policy.
pub const LANES: usize = 4;

/// Default flop count below which the tiled paths stand down and the plain
/// scalar loops run instead (dispatch and remainder handling cost more
/// than they save on tiny operands). Both paths are bitwise-identical, so
/// the cutoff is a pure performance knob.
pub const TILE_CUTOFF_FLOPS: usize = 2048;

/// Scratch budget for [`gemm_acc`]'s packed `B` column blocks. Sized to
/// the L2 a single worker can call its own on the machines this workspace
/// targets: big enough that the LU trailing update's whole `U₁₂`
/// (`panel width × remaining columns`, a few hundred KB up to the
/// [`DENSE`-guarded](crate) core sizes) packs in one block — the i-sweep
/// then streams `C` exactly once — while a worst-case square matmul
/// degrades to a few blocks instead of an unbounded allocation.
pub const PACK_BUDGET_BYTES: usize = 4 * 1024 * 1024;

thread_local! {
    /// Test/bench override installed by [`with_policy`].
    static OVERRIDE: Cell<Option<KernelPolicy>> = const { Cell::new(None) };
    /// Reusable packing scratch; taken/restored so nested users degrade to
    /// a fresh allocation instead of aliasing.
    static PACK: Cell<Vec<f64>> = const { Cell::new(Vec::new()) };
}

/// Tile-shape selection for the dense microkernels.
///
/// The policy is resolved at each `Matrix`/CSR entry point
/// ([`KernelPolicy::resolve`]): a thread-local override installed by
/// [`with_policy`] (how the invariance tests and the kernel microbench
/// pin shapes) falls back to [`KernelPolicy::tiled`]. All supported
/// shapes produce bit-for-bit identical results; unsupported shapes fall
/// back to the plain loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelPolicy {
    /// Output rows per register tile. Supported: 1 (plain), 2, 4, 8.
    pub mr: usize,
    /// Output columns per matmul/trailing-update register tile.
    /// Supported: 4, 8. Ignored when `mr` is 1.
    pub nr: usize,
    /// Total-flop threshold below which the plain loops run.
    pub tile_cutoff_flops: usize,
}

impl Default for KernelPolicy {
    fn default() -> Self {
        KernelPolicy::tiled()
    }
}

impl KernelPolicy {
    /// The production policy: MR = 4 row tiles, 4×8 matmul tiles. Measured
    /// on the kernel microbench as the best all-round shape (see
    /// DESIGN.md §14).
    pub const fn tiled() -> Self {
        KernelPolicy {
            mr: 4,
            nr: 8,
            tile_cutoff_flops: TILE_CUTOFF_FLOPS,
        }
    }

    /// The plain-loop reference: no register tiling at any size. Bitwise
    /// identical to every tiled shape; used as the comparison baseline by
    /// the property tests and the microbench.
    pub const fn plain() -> Self {
        KernelPolicy {
            mr: 1,
            nr: LANES,
            tile_cutoff_flops: usize::MAX,
        }
    }

    /// Resolves the active policy: [`with_policy`] override → tiled
    /// default.
    pub fn resolve() -> Self {
        OVERRIDE.with(Cell::get).unwrap_or_default()
    }

    /// The row-tile height to use for a reduction kernel costing `flops`
    /// in total: 1 below the cutoff or for unsupported `mr`.
    pub fn row_tile(self, flops: usize) -> usize {
        if flops < self.tile_cutoff_flops {
            return 1;
        }
        match self.mr {
            2 | 4 | 8 => self.mr,
            _ => 1,
        }
    }

    /// The `(MR, NR)` register-tile shape for an update kernel costing
    /// `flops` in total; `(1, _)` selects the plain loops.
    pub fn gemm_tile(self, flops: usize) -> (usize, usize) {
        if flops < self.tile_cutoff_flops {
            return (1, LANES);
        }
        match (self.mr, self.nr) {
            (2, 4) | (2, 8) | (4, 4) | (4, 8) | (8, 4) => (self.mr, self.nr),
            _ => (1, LANES),
        }
    }
}

/// Runs `f` with the calling thread's kernel policy forced to `policy`,
/// restoring the previous override after — the tile-shape analogue of
/// [`crate::parallel::with_threads`].
pub fn with_policy<T>(policy: KernelPolicy, f: impl FnOnce() -> T) -> T {
    let prev = OVERRIDE.with(|c| c.replace(Some(policy)));
    struct Restore(Option<KernelPolicy>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Hands `f` a zeroed scratch slice of length `len` drawn from a reusable
/// thread-local buffer. The buffer is *taken* for the duration of `f`, so
/// a nested call simply allocates fresh instead of aliasing; worker
/// threads of the parallel pool each carry their own buffer.
pub fn with_pack_buffer<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    PACK.with(|cell| {
        let mut buf = cell.take();
        buf.clear();
        buf.resize(len, 0.0);
        let out = f(&mut buf);
        cell.set(buf);
        out
    })
}

// --- dense matvec -------------------------------------------------------

/// `y[r] = A[r, :] · x` for `y.len()` consecutive rows of a row-major
/// band `a` (row stride = `cols`), register-tiled `mr` rows at a time.
/// Every row is an independent 4-lane dot, so the result is bitwise
/// independent of `mr`.
pub fn matvec_rows(mr: usize, a: &[f64], cols: usize, x: &[f64], y: &mut [f64]) {
    let rows = y.len();
    debug_assert!(a.len() >= rows * cols);
    debug_assert_eq!(x.len(), cols);
    let mut i = 0;
    match mr {
        2 => {
            while i + 2 <= rows {
                matvec_tile::<2>(&a[i * cols..], cols, x, &mut y[i..i + 2]);
                i += 2;
            }
        }
        4 => {
            while i + 4 <= rows {
                matvec_tile::<4>(&a[i * cols..], cols, x, &mut y[i..i + 4]);
                i += 4;
            }
        }
        8 => {
            while i + 8 <= rows {
                matvec_tile::<8>(&a[i * cols..], cols, x, &mut y[i..i + 8]);
                i += 8;
            }
        }
        _ => {}
    }
    while i < rows {
        y[i] = crate::ops::dot(&a[i * cols..(i + 1) * cols], x);
        i += 1;
    }
}

/// One `MR`-row register tile: `MR × LANES` accumulators, one shared `x`
/// chunk per step. Per row this is exactly the [`crate::ops::dot`] lane
/// tree, so remainder rows handled by `dot` agree bitwise.
#[inline]
fn matvec_tile<const MR: usize>(a: &[f64], cols: usize, x: &[f64], y: &mut [f64]) {
    let chunks = cols / LANES;
    let mut acc = [[0.0f64; LANES]; MR];
    for c in 0..chunks {
        let b = c * LANES;
        let xc = &x[b..b + LANES];
        for r in 0..MR {
            let ac = &a[r * cols + b..r * cols + b + LANES];
            for l in 0..LANES {
                acc[r][l] += ac[l] * xc[l];
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        let mut s = (acc_r[0] + acc_r[1]) + (acc_r[2] + acc_r[3]);
        for j in LANES * chunks..cols {
            s += a[r * cols + j] * x[j];
        }
        y[r] = s;
    }
}

// --- matmul / trailing-update accumulation ------------------------------

/// `C[r, j] += Σ_k A[r, k] · B[k, j]` over `rows × n` outputs, with row
/// strides `ldc`/`lda`/`ldb` (`B` is read at column offset 0). Each
/// output element is seeded from its current value and accumulated
/// **sequentially over `k`**, so the result is bitwise independent of the
/// `(mr, nr)` register-tile shape — and identical to the plain i-k-j
/// loops. The LU trailing update reuses this with a pre-negated packed
/// `A` (IEEE negation is exact, so `C += (−L)·U` is bitwise `C −= L·U`).
///
/// The tiled region packs `B` into `k × NR` column panels, as many at a
/// time as fit [`PACK_BUDGET_BYTES`] of scratch, then sweeps the row
/// tiles over each packed column block. The pack fixes the `B` walk — the
/// unpacked tile reads `B` at stride `8·ldb` per `k` step, a fresh cache
/// line (and, past ~4 KB rows, a fresh page) every step, where packed
/// panels stream linearly and are reused by every row tile. The i-outer
/// sweep inside a block keeps `C`'s access prefetch-friendly: each tile's
/// `MR` output rows are revisited across consecutive panels rather than
/// the whole `C` being re-strided per panel (the large-`C` trailing
/// update is latency-bound exactly there). For the LU trailing shape
/// (`k` = panel width, `B` a few hundred KB) one block covers all of `B`.
/// Packing is a pure copy, so it cannot change the bits; tiles own
/// disjoint outputs, so the block and panel order cannot either.
#[allow(clippy::too_many_arguments)]
pub fn gemm_acc(
    (mr, nr): (usize, usize),
    c: &mut [f64],
    ldc: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    rows: usize,
    n: usize,
    k: usize,
) {
    debug_assert!(rows == 0 || c.len() >= (rows - 1) * ldc + n);
    debug_assert!(rows == 0 || a.len() >= (rows - 1) * lda + k);
    debug_assert!(k == 0 || b.len() >= (k - 1) * ldb + n);
    let (rt, nt) = match (mr, nr) {
        (2, 4) | (2, 8) | (4, 4) | (4, 8) | (8, 4) => (rows / mr * mr, n / nr * nr),
        _ => (0, 0),
    };
    if rt > 0 && nt > 0 {
        // Whole NR-panels per column block, at least one even when a
        // single panel overruns the budget (`k` very large).
        let panels = (PACK_BUDGET_BYTES / 8 / (k * nr)).max(1);
        let jc = (panels * nr).min(nt);
        with_pack_buffer(k * jc, |bp| {
            let mut jb = 0;
            while jb < nt {
                let jw = jc.min(nt - jb);
                for p in 0..jw / nr {
                    let j0 = jb + p * nr;
                    let dst = &mut bp[p * k * nr..(p + 1) * k * nr];
                    for kk in 0..k {
                        dst[kk * nr..(kk + 1) * nr]
                            .copy_from_slice(&b[kk * ldb + j0..kk * ldb + j0 + nr]);
                    }
                }
                let mut i0 = 0;
                while i0 < rt {
                    for p in 0..jw / nr {
                        let j0 = jb + p * nr;
                        let panel = &bp[p * k * nr..(p + 1) * k * nr];
                        let ct = &mut c[i0 * ldc + j0..];
                        let at = &a[i0 * lda..];
                        match (mr, nr) {
                            (2, 4) => gemm_tile::<2, 4>(ct, ldc, at, lda, panel, k),
                            (2, 8) => gemm_tile::<2, 8>(ct, ldc, at, lda, panel, k),
                            (4, 4) => gemm_tile::<4, 4>(ct, ldc, at, lda, panel, k),
                            (4, 8) => gemm_tile::<4, 8>(ct, ldc, at, lda, panel, k),
                            (8, 4) => gemm_tile::<8, 4>(ct, ldc, at, lda, panel, k),
                            _ => unreachable!("tile region is empty for unsupported shapes"),
                        }
                    }
                    i0 += mr;
                }
                jb += jw;
            }
        });
    }
    // Column remainder of the tiled rows, then the row remainder (the
    // whole matrix when the plain path is selected).
    gemm_plain(c, ldc, a, lda, b, ldb, 0..rt, nt..n, k);
    gemm_plain(c, ldc, a, lda, b, ldb, rt..rows, 0..n, k);
}

/// Plain i-k-j accumulation over a rectangular output region; the
/// remainder path of [`gemm_acc`] and its full plain fallback.
#[allow(clippy::too_many_arguments)]
fn gemm_plain(
    c: &mut [f64],
    ldc: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
    k: usize,
) {
    if cols.is_empty() {
        return;
    }
    for i in rows {
        let crow = &mut c[i * ldc + cols.start..i * ldc + cols.end];
        let arow = &a[i * lda..i * lda + k];
        for (kk, &aik) in arow.iter().enumerate() {
            let brow = &b[kk * ldb + cols.start..kk * ldb + cols.end];
            for (cij, &bkj) in crow.iter_mut().zip(brow) {
                *cij += aik * bkj;
            }
        }
    }
}

/// One `MR × NR` register tile of [`gemm_acc`]: `c` and `a` are
/// pre-offset to the tile's top-left corner (row strides `ldc`/`lda`
/// still apply), `bp` a packed `k × NR` panel (row stride `NR`) whose
/// chunks are shared across the `MR` rows, `k` strictly sequential.
#[inline]
fn gemm_tile<const MR: usize, const NR: usize>(
    c: &mut [f64],
    ldc: usize,
    a: &[f64],
    lda: usize,
    bp: &[f64],
    k: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    for (r, acc_r) in acc.iter_mut().enumerate() {
        acc_r.copy_from_slice(&c[r * ldc..r * ldc + NR]);
    }
    for kk in 0..k {
        let bc = &bp[kk * NR..(kk + 1) * NR];
        for r in 0..MR {
            let ar = a[r * lda + kk];
            for l in 0..NR {
                acc[r][l] += ar * bc[l];
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        c[r * ldc..r * ldc + NR].copy_from_slice(acc_r);
    }
}

// --- blocked CSR SpMV ---------------------------------------------------

/// One CSR row's dot product, blocked over the nonzero span: the same
/// fixed 4-lane tree as [`crate::ops::dot`], with gathered `x` loads.
/// Four independent chains hide the gather + FP-add latency that made the
/// single-accumulator loop serial. The discipline is fixed (not
/// policy-dependent), so sparse results never vary with tile shape.
#[inline]
pub fn spmv_row(values: &[f64], col_idx: &[usize], x: &[f64]) -> f64 {
    debug_assert_eq!(values.len(), col_idx.len());
    let nnz = values.len();
    let chunks = nnz / LANES;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for cnk in 0..chunks {
        let p = cnk * LANES;
        s0 += values[p] * x[col_idx[p]];
        s1 += values[p + 1] * x[col_idx[p + 1]];
        s2 += values[p + 2] * x[col_idx[p + 2]];
        s3 += values[p + 3] * x[col_idx[p + 3]];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for p in LANES * chunks..nnz {
        s += values[p] * x[col_idx[p]];
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn seq(n: usize, scale: f64, shift: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64).mul_add(scale, shift)).collect()
    }

    #[test]
    fn default_policy_is_tiled() {
        assert_eq!(KernelPolicy::resolve(), KernelPolicy::tiled());
    }

    #[test]
    fn with_policy_overrides_and_restores() {
        let outer = with_policy(KernelPolicy::plain(), || {
            let inner = with_policy(KernelPolicy::tiled(), KernelPolicy::resolve);
            assert_eq!(inner, KernelPolicy::tiled());
            KernelPolicy::resolve()
        });
        assert_eq!(outer, KernelPolicy::plain());
        assert_eq!(KernelPolicy::resolve(), KernelPolicy::tiled());
    }

    #[test]
    fn cutoff_selects_plain_loops() {
        let p = KernelPolicy::tiled();
        assert_eq!(p.row_tile(p.tile_cutoff_flops - 1), 1);
        assert_eq!(p.row_tile(p.tile_cutoff_flops), 4);
        assert_eq!(p.gemm_tile(0), (1, LANES));
        assert_eq!(p.gemm_tile(usize::MAX), (4, 8));
    }

    #[test]
    fn unsupported_shapes_fall_back_to_plain() {
        let p = KernelPolicy {
            mr: 3,
            nr: 5,
            tile_cutoff_flops: 0,
        };
        assert_eq!(p.row_tile(usize::MAX), 1);
        assert_eq!(p.gemm_tile(usize::MAX), (1, LANES));
    }

    #[test]
    fn pack_buffer_is_zeroed_and_reused() {
        with_pack_buffer(4, |b| b.fill(7.0));
        with_pack_buffer(8, |b| assert!(b.iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn matvec_rows_matches_dot_for_every_tile_height() {
        let (rows, cols) = (13, 19); // crosses every MR and LANES boundary
        let a = seq(rows * cols, 0.37, -3.0);
        let x = seq(cols, -0.11, 1.0);
        let mut reference = vec![0.0; rows];
        matvec_rows(1, &a, cols, &x, &mut reference);
        for i in 0..rows {
            assert_eq!(
                reference[i],
                crate::ops::dot(&a[i * cols..(i + 1) * cols], &x)
            );
        }
        for mr in [2, 4, 8] {
            let mut y = vec![0.0; rows];
            matvec_rows(mr, &a, cols, &x, &mut y);
            assert_eq!(bits(&y), bits(&reference), "mr={mr}");
        }
    }

    #[test]
    fn gemm_acc_matches_plain_for_every_tile_shape() {
        let (rows, n, k) = (11, 14, 9); // not multiples of any MR/NR
        let a = seq(rows * k, 0.21, -1.0);
        let b = seq(k * n, -0.13, 0.5);
        let seed = seq(rows * n, 0.05, 0.2);
        let mut reference = seed.clone();
        gemm_acc((1, LANES), &mut reference, n, &a, k, &b, n, rows, n, k);
        for tile in [(2, 4), (2, 8), (4, 4), (4, 8), (8, 4)] {
            let mut c = seed.clone();
            gemm_acc(tile, &mut c, n, &a, k, &b, n, rows, n, k);
            assert_eq!(bits(&c), bits(&reference), "tile={tile:?}");
        }
    }

    #[test]
    fn gemm_acc_respects_row_strides() {
        // Embed a 3x2 update inside wider C/A buffers (ldc/lda > n/k).
        let (rows, n, k, ldc, lda) = (3, 2, 4, 5, 7);
        let a = seq(rows * lda, 0.3, -0.7);
        let b = seq(k * n, 0.9, 0.1);
        let mut c = seq(rows * ldc, 0.0, 1.0);
        let untouched = c.clone();
        gemm_acc((4, 8), &mut c, ldc, &a, lda, &b, n, rows, n, k);
        for i in 0..rows {
            for j in 0..n {
                let mut want = 1.0;
                for kk in 0..k {
                    want += a[i * lda + kk] * b[kk * n + j];
                }
                assert_eq!(c[i * ldc + j], want);
            }
            // Slack columns beyond n are untouched.
            for j in n..ldc {
                assert_eq!(c[i * ldc + j], untouched[i * ldc + j]);
            }
        }
    }

    #[test]
    fn spmv_row_matches_lane_tree() {
        let values = seq(11, 0.7, -2.0);
        let col_idx: Vec<usize> = (0..11).map(|p| (p * 3) % 17).collect();
        let x = seq(17, -0.2, 3.0);
        let gathered: Vec<f64> = col_idx.iter().map(|&j| x[j]).collect();
        assert_eq!(
            spmv_row(&values, &col_idx, &x).to_bits(),
            crate::ops::dot(&values, &gathered).to_bits()
        );
    }
}
