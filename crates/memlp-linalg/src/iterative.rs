//! Iterative linear-system solvers.
//!
//! §3.5 of the paper contrasts the crossbar's O(1) analog solve with
//! software alternatives: direct methods at O(N³) and iterative methods
//! (Gauss–Seidel) at O(N²) per sweep. These implementations exist so the
//! benchmark harness can reproduce that comparison, and as an internal tool
//! for the NoC's tiled block solves.

use crate::error::{dim_mismatch, LinalgError};
use crate::lu::LuFactors;
use crate::matrix::Matrix;
use crate::ops;

/// Options controlling an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterOptions {
    /// Maximum number of sweeps before giving up.
    pub max_sweeps: usize,
    /// Convergence tolerance on the infinity norm of the residual, relative
    /// to `‖b‖∞` (absolute if `b = 0`).
    pub tol: f64,
    /// Successive over-relaxation factor (1.0 = plain Gauss–Seidel).
    pub relaxation: f64,
}

impl Default for IterOptions {
    fn default() -> Self {
        IterOptions {
            max_sweeps: 10_000,
            tol: 1e-10,
            relaxation: 1.0,
        }
    }
}

/// Outcome of an iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub struct IterSolution {
    /// Solution estimate.
    pub x: Vec<f64>,
    /// Sweeps actually performed.
    pub sweeps: usize,
    /// Final residual infinity norm.
    pub residual: f64,
}

/// Solves `A·x = b` with (successively over-relaxed) Gauss–Seidel sweeps.
///
/// Converges for strictly diagonally dominant or symmetric positive-definite
/// systems; the caller is responsible for supplying a suitable matrix.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] on shape mismatch,
/// [`LinalgError::Singular`] if a diagonal entry is zero, and
/// [`LinalgError::NotConverged`] if the tolerance is not reached.
pub fn gauss_seidel(a: &Matrix, b: &[f64], opts: IterOptions) -> Result<IterSolution, LinalgError> {
    check_shapes(a, b)?;
    let n = a.rows();
    for i in 0..n {
        if a[(i, i)] == 0.0 {
            return Err(LinalgError::Singular { column: i });
        }
    }
    let bnorm = ops::inf_norm(b).max(1.0);
    let mut x = vec![0.0; n];
    for sweep in 1..=opts.max_sweeps {
        for i in 0..n {
            let row = a.row(i);
            let mut s = b[i];
            for (j, &aij) in row.iter().enumerate() {
                if j != i {
                    s -= aij * x[j];
                }
            }
            let xi_new = s / row[i];
            x[i] += opts.relaxation * (xi_new - x[i]);
        }
        let residual = residual_inf(a, &x, b);
        if residual <= opts.tol * bnorm {
            return Ok(IterSolution {
                x,
                sweeps: sweep,
                residual,
            });
        }
    }
    let residual = residual_inf(a, &x, b);
    Err(LinalgError::NotConverged {
        iterations: opts.max_sweeps,
        residual,
    })
}

/// Solves `A·x = b` with Jacobi sweeps (fully parallelizable variant; used
/// as the behavioural model for simultaneous analog relaxation across NoC
/// tiles).
///
/// # Errors
///
/// Same conditions as [`gauss_seidel`].
pub fn jacobi(a: &Matrix, b: &[f64], opts: IterOptions) -> Result<IterSolution, LinalgError> {
    check_shapes(a, b)?;
    let n = a.rows();
    for i in 0..n {
        if a[(i, i)] == 0.0 {
            return Err(LinalgError::Singular { column: i });
        }
    }
    let bnorm = ops::inf_norm(b).max(1.0);
    let mut x = vec![0.0; n];
    let mut xn = vec![0.0; n];
    for sweep in 1..=opts.max_sweeps {
        for i in 0..n {
            let row = a.row(i);
            let mut s = b[i];
            for (j, &aij) in row.iter().enumerate() {
                if j != i {
                    s -= aij * x[j];
                }
            }
            xn[i] = x[i] + opts.relaxation * (s / row[i] - x[i]);
        }
        std::mem::swap(&mut x, &mut xn);
        let residual = residual_inf(a, &x, b);
        if residual <= opts.tol * bnorm {
            return Ok(IterSolution {
                x,
                sweeps: sweep,
                residual,
            });
        }
    }
    let residual = residual_inf(a, &x, b);
    Err(LinalgError::NotConverged {
        iterations: opts.max_sweeps,
        residual,
    })
}

/// Iterative refinement: polishes an LU-based solve of `A·x = b` by
/// repeatedly solving `A·δ = b − A·x` with the same factors and updating
/// `x ← x + δ`, up to `rounds` correction rounds.
///
/// `a` must be the matrix the right-hand side lives on; `lu` may be the
/// factorization of `a` itself (classical refinement, recovering digits
/// lost to pivot growth / cancellation) or of a nearby matrix — e.g. the
/// *realized* matrix a faulty crossbar actually stored, with `a` the
/// intended target — in which case refinement digitally corrects the
/// hardware's systematic error as long as the two matrices are close
/// enough for the iteration to contract. Stops early once the residual
/// stalls. This is the digital fallback rung of the solver recovery ladder.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] on shape mismatch (including
/// `lu` factors of a different dimension) and propagates failures from the
/// triangular solves.
pub fn refine(
    a: &Matrix,
    lu: &LuFactors,
    b: &[f64],
    rounds: usize,
) -> Result<IterSolution, LinalgError> {
    check_shapes(a, b)?;
    if lu.dim() != a.rows() {
        return Err(dim_mismatch(
            format!("LU factors of dimension {}", a.rows()),
            format!("dimension {}", lu.dim()),
        ));
    }
    let mut x = lu.solve(b)?;
    let mut residual = residual_inf(a, &x, b);
    let mut sweeps = 0;
    for _ in 0..rounds {
        if residual == 0.0 {
            break;
        }
        let ax = a.matvec(&x);
        let r = ops::sub(b, &ax);
        let delta = lu.solve(&r)?;
        let candidate: Vec<f64> = x.iter().zip(&delta).map(|(xi, di)| xi + di).collect();
        let cand_residual = residual_inf(a, &candidate, b);
        // Keep only strict improvements: when the LU matrix is too far from
        // `a` the iteration diverges, and the unrefined solve is the best
        // answer available.
        if !cand_residual.is_finite() || cand_residual >= residual {
            break;
        }
        x = candidate;
        residual = cand_residual;
        sweeps += 1;
    }
    Ok(IterSolution {
        x,
        sweeps,
        residual,
    })
}

fn check_shapes(a: &Matrix, b: &[f64]) -> Result<(), LinalgError> {
    if !a.is_square() {
        return Err(dim_mismatch(
            "square matrix",
            format!("{}x{}", a.rows(), a.cols()),
        ));
    }
    if b.len() != a.rows() {
        return Err(dim_mismatch(
            format!("vector of length {}", a.rows()),
            format!("length {}", b.len()),
        ));
    }
    Ok(())
}

fn residual_inf(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.matvec(x);
    ops::inf_norm(&ops::sub(b, &ax))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dominant_system() -> (Matrix, Vec<f64>, Vec<f64>) {
        let a =
            Matrix::from_rows(&[&[10.0, 1.0, 2.0], &[1.0, 8.0, -1.0], &[2.0, -1.0, 12.0]]).unwrap();
        let xtrue = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&xtrue);
        (a, b, xtrue)
    }

    #[test]
    fn gauss_seidel_converges_on_dominant() {
        let (a, b, xtrue) = dominant_system();
        let sol = gauss_seidel(&a, &b, IterOptions::default()).unwrap();
        for (x, t) in sol.x.iter().zip(&xtrue) {
            assert!((x - t).abs() < 1e-8);
        }
        assert!(sol.sweeps < 100);
    }

    #[test]
    fn jacobi_converges_on_dominant() {
        let (a, b, xtrue) = dominant_system();
        let sol = jacobi(&a, &b, IterOptions::default()).unwrap();
        for (x, t) in sol.x.iter().zip(&xtrue) {
            assert!((x - t).abs() < 1e-8);
        }
    }

    #[test]
    fn gauss_seidel_converges_faster_than_jacobi() {
        let (a, b, _) = dominant_system();
        let gs = gauss_seidel(&a, &b, IterOptions::default()).unwrap();
        let ja = jacobi(&a, &b, IterOptions::default()).unwrap();
        assert!(
            gs.sweeps <= ja.sweeps,
            "GS {} vs Jacobi {}",
            gs.sweeps,
            ja.sweeps
        );
    }

    #[test]
    fn reports_not_converged() {
        // Not diagonally dominant; Jacobi diverges.
        let a = Matrix::from_rows(&[&[1.0, 5.0], &[7.0, 1.0]]).unwrap();
        let b = vec![1.0, 1.0];
        let err = jacobi(
            &a,
            &b,
            IterOptions {
                max_sweeps: 50,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, LinalgError::NotConverged { .. }));
    }

    #[test]
    fn rejects_zero_diagonal() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let err = gauss_seidel(&a, &[1.0, 1.0], IterOptions::default()).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { column: 0 }));
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        assert!(gauss_seidel(&a, &[1.0, 1.0], IterOptions::default()).is_err());
        let a = Matrix::identity(2);
        assert!(jacobi(&a, &[1.0], IterOptions::default()).is_err());
    }

    #[test]
    fn refine_polishes_an_exact_factorization() {
        let (a, b, xtrue) = dominant_system();
        let lu = LuFactors::factor(a.clone()).unwrap();
        let sol = refine(&a, &lu, &b, 3).unwrap();
        for (x, t) in sol.x.iter().zip(&xtrue) {
            assert!((x - t).abs() < 1e-12);
        }
        assert!(sol.residual <= residual_inf(&a, &lu.solve(&b).unwrap(), &b));
    }

    #[test]
    fn refine_corrects_a_perturbed_factorization() {
        // Factor a nearby (realized) matrix, refine against the true target:
        // the fallback scenario where digital refinement undoes hardware
        // error.
        let (a, b, xtrue) = dominant_system();
        let mut perturbed = a.clone();
        for i in 0..3 {
            for j in 0..3 {
                perturbed[(i, j)] *= 1.0 + 0.01 * ((i + 2 * j) as f64 - 2.0);
            }
        }
        let lu = LuFactors::factor(perturbed).unwrap();
        let raw = lu.solve(&b).unwrap();
        let raw_err: f64 = raw
            .iter()
            .zip(&xtrue)
            .map(|(x, t)| (x - t).abs())
            .fold(0.0, f64::max);
        let sol = refine(&a, &lu, &b, 20).unwrap();
        let ref_err: f64 = sol
            .x
            .iter()
            .zip(&xtrue)
            .map(|(x, t)| (x - t).abs())
            .fold(0.0, f64::max);
        assert!(
            ref_err < 0.1 * raw_err,
            "refinement {ref_err} vs raw {raw_err}"
        );
        assert!(sol.sweeps > 0);
    }

    #[test]
    fn refine_rejects_mismatched_factors() {
        let (a, b, _) = dominant_system();
        let lu = LuFactors::factor(Matrix::identity(2)).unwrap();
        assert!(refine(&a, &lu, &b, 2).is_err());
    }

    #[test]
    fn sor_accelerates_convergence() {
        let (a, b, _) = dominant_system();
        let plain = gauss_seidel(&a, &b, IterOptions::default()).unwrap();
        let sor = gauss_seidel(
            &a,
            &b,
            IterOptions {
                relaxation: 1.05,
                ..Default::default()
            },
        )
        .unwrap();
        // SOR with a mild factor should not be dramatically worse.
        assert!(sor.sweeps <= plain.sweeps + 10);
    }
}
