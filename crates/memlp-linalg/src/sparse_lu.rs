//! Fill-reducing sparse LU with symbolic-analysis reuse.
//!
//! This is the digital workhorse behind the paper's O(N) per-iteration
//! claim: between PDIP iterations only the diagonal `X/Z`-blocks of the
//! Newton system change, so the *pattern* of the Schur-reduced core is
//! fixed for the whole solve. [`SparseLu::analyze`] pays the symbolic cost
//! (fill-reducing ordering + fill pattern) exactly once;
//! [`SparseLu::refactor`] then recomputes the numbers in O(fill) per
//! iteration, and [`SparseLu::solve`] runs the permuted triangular solves.
//!
//! The factorization is **static-pivot** (no numerical pivoting): the row
//! order chosen by the symbolic phase is the pivot order. That is the
//! standard interior-point trade — both target systems (the Schur-reduced
//! crossbar core and the quasidefinite KKT form of the normal equations)
//! have non-zero diagonals of fixed sign pattern, for which a no-pivot LU
//! on a symmetrized fill pattern is well defined. Numerical breakdown
//! (tiny/non-finite pivot) is reported as [`LinalgError::Singular`] so
//! callers can fall back to the dense partial-pivot path, and
//! [`SparseLu::refine`] polishes solutions against the exact matrix to
//! recover digits the static pivoting left behind.
//!
//! Ordering is greedy minimum degree on the symmetrized pattern with a
//! dense-tail cutoff: once every remaining node is adjacent to (nearly)
//! every other, further bookkeeping cannot reduce fill and the tail is
//! emitted in index order. The fill pattern itself comes from the classic
//! one-pass elimination-tree symbolic analysis (column counts + column
//! lists), so analysis is O(|L|), not O(n²).

use crate::error::{dim_mismatch, LinalgError};
use crate::sparse::SparseMatrix;
use std::collections::BTreeSet;

/// Pivots whose magnitude falls at (or below) this floor abort the numeric
/// factorization: the static pivot order has broken down and the caller
/// should fall back to dense partial pivoting. The floor sits just above
/// the subnormal range — legitimate interior-point pivots spanning many
/// orders of magnitude still pass, while exact zeros, cancellation down to
/// noise, and NaN (which fails the `>` comparison) do not.
const PIVOT_FLOOR: f64 = 1e-292;

/// Remaining-node count at or below which the ordering stops optimizing
/// and emits the rest of the nodes in index order.
const TINY_TAIL: usize = 8;

/// Sparse LU factors `P·A·Pᵀ = L·U` with a fill-reducing symmetric
/// permutation `P`, reusable symbolic analysis, and per-refactor flop
/// accounting.
///
/// `L` is unit lower triangular (unit diagonal implicit), `U` upper
/// triangular with its diagonal stored separately. Both factors share the
/// symmetrized fill pattern, so the symbolic phase runs once per pattern
/// and every subsequent [`refactor`](Self::refactor) is pure numerics.
///
/// # Example
///
/// ```
/// use memlp_linalg::{SparseLu, SparseMatrix};
///
/// let a = SparseMatrix::from_triplets(
///     3,
///     3,
///     &[(0, 0, 4.0), (0, 2, 1.0), (1, 1, 3.0), (2, 0, 1.0), (2, 2, 2.0)],
/// )
/// .unwrap();
/// let mut lu = SparseLu::factor(&a).unwrap();
/// let x = lu.solve(&[6.0, 3.0, 5.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// assert!((x[2] - 2.0).abs() < 1e-12);
///
/// // Same pattern, new numbers: symbolic analysis is reused.
/// let mut vals = a.clone();
/// vals.values_mut()[0] = 8.0;
/// lu.refactor(&vals).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// `perm[new] = old`: pivot order chosen by the symbolic phase.
    perm: Vec<usize>,
    /// `iperm[old] = new`.
    iperm: Vec<usize>,
    /// Strictly-lower pattern of the permuted factors, CSR by row,
    /// ascending columns.
    l_ptr: Vec<usize>,
    l_idx: Vec<usize>,
    /// Strictly-upper pattern, CSR by row, ascending columns.
    u_ptr: Vec<usize>,
    u_idx: Vec<usize>,
    l_val: Vec<f64>,
    u_val: Vec<f64>,
    /// Diagonal of `U` (the pivots).
    diag: Vec<f64>,
    /// Scatter workspace (dense accumulator + per-row epoch marks).
    work: Vec<f64>,
    mark: Vec<usize>,
    flops: u64,
}

impl SparseLu {
    /// Runs the symbolic phase only: fill-reducing ordering plus fill
    /// pattern of the factors. Numeric values are zeroed; call
    /// [`refactor`](Self::refactor) to populate them.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `a` is not square.
    pub fn analyze(a: &SparseMatrix) -> Result<SparseLu, LinalgError> {
        if a.rows() != a.cols() {
            return Err(dim_mismatch(
                "square matrix",
                format!("{}x{}", a.rows(), a.cols()),
            ));
        }
        let n = a.rows();
        let perm = min_degree_order(a);
        let mut iperm = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            iperm[old] = new;
        }

        // Strictly-lower pattern of the permuted, symmetrized matrix,
        // grouped by row with sorted unique columns.
        let mut lower_rows: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, j, _) in a.iter() {
            if i == j {
                continue;
            }
            let (pi, pj) = (iperm[i], iperm[j]);
            let (r, c) = if pi > pj { (pi, pj) } else { (pj, pi) };
            lower_rows[r].push(c);
        }
        for row in &mut lower_rows {
            row.sort_unstable();
            row.dedup();
        }

        // One-pass elimination-tree symbolic analysis: column counts, then
        // column lists. Column `j` of the Cholesky-shaped factor is exactly
        // row `j` of `U` (strictly-upper part), by pattern symmetry.
        const NONE: usize = usize::MAX;
        let mut parent = vec![NONE; n];
        let mut flag = vec![NONE; n];
        let mut col_count = vec![0usize; n];
        for k in 0..n {
            flag[k] = k;
            for &j0 in &lower_rows[k] {
                let mut j = j0;
                while flag[j] != k {
                    col_count[j] += 1;
                    flag[j] = k;
                    if parent[j] == NONE {
                        parent[j] = k;
                    }
                    j = parent[j];
                }
            }
        }
        let mut u_ptr = vec![0usize; n + 1];
        for j in 0..n {
            u_ptr[j + 1] = u_ptr[j] + col_count[j];
        }
        let fill = u_ptr[n];
        let mut u_idx = vec![0usize; fill];
        let mut next = u_ptr.clone();
        let mut flag = vec![NONE; n];
        for p in parent.iter_mut() {
            *p = NONE;
        }
        for k in 0..n {
            flag[k] = k;
            for &j0 in &lower_rows[k] {
                let mut j = j0;
                while flag[j] != k {
                    u_idx[next[j]] = k;
                    next[j] += 1;
                    flag[j] = k;
                    if parent[j] == NONE {
                        parent[j] = k;
                    }
                    j = parent[j];
                }
            }
        }
        // Column lists were appended in increasing `k`, so `u_idx` is
        // already sorted per row. The lower pattern is the transpose.
        let (l_ptr, l_idx) = transpose_pattern(n, &u_ptr, &u_idx);

        Ok(SparseLu {
            n,
            perm,
            iperm,
            l_val: vec![0.0; l_idx.len()],
            u_val: vec![0.0; u_idx.len()],
            l_ptr,
            l_idx,
            u_ptr,
            u_idx,
            diag: vec![0.0; n],
            work: vec![0.0; n],
            mark: vec![NONE; n],
            flops: 0,
        })
    }

    /// Symbolic analysis plus a first numeric factorization.
    ///
    /// # Errors
    ///
    /// As [`analyze`](Self::analyze) and [`refactor`](Self::refactor).
    pub fn factor(a: &SparseMatrix) -> Result<SparseLu, LinalgError> {
        let mut lu = SparseLu::analyze(a)?;
        lu.refactor(a)?;
        Ok(lu)
    }

    /// Recomputes the numeric factors for a matrix whose pattern is covered
    /// by the analyzed pattern — the per-iteration fast path. Row-wise
    /// up-looking elimination over the precomputed fill pattern; cost is
    /// O(Σ |U row| per L entry), counted into [`flops`](Self::flops).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `a` has a different
    /// shape or a stored entry outside the analyzed pattern, and
    /// [`LinalgError::Singular`] (reported in *original* indices) when a
    /// pivot is non-finite or indistinguishable from zero — the caller's
    /// cue to fall back to dense partial pivoting.
    pub fn refactor(&mut self, a: &SparseMatrix) -> Result<(), LinalgError> {
        if a.rows() != self.n || a.cols() != self.n {
            return Err(dim_mismatch(
                format!("{0}x{0} matrix", self.n),
                format!("{}x{}", a.rows(), a.cols()),
            ));
        }
        let mut flops = 0u64;
        for k in 0..self.n {
            // Mark + zero this row's pattern in the dense accumulator.
            for &j in &self.l_idx[self.l_ptr[k]..self.l_ptr[k + 1]] {
                self.work[j] = 0.0;
                self.mark[j] = k;
            }
            self.work[k] = 0.0;
            self.mark[k] = k;
            for &c in &self.u_idx[self.u_ptr[k]..self.u_ptr[k + 1]] {
                self.work[c] = 0.0;
                self.mark[c] = k;
            }
            // Scatter row perm[k] of the input into permuted coordinates.
            let oi = self.perm[k];
            let (row_ptr, col_idx, values) = (a.row_ptr(), a.col_idx(), a.values());
            for p in row_ptr[oi]..row_ptr[oi + 1] {
                let c = self.iperm[col_idx[p]];
                if self.mark[c] != k {
                    return Err(dim_mismatch(
                        "matrix matching the analyzed sparsity pattern",
                        format!("entry ({}, {}) outside the pattern", oi, col_idx[p]),
                    ));
                }
                self.work[c] += values[p];
            }
            // Eliminate: for each lower entry (ascending), divide by the
            // pivot and subtract that multiple of U's row j.
            for s in self.l_ptr[k]..self.l_ptr[k + 1] {
                let j = self.l_idx[s];
                let lkj = self.work[j] / self.diag[j];
                self.l_val[s] = lkj;
                let span = self.u_ptr[j]..self.u_ptr[j + 1];
                flops += 1 + 2 * span.len() as u64;
                for p in span {
                    self.work[self.u_idx[p]] -= lkj * self.u_val[p];
                }
            }
            let piv = self.work[k];
            // Deliberately `!(.. > ..)` rather than `<=`: a NaN pivot must
            // also take the singular path instead of poisoning the factor.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(piv.abs() > PIVOT_FLOOR) {
                return Err(LinalgError::Singular {
                    column: self.perm[k],
                });
            }
            self.diag[k] = piv;
            for p in self.u_ptr[k]..self.u_ptr[k + 1] {
                self.u_val[p] = self.work[self.u_idx[p]];
            }
        }
        self.flops = flops;
        Ok(())
    }

    /// Solves `A·x = b` with the current factors (permute, forward, back,
    /// unpermute).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on length mismatch.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.n {
            return Err(dim_mismatch(
                format!("vector of length {}", self.n),
                format!("length {}", b.len()),
            ));
        }
        let mut y = vec![0.0; self.n];
        for k in 0..self.n {
            let mut s = b[self.perm[k]];
            for p in self.l_ptr[k]..self.l_ptr[k + 1] {
                s -= self.l_val[p] * y[self.l_idx[p]];
            }
            y[k] = s;
        }
        for k in (0..self.n).rev() {
            let mut s = y[k];
            for p in self.u_ptr[k]..self.u_ptr[k + 1] {
                s -= self.u_val[p] * y[self.u_idx[p]];
            }
            y[k] = s / self.diag[k];
        }
        let mut x = vec![0.0; self.n];
        for k in 0..self.n {
            x[self.perm[k]] = y[k];
        }
        Ok(x)
    }

    /// Solves `A·x = b` and polishes with up to `rounds` rounds of
    /// iterative refinement against the exact matrix `a` (the static-pivot
    /// analogue of [`crate::iterative::refine`] — only strict residual
    /// improvements are kept).
    ///
    /// # Errors
    ///
    /// As [`solve`](Self::solve), plus a shape check on `a`.
    pub fn refine(
        &self,
        a: &SparseMatrix,
        b: &[f64],
        rounds: usize,
    ) -> Result<Vec<f64>, LinalgError> {
        if a.rows() != self.n || a.cols() != self.n {
            return Err(dim_mismatch(
                format!("{0}x{0} matrix", self.n),
                format!("{}x{}", a.rows(), a.cols()),
            ));
        }
        let mut x = self.solve(b)?;
        let mut residual = residual_inf(a, &x, b);
        for _ in 0..rounds {
            if residual == 0.0 {
                break;
            }
            let ax = a.matvec(&x);
            let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
            let delta = self.solve(&r)?;
            let candidate: Vec<f64> = x.iter().zip(&delta).map(|(xi, di)| xi + di).collect();
            let cand_residual = residual_inf(a, &candidate, b);
            if !cand_residual.is_finite() || cand_residual >= residual {
                break;
            }
            x = candidate;
            residual = cand_residual;
        }
        Ok(x)
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Floating-point operations spent by the most recent
    /// [`refactor`](Self::refactor).
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// Stored entries across both factors, diagonal included — the `|L|+|U|`
    /// fill the symbolic phase committed to.
    pub fn factor_nnz(&self) -> usize {
        self.l_idx.len() + self.u_idx.len() + self.n
    }

    /// The fill-reducing permutation (`perm[new] = old`).
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }
}

/// Greedy minimum-degree ordering on the symmetrized pattern of `a`, with
/// deterministic tie-breaking (lowest node index) and a dense-tail cutoff.
fn min_degree_order(a: &SparseMatrix) -> Vec<usize> {
    let n = a.rows();
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (i, j, _) in a.iter() {
        if i != j {
            adj[i].insert(j);
            adj[j].insert(i);
        }
    }
    let mut buckets: BTreeSet<(usize, usize)> = (0..n).map(|v| (adj[v].len(), v)).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&(deg, v)) = buckets.iter().next() {
        let remaining = n - order.len();
        if remaining <= TINY_TAIL || deg + 1 >= remaining {
            // Every remaining node is (nearly) adjacent to every other:
            // no ordering can reduce fill, emit the tail deterministically.
            let mut rest: Vec<usize> = buckets.iter().map(|&(_, node)| node).collect();
            rest.sort_unstable();
            order.extend(rest);
            break;
        }
        buckets.remove(&(deg, v));
        order.push(v);
        let neigh: Vec<usize> = adj[v].iter().copied().collect();
        for &u in &neigh {
            buckets.remove(&(adj[u].len(), u));
            adj[u].remove(&v);
        }
        adj[v].clear();
        // Eliminating v turns its neighborhood into a clique.
        for (ai, &u) in neigh.iter().enumerate() {
            for &w in &neigh[ai + 1..] {
                adj[u].insert(w);
                adj[w].insert(u);
            }
        }
        for &u in &neigh {
            buckets.insert((adj[u].len(), u));
        }
    }
    order
}

/// Counting-sort transpose of a CSR index pattern (no values).
fn transpose_pattern(n: usize, ptr: &[usize], idx: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let mut t_ptr = vec![0usize; n + 1];
    for &j in idx {
        t_ptr[j + 1] += 1;
    }
    for j in 0..n {
        t_ptr[j + 1] += t_ptr[j];
    }
    let mut next = t_ptr.clone();
    let mut t_idx = vec![0usize; idx.len()];
    for i in 0..n {
        for &j in &idx[ptr[i]..ptr[i + 1]] {
            t_idx[next[j]] = i;
            next[j] += 1;
        }
    }
    (t_ptr, t_idx)
}

fn residual_inf(a: &SparseMatrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.matvec(x);
    b.iter()
        .zip(&ax)
        .map(|(bi, ai)| (bi - ai).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::LuFactors;

    fn quasidefinite_kkt(m: usize, n: usize, seed: u64) -> SparseMatrix {
        // [[D, Aᵀ], [A, −E]] with random sparse A — the shape both sparse
        // Newton paths feed this factorization.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut trips = Vec::new();
        for j in 0..n {
            trips.push((j, j, 0.5 + next()));
        }
        for i in 0..m {
            trips.push((n + i, n + i, -(0.5 + next())));
        }
        for i in 0..m {
            for j in 0..n {
                if next() < 0.3 {
                    let v = next() * 2.0 - 1.0;
                    trips.push((n + i, j, v));
                    trips.push((j, n + i, v));
                }
            }
        }
        SparseMatrix::from_triplets(n + m, n + m, &trips).unwrap()
    }

    #[test]
    fn factors_and_solves_small_system() {
        let a = SparseMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 4.0),
                (0, 2, 1.0),
                (1, 1, 3.0),
                (2, 0, 1.0),
                (2, 2, 2.0),
            ],
        )
        .unwrap();
        let lu = SparseLu::factor(&a).unwrap();
        let xtrue = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&xtrue);
        let x = lu.solve(&b).unwrap();
        for (got, want) in x.iter().zip(&xtrue) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn agrees_with_dense_lu_on_quasidefinite_kkt() {
        for seed in 1..5 {
            let a = quasidefinite_kkt(9, 14, seed);
            let dense = a.to_dense();
            let lu = SparseLu::factor(&a).unwrap();
            let xtrue: Vec<f64> = (0..a.rows()).map(|i| (i as f64) * 0.3 - 2.0).collect();
            let b = a.matvec(&xtrue);
            let x = lu.refine(&a, &b, 2).unwrap();
            let xd = LuFactors::factor(dense).unwrap().solve(&b).unwrap();
            for ((s, d), t) in x.iter().zip(&xd).zip(&xtrue) {
                assert!((s - t).abs() < 1e-9, "seed {seed}: {s} vs true {t}");
                assert!((s - d).abs() < 1e-8, "seed {seed}: {s} vs dense {d}");
            }
        }
    }

    #[test]
    fn refactor_reuses_symbolic_analysis() {
        let a = quasidefinite_kkt(6, 10, 7);
        let mut lu = SparseLu::factor(&a).unwrap();
        let first_nnz = lu.factor_nnz();
        let first_flops = lu.flops();
        assert!(first_flops > 0);

        // Same pattern, scaled values (the PDIP diagonal-update scenario).
        let mut b = a.clone();
        for v in b.values_mut() {
            *v *= 1.75;
        }
        lu.refactor(&b).unwrap();
        assert_eq!(lu.factor_nnz(), first_nnz);
        assert_eq!(lu.flops(), first_flops);
        let xtrue: Vec<f64> = (0..a.rows()).map(|i| 1.0 + i as f64).collect();
        let rhs = b.matvec(&xtrue);
        let x = lu.refine(&b, &rhs, 2).unwrap();
        for (got, want) in x.iter().zip(&xtrue) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn refactor_rejects_pattern_escapes() {
        let a = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
        let mut lu = SparseLu::factor(&a).unwrap();
        let widened =
            SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 1, 1.0)]).unwrap();
        assert!(lu.refactor(&widened).is_err());
        let wrong_shape = SparseMatrix::from_triplets(3, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(lu.refactor(&wrong_shape).is_err());
    }

    #[test]
    fn reports_singular_in_original_indices() {
        let a =
            SparseMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)]).unwrap();
        // Rows 1 and 2 have no usable static pivot (zero diagonal that no
        // fill repairs on this pattern).
        match SparseLu::factor(&a) {
            Err(LinalgError::Singular { column }) => assert!(column < 3),
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn ordering_limits_fill_on_arrow_matrix() {
        // Arrow pointing the wrong way: natural order fills completely,
        // min-degree keeps the factors linear in n.
        let n = 40;
        let mut trips = vec![(0usize, 0usize, (n + 1) as f64)];
        for i in 1..n {
            trips.push((i, i, 2.0));
            trips.push((0, i, 1.0));
            trips.push((i, 0, 1.0));
        }
        let a = SparseMatrix::from_triplets(n, n, &trips).unwrap();
        let lu = SparseLu::factor(&a).unwrap();
        assert!(
            lu.factor_nnz() <= 5 * n,
            "fill {} should stay O(n)",
            lu.factor_nnz()
        );
        let xtrue: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let x = lu.solve(&a.matvec(&xtrue)).unwrap();
        for (got, want) in x.iter().zip(&xtrue) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_rectangular_and_bad_rhs() {
        let rect = SparseMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(SparseLu::analyze(&rect).is_err());
        let a = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]).unwrap();
        let lu = SparseLu::factor(&a).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
        assert!(lu.refine(&rect, &[1.0, 1.0], 1).is_err());
    }
}
