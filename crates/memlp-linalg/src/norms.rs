use crate::lu::LuFactors;
use crate::matrix::Matrix;

/// Matrix 1-norm (maximum absolute column sum).
pub fn one_norm_mat(a: &Matrix) -> f64 {
    let mut best = 0.0f64;
    for j in 0..a.cols() {
        let mut s = 0.0;
        for i in 0..a.rows() {
            s += a[(i, j)].abs();
        }
        best = best.max(s);
    }
    best
}

/// Matrix infinity-norm (maximum absolute row sum).
pub fn inf_norm_mat(a: &Matrix) -> f64 {
    let mut best = 0.0f64;
    for i in 0..a.rows() {
        best = best.max(crate::ops::one_norm(a.row(i)));
    }
    best
}

/// Estimates the 1-norm condition number `κ₁(A) = ‖A‖₁·‖A⁻¹‖₁` using
/// Hager's power-method-style estimator on the factored inverse.
///
/// The estimate is a lower bound that is almost always within a small factor
/// of the true value; it is used by the variation studies (§4.3 of the paper
/// relates near-singular coefficient matrices to accuracy loss).
///
/// # Errors
///
/// Propagates solve failures from the factorization.
pub fn cond_1_estimate(a: &Matrix, lu: &LuFactors) -> Result<f64, crate::LinalgError> {
    let n = lu.dim();
    if n == 0 {
        return Ok(0.0);
    }
    // Hager's algorithm estimates ‖A⁻¹‖₁ via A⁻¹x and A⁻ᵀx products; we get
    // A⁻ᵀ products by solving with the transpose (factor once, reuse).
    let at = a.transpose();
    let lut = LuFactors::factor(at)?;
    let mut x = vec![1.0 / n as f64; n];
    let mut est = 0.0f64;
    for _ in 0..5 {
        let y = lu.solve(&x)?;
        let ynorm = crate::ops::one_norm(&y);
        let xi: Vec<f64> = y
            .iter()
            .map(|v| if *v >= 0.0 { 1.0 } else { -1.0 })
            .collect();
        let z = lut.solve(&xi)?;
        let (jmax, zmax) = z
            .iter()
            .enumerate()
            .fold((0usize, 0.0f64), |(jm, zm), (j, &v)| {
                if v.abs() > zm {
                    (j, v.abs())
                } else {
                    (jm, zm)
                }
            });
        est = est.max(ynorm);
        if zmax <= crate::ops::dot(&z, &x).abs() {
            break;
        }
        x.iter_mut().for_each(|v| *v = 0.0);
        x[jmax] = 1.0;
    }
    Ok(one_norm_mat(a) * est)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_norm_is_max_column_sum() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(one_norm_mat(&a), 6.0);
    }

    #[test]
    fn inf_norm_is_max_row_sum() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(inf_norm_mat(&a), 7.0);
    }

    #[test]
    fn cond_of_identity_is_one() {
        let a = Matrix::identity(4);
        let lu = LuFactors::factor(a.clone()).unwrap();
        let c = cond_1_estimate(&a, &lu).unwrap();
        assert!((c - 1.0).abs() < 1e-12, "cond estimate {c}");
    }

    #[test]
    fn cond_detects_ill_conditioning() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1e-8]]).unwrap();
        let lu = LuFactors::factor(a.clone()).unwrap();
        let c = cond_1_estimate(&a, &lu).unwrap();
        assert!(c > 1e7, "cond estimate {c} should be ≥ 1e7");
    }

    #[test]
    fn cond_scale_invariant() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let mut b = a.clone();
        b.scale_mut(100.0);
        let ca = cond_1_estimate(&a, &LuFactors::factor(a.clone()).unwrap()).unwrap();
        let cb = cond_1_estimate(&b, &LuFactors::factor(b.clone()).unwrap()).unwrap();
        assert!((ca - cb).abs() / ca < 1e-10);
    }
}
