//! Property-based tests for the linear algebra substrate.

use memlp_linalg::{iterative, ops, solve, solve_refined, LuFactors, Matrix};
use proptest::prelude::*;

/// Strategy: a well-conditioned square matrix (random entries plus a strong
/// diagonal) of side 1..=12 and a matching right-hand side.
fn system_strategy() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (1usize..=12).prop_flat_map(|n| {
        (
            proptest::collection::vec(-1.0f64..1.0, n * n),
            proptest::collection::vec(-10.0f64..10.0, n),
        )
            .prop_map(move |(entries, b)| {
                let mut a = Matrix::from_vec(n, n, entries).expect("sized buffer");
                for i in 0..n {
                    a[(i, i)] += n as f64 + 2.0;
                }
                (a, b)
            })
    })
}

proptest! {
    #[test]
    fn lu_solve_satisfies_system((a, b) in system_strategy()) {
        let x = solve(&a, &b).expect("well-conditioned");
        let r = ops::sub(&b, &a.matvec(&x));
        prop_assert!(ops::inf_norm(&r) < 1e-8 * ops::inf_norm(&b).max(1.0));
    }

    #[test]
    fn refined_solve_is_no_worse((a, b) in system_strategy()) {
        let x0 = solve(&a, &b).expect("solve");
        let x1 = solve_refined(&a, &b, 2).expect("refined");
        let r0 = ops::inf_norm(&ops::sub(&b, &a.matvec(&x0)));
        let r1 = ops::inf_norm(&ops::sub(&b, &a.matvec(&x1)));
        prop_assert!(r1 <= r0 * 10.0 + 1e-12);
    }

    #[test]
    fn det_of_product_is_product_of_dets((a, _) in system_strategy(), (b0, _) in system_strategy()) {
        // Resize b0 to a's dimension by rebuilding when shapes differ.
        let n = a.rows();
        let b = if b0.rows() == n {
            b0
        } else {
            let mut m = Matrix::identity(n);
            for i in 0..n { m[(i, i)] = 2.0 + i as f64 * 0.1; }
            m
        };
        let da = LuFactors::factor(a.clone()).expect("a").det();
        let db = LuFactors::factor(b.clone()).expect("b").det();
        let dab = LuFactors::factor(a.matmul(&b).expect("product")).expect("ab").det();
        let scale = da.abs().max(db.abs()).max(1.0);
        prop_assert!((dab - da * db).abs() <= 1e-6 * scale * scale.max(db.abs()));
    }

    #[test]
    fn transpose_det_matches((a, _) in system_strategy()) {
        let d = LuFactors::factor(a.clone()).expect("a").det();
        let dt = LuFactors::factor(a.transpose()).expect("at").det();
        prop_assert!((d - dt).abs() <= 1e-8 * d.abs().max(1.0));
    }

    #[test]
    fn matvec_is_linear((a, b) in system_strategy(), alpha in -3.0f64..3.0) {
        let scaled: Vec<f64> = b.iter().map(|v| alpha * v).collect();
        let lhs = a.matvec(&scaled);
        let mut rhs = a.matvec(&b);
        ops::scale(alpha, &mut rhs);
        for (l, r) in lhs.iter().zip(&rhs) {
            prop_assert!((l - r).abs() < 1e-9 * r.abs().max(1.0));
        }
    }

    #[test]
    fn gauss_seidel_agrees_with_lu((a, b) in system_strategy()) {
        let direct = solve(&a, &b).expect("lu");
        let gs = iterative::gauss_seidel(&a, &b, iterative::IterOptions::default())
            .expect("diagonally dominant by construction");
        for (d, g) in direct.iter().zip(&gs.x) {
            prop_assert!((d - g).abs() < 1e-6 * d.abs().max(1.0));
        }
    }

    #[test]
    fn dot_cauchy_schwarz(x in proptest::collection::vec(-100.0f64..100.0, 0..64),
                          y in proptest::collection::vec(-100.0f64..100.0, 0..64)) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        let d = ops::dot(x, y).abs();
        let bound = ops::two_norm(x) * ops::two_norm(y);
        prop_assert!(d <= bound * (1.0 + 1e-9) + 1e-9);
    }

    #[test]
    fn inf_norm_triangle(x in proptest::collection::vec(-100.0f64..100.0, 1..64),
                         y in proptest::collection::vec(-100.0f64..100.0, 1..64)) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        let s = ops::add(x, y);
        prop_assert!(ops::inf_norm(&s) <= ops::inf_norm(x) + ops::inf_norm(y) + 1e-12);
    }

    #[test]
    fn block_roundtrip(rows in 1usize..8, cols in 1usize..8, r0 in 0usize..4, c0 in 0usize..4) {
        let big = Matrix::from_fn(rows + r0 + 2, cols + c0 + 2, |i, j| (i * 31 + j) as f64);
        let blk = big.block(r0, c0, rows, cols);
        let mut copy = Matrix::zeros(big.rows(), big.cols());
        copy.set_block(r0, c0, &blk);
        prop_assert_eq!(copy.block(r0, c0, rows, cols), blk);
    }

    #[test]
    fn matmul_associative_small(n in 1usize..6) {
        let a = Matrix::from_fn(n, n, |i, j| ((i + j) % 5) as f64 - 2.0);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 2 + j) % 7) as f64 - 3.0);
        let c = Matrix::from_fn(n, n, |i, j| ((i + 3 * j) % 3) as f64);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for i in 0..n {
            for j in 0..n {
                prop_assert!((left[(i, j)] - right[(i, j)]).abs() < 1e-9);
            }
        }
    }
}
