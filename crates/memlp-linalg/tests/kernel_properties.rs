//! Bitwise equivalence of the register-tiled microkernels against the
//! plain reference loops (DESIGN.md §14).
//!
//! The kernels module promises that tiling is a *scheduling* choice, not a
//! numerics choice: every reduction uses the same fixed 4-lane tree as
//! `ops::dot` regardless of the row-tile height, and every update kernel
//! accumulates k-sequentially into the current `C` value exactly like the
//! plain i-k-j loop. These tests pin that promise bit-for-bit across every
//! supported tile shape, on shapes that land on, just under, and just over
//! the MR/NR tile boundaries — the remainder-handling edge cases.
//!
//! Policies are forced through `kernels::with_policy` with a zero flop
//! cutoff so even tiny shapes exercise the tiled paths (the production
//! cutoff would route them to the plain loops and the test would compare
//! the reference against itself).

use memlp_linalg::kernels::{self, KernelPolicy};
use memlp_linalg::{LuFactors, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every (MR, NR) pair the gemm dispatcher monomorphizes, plus the row
/// tile heights matvec supports on its own.
const TILE_SHAPES: [(usize, usize); 5] = [(2, 4), (2, 8), (4, 4), (4, 8), (8, 4)];

/// A policy that forces the (mr, nr) tile at any problem size.
fn forced(mr: usize, nr: usize) -> KernelPolicy {
    KernelPolicy {
        mr,
        nr,
        tile_cutoff_flops: 0,
    }
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(-1.0..1.0))
}

fn dominant_matrix(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, n, |i, j| {
        let v: f64 = rng.random_range(-1.0..1.0);
        if i == j {
            v + n as f64
        } else {
            v
        }
    })
}

fn random_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(-1.0..1.0)).collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs `f` under the plain-loop policy and under every tile shape, and
/// asserts all outputs are bit-identical.
fn assert_tile_shape_invariant(label: &str, f: impl Fn() -> Vec<f64>) {
    let reference = kernels::with_policy(KernelPolicy::plain(), &f);
    for (mr, nr) in TILE_SHAPES {
        let got = kernels::with_policy(forced(mr, nr), &f);
        assert_eq!(
            bits(&got),
            bits(&reference),
            "{label}: tile shape {mr}x{nr} changed the result"
        );
    }
}

// --- Fixed shapes that actually clear the production cutoff, so the
// --- default policy's tiled path is also pinned against the plain loops
// --- (not just the forced-policy variants).

#[test]
fn matvec_default_policy_matches_plain_loops() {
    let a = random_matrix(257, 131, 40);
    let x = random_vec(131, 41);
    let reference = kernels::with_policy(KernelPolicy::plain(), || a.matvec(&x));
    let tiled = a.matvec(&x);
    assert_eq!(bits(&tiled), bits(&reference));
}

#[test]
fn matmul_default_policy_matches_plain_loops() {
    let a = random_matrix(67, 45, 42);
    let b = random_matrix(45, 53, 43);
    let reference = kernels::with_policy(KernelPolicy::plain(), || {
        a.matmul(&b).unwrap().as_slice().to_vec()
    });
    let tiled = a.matmul(&b).unwrap().as_slice().to_vec();
    assert_eq!(bits(&tiled), bits(&reference));
}

#[test]
fn lu_default_policy_matches_plain_loops() {
    // n = 129 crosses the LU panel width, so the packed trailing-update
    // gemm runs on a multi-panel factorization with ragged remainders.
    let a = dominant_matrix(129, 44);
    let b = random_vec(129, 45);
    let reference = kernels::with_policy(KernelPolicy::plain(), || {
        LuFactors::factor(a.clone()).unwrap().solve(&b).unwrap()
    });
    let tiled = LuFactors::factor(a.clone()).unwrap().solve(&b).unwrap();
    assert_eq!(bits(&tiled), bits(&reference));
}

#[test]
fn scaled_gram_default_policy_matches_plain_loops() {
    let a = random_matrix(66, 47, 46);
    let d: Vec<f64> = random_vec(47, 47).iter().map(|v| v.abs() + 0.1).collect();
    let reference = kernels::with_policy(KernelPolicy::plain(), || {
        a.scaled_gram(&d).as_slice().to_vec()
    });
    let tiled = a.scaled_gram(&d).as_slice().to_vec();
    assert_eq!(bits(&tiled), bits(&reference));
}

// --- Property tests: random shapes straddling the MR/NR boundaries
// --- (1..=26 covers every remainder class of 2, 4, and 8), every tile
// --- shape forced on each.

proptest! {
    #[test]
    fn matvec_is_bitwise_tile_shape_invariant(
        (rows, cols, seed) in (1usize..27, 1usize..27, 0u64..1000),
    ) {
        let a = random_matrix(rows, cols, seed);
        let x = random_vec(cols, seed ^ 0x711e);
        let reference = kernels::with_policy(KernelPolicy::plain(), || a.matvec(&x));
        for (mr, nr) in TILE_SHAPES {
            let got = kernels::with_policy(forced(mr, nr), || a.matvec(&x));
            prop_assert_eq!(bits(&got), bits(&reference));
        }
    }

    #[test]
    fn matmul_is_bitwise_tile_shape_invariant(
        (m, k, n, seed) in (1usize..18, 1usize..18, 1usize..18, 0u64..1000),
    ) {
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed ^ 0x9e77);
        let reference = kernels::with_policy(KernelPolicy::plain(), || {
            a.matmul(&b).unwrap().as_slice().to_vec()
        });
        for (mr, nr) in TILE_SHAPES {
            let got = kernels::with_policy(forced(mr, nr), || {
                a.matmul(&b).unwrap().as_slice().to_vec()
            });
            prop_assert_eq!(bits(&got), bits(&reference));
        }
    }

    #[test]
    fn scaled_gram_is_bitwise_tile_shape_invariant(
        (m, n, seed) in (1usize..18, 1usize..18, 0u64..1000),
    ) {
        let a = random_matrix(m, n, seed);
        let d: Vec<f64> = random_vec(n, seed ^ 0x6ea3)
            .iter()
            .map(|v| v.abs() + 0.1)
            .collect();
        let reference = kernels::with_policy(KernelPolicy::plain(), || {
            a.scaled_gram(&d).as_slice().to_vec()
        });
        for (mr, nr) in TILE_SHAPES {
            let got = kernels::with_policy(forced(mr, nr), || {
                a.scaled_gram(&d).as_slice().to_vec()
            });
            prop_assert_eq!(bits(&got), bits(&reference));
        }
    }

    #[test]
    fn lu_factor_is_bitwise_tile_shape_invariant(
        (n, seed) in (1usize..40, 0u64..500),
    ) {
        let a = dominant_matrix(n, seed);
        let b = random_vec(n, seed ^ 0x1a57);
        let f = || LuFactors::factor(a.clone()).unwrap().solve(&b).unwrap();
        let reference = kernels::with_policy(KernelPolicy::plain(), f);
        for (mr, nr) in TILE_SHAPES {
            let got = kernels::with_policy(forced(mr, nr), f);
            prop_assert_eq!(bits(&got), bits(&reference));
        }
    }
}

// --- A multi-kernel chain under one override, the way a solver iteration
// --- composes them: gram → factor → solve, every tile shape bit-identical.

#[test]
fn chained_kernels_are_bitwise_tile_shape_invariant() {
    let a = random_matrix(93, 61, 50);
    let d: Vec<f64> = random_vec(61, 51).iter().map(|v| v.abs() + 0.1).collect();
    let b = random_vec(93, 52);
    assert_tile_shape_invariant("gram+lu chain 93x61", || {
        let mut g = a.scaled_gram(&d);
        for i in 0..93 {
            g[(i, i)] += 93.0;
        }
        LuFactors::factor(g).unwrap().solve(&b).unwrap()
    });
}
