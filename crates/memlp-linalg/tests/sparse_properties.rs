//! Property-based tests for the CSR sparse matrix: construction from
//! triplets (including duplicates and explicit zeros), dense round-trips,
//! and agreement of the sparse kernels with their dense counterparts.

use memlp_linalg::{Matrix, SparseMatrix};
use proptest::prelude::*;

/// Strategy: arbitrary dimensions (1..=8 × 1..=8) with 0..=24 triplets,
/// duplicates and zero values allowed on purpose.
fn triplet_strategy() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1usize..=8, 1usize..=8).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            (0..rows, 0..cols, prop_oneof![Just(0.0), -4.0f64..4.0]),
            0..=24,
        )
        .prop_map(move |ts| (rows, cols, ts))
    })
}

/// Strategy: a random dense matrix with many structural zeros.
fn sparse_dense_strategy() -> impl Strategy<Value = Matrix> {
    (1usize..=8, 1usize..=8).prop_flat_map(|(rows, cols)| {
        // Three zero arms to one value arm: ~75% structural zeros.
        proptest::collection::vec(
            prop_oneof![Just(0.0), Just(0.0), Just(0.0), -4.0f64..4.0],
            rows * cols,
        )
        .prop_map(move |entries| Matrix::from_vec(rows, cols, entries).expect("sized buffer"))
    })
}

/// Reference accumulation of triplets into a dense matrix.
fn accumulate(rows: usize, cols: usize, ts: &[(usize, usize, f64)]) -> Matrix {
    let mut d = Matrix::zeros(rows, cols);
    for &(i, j, v) in ts {
        d[(i, j)] += v;
    }
    d
}

proptest! {
    #[test]
    fn triplet_construction_matches_dense_accumulation(
        (rows, cols, ts) in triplet_strategy()
    ) {
        let s = SparseMatrix::from_triplets(rows, cols, &ts).expect("in bounds");
        prop_assert_eq!(s.to_dense(), accumulate(rows, cols, &ts));
        // Duplicates merge and zeros are pruned: never more stored entries
        // than triplets supplied, and never a stored zero.
        prop_assert!(s.nnz() <= ts.len());
        prop_assert!(s.iter().all(|(_, _, v)| v != 0.0));
        prop_assert!((0.0..=1.0).contains(&s.density()));
    }

    #[test]
    fn dense_round_trip_is_identity(d in sparse_dense_strategy()) {
        let s = SparseMatrix::from_dense(&d);
        prop_assert_eq!(s.to_dense(), d.clone());
        prop_assert_eq!(s.nnz(), d.as_slice().iter().filter(|&&v| v != 0.0).count());
    }

    #[test]
    fn matvec_agrees_with_dense(
        (rows, cols, ts) in triplet_strategy(),
        raw in proptest::collection::vec(-3.0f64..3.0, 8)
    ) {
        let s = SparseMatrix::from_triplets(rows, cols, &ts).expect("in bounds");
        let d = s.to_dense();
        let x = &raw[..cols];
        let y = &raw[..rows];
        // The dense kernel may accumulate in a blocked order, so agreement
        // is to rounding, not bitwise.
        for (a, b) in s.matvec(x).iter().zip(d.matvec(x)) {
            prop_assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0), "{a} vs {b}");
        }
        for (a, b) in s.matvec_transposed(y).iter().zip(d.matvec_transposed(y)) {
            prop_assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn rows_without_entries_produce_zero_outputs(
        cols in 1usize..=6,
        hit_row in 0usize..4,
        v in 0.5f64..4.0
    ) {
        // A single populated row in a 4-row matrix: all other outputs stay 0.
        let s = SparseMatrix::from_triplets(4, cols, &[(hit_row, 0, v)]).expect("in bounds");
        let y = s.matvec(&vec![1.0; cols]);
        for (i, yi) in y.iter().enumerate() {
            if i == hit_row {
                prop_assert_eq!(*yi, v);
            } else {
                prop_assert_eq!(*yi, 0.0);
            }
        }
    }

    #[test]
    fn iter_round_trips_through_triplets((rows, cols, ts) in triplet_strategy()) {
        let s = SparseMatrix::from_triplets(rows, cols, &ts).expect("in bounds");
        let rebuilt: Vec<(usize, usize, f64)> = s.iter().collect();
        let s2 = SparseMatrix::from_triplets(rows, cols, &rebuilt).expect("in bounds");
        prop_assert_eq!(s2, s);
    }

    #[test]
    fn out_of_bounds_triplets_are_rejected(
        rows in 1usize..=6,
        cols in 1usize..=6,
        excess in 0usize..3
    ) {
        prop_assert!(SparseMatrix::from_triplets(rows, cols, &[(rows + excess, 0, 1.0)]).is_err());
        prop_assert!(SparseMatrix::from_triplets(rows, cols, &[(0, cols + excess, 1.0)]).is_err());
    }
}
