//! Property-based tests for the CSR sparse matrix: construction from
//! triplets (including duplicates and explicit zeros), dense round-trips,
//! and agreement of the sparse kernels with their dense counterparts.

use memlp_linalg::{Matrix, SparseLu, SparseMatrix};
use proptest::prelude::*;

/// Strategy: arbitrary dimensions (1..=8 × 1..=8) with 0..=24 triplets,
/// duplicates and zero values allowed on purpose.
fn triplet_strategy() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1usize..=8, 1usize..=8).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            (0..rows, 0..cols, prop_oneof![Just(0.0), -4.0f64..4.0]),
            0..=24,
        )
        .prop_map(move |ts| (rows, cols, ts))
    })
}

/// Strategy: a random dense matrix with many structural zeros.
fn sparse_dense_strategy() -> impl Strategy<Value = Matrix> {
    (1usize..=8, 1usize..=8).prop_flat_map(|(rows, cols)| {
        // Three zero arms to one value arm: ~75% structural zeros.
        proptest::collection::vec(
            prop_oneof![Just(0.0), Just(0.0), Just(0.0), -4.0f64..4.0],
            rows * cols,
        )
        .prop_map(move |entries| Matrix::from_vec(rows, cols, entries).expect("sized buffer"))
    })
}

/// Strategy: a sparse lower-triangular matrix with a safely nonzero
/// diagonal, plus a right-hand side to solve against.
fn triangular_strategy() -> impl Strategy<Value = (usize, SparseMatrix, Vec<f64>)> {
    (2usize..=7).prop_flat_map(|n| {
        let diag = proptest::collection::vec(prop_oneof![-3.0f64..-0.5, 0.5f64..3.0], n);
        let below = proptest::collection::vec(
            (1..n, 0..n, prop_oneof![Just(0.0), -2.0f64..2.0]),
            0..=2 * n,
        );
        let rhs = proptest::collection::vec(-3.0f64..3.0, n);
        (diag, below, rhs).prop_map(move |(d, off, b)| {
            let mut ts: Vec<(usize, usize, f64)> =
                d.iter().enumerate().map(|(i, &v)| (i, i, v)).collect();
            ts.extend(off.into_iter().filter(|&(i, j, _)| j < i));
            let l = SparseMatrix::from_triplets(n, n, &ts).expect("in bounds");
            (n, l, b)
        })
    })
}

/// Strategy: a strictly diagonally dominant sparse system (so the
/// static-pivot LU is guaranteed stable) with a right-hand side.
fn dominant_system_strategy() -> impl Strategy<Value = (SparseMatrix, Vec<f64>)> {
    (2usize..=7).prop_flat_map(|n| {
        let off = proptest::collection::vec(
            (0..n, 0..n, prop_oneof![Just(0.0), -2.0f64..2.0]),
            0..=3 * n,
        );
        let rhs = proptest::collection::vec(-3.0f64..3.0, n);
        (off, rhs).prop_map(move |(entries, b)| {
            let mut row_sum = vec![0.0f64; n];
            let mut ts: Vec<(usize, usize, f64)> = Vec::new();
            for (i, j, v) in entries {
                if i != j && v != 0.0 {
                    ts.push((i, j, v));
                    row_sum[i] += v.abs();
                }
            }
            for (i, s) in row_sum.iter().enumerate() {
                ts.push((i, i, s + 1.0));
            }
            let a = SparseMatrix::from_triplets(n, n, &ts).expect("in bounds");
            (a, b)
        })
    })
}

/// Reference accumulation of triplets into a dense matrix.
fn accumulate(rows: usize, cols: usize, ts: &[(usize, usize, f64)]) -> Matrix {
    let mut d = Matrix::zeros(rows, cols);
    for &(i, j, v) in ts {
        d[(i, j)] += v;
    }
    d
}

proptest! {
    #[test]
    fn triplet_construction_matches_dense_accumulation(
        (rows, cols, ts) in triplet_strategy()
    ) {
        let s = SparseMatrix::from_triplets(rows, cols, &ts).expect("in bounds");
        prop_assert_eq!(s.to_dense(), accumulate(rows, cols, &ts));
        // Duplicates merge and zeros are pruned: never more stored entries
        // than triplets supplied, and never a stored zero.
        prop_assert!(s.nnz() <= ts.len());
        prop_assert!(s.iter().all(|(_, _, v)| v != 0.0));
        prop_assert!((0.0..=1.0).contains(&s.density()));
    }

    #[test]
    fn dense_round_trip_is_identity(d in sparse_dense_strategy()) {
        let s = SparseMatrix::from_dense(&d);
        prop_assert_eq!(s.to_dense(), d.clone());
        prop_assert_eq!(s.nnz(), d.as_slice().iter().filter(|&&v| v != 0.0).count());
    }

    #[test]
    fn matvec_agrees_with_dense(
        (rows, cols, ts) in triplet_strategy(),
        raw in proptest::collection::vec(-3.0f64..3.0, 8)
    ) {
        let s = SparseMatrix::from_triplets(rows, cols, &ts).expect("in bounds");
        let d = s.to_dense();
        let x = &raw[..cols];
        let y = &raw[..rows];
        // The dense kernel may accumulate in a blocked order, so agreement
        // is to rounding, not bitwise.
        for (a, b) in s.matvec(x).iter().zip(d.matvec(x)) {
            prop_assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0), "{a} vs {b}");
        }
        for (a, b) in s.matvec_transposed(y).iter().zip(d.matvec_transposed(y)) {
            prop_assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn rows_without_entries_produce_zero_outputs(
        cols in 1usize..=6,
        hit_row in 0usize..4,
        v in 0.5f64..4.0
    ) {
        // A single populated row in a 4-row matrix: all other outputs stay 0.
        let s = SparseMatrix::from_triplets(4, cols, &[(hit_row, 0, v)]).expect("in bounds");
        let y = s.matvec(&vec![1.0; cols]);
        for (i, yi) in y.iter().enumerate() {
            if i == hit_row {
                prop_assert_eq!(*yi, v);
            } else {
                prop_assert_eq!(*yi, 0.0);
            }
        }
    }

    #[test]
    fn iter_round_trips_through_triplets((rows, cols, ts) in triplet_strategy()) {
        let s = SparseMatrix::from_triplets(rows, cols, &ts).expect("in bounds");
        let rebuilt: Vec<(usize, usize, f64)> = s.iter().collect();
        let s2 = SparseMatrix::from_triplets(rows, cols, &rebuilt).expect("in bounds");
        prop_assert_eq!(s2, s);
    }

    #[test]
    fn transpose_round_trips_and_matches_dense(
        (rows, cols, ts) in triplet_strategy()
    ) {
        let s = SparseMatrix::from_triplets(rows, cols, &ts).expect("in bounds");
        let t = s.transpose();
        prop_assert_eq!(t.rows(), cols);
        prop_assert_eq!(t.cols(), rows);
        prop_assert_eq!(t.nnz(), s.nnz());
        prop_assert_eq!(t.to_dense(), s.to_dense().transpose());
        prop_assert_eq!(t.transpose(), s);
    }

    #[test]
    fn sparse_matmul_agrees_with_dense(
        (rows, inner, ts_a) in triplet_strategy(),
        ts_b in proptest::collection::vec(
            (0usize..8, 0usize..8, -4.0f64..4.0), 0..=24
        ),
        cols in 1usize..=8
    ) {
        let a = SparseMatrix::from_triplets(rows, inner, &ts_a).expect("in bounds");
        let kept: Vec<_> = ts_b
            .into_iter()
            .filter(|&(i, j, _)| i < inner && j < cols)
            .collect();
        let b = SparseMatrix::from_triplets(inner, cols, &kept).expect("in bounds");
        let want = a.to_dense().matmul(&b.to_dense()).expect("conforming");
        let via_sparse = a.matmul_sparse(&b).expect("conforming").to_dense();
        let via_dense = a.matmul_dense(&b.to_dense()).expect("conforming");
        for ((got_s, got_d), w) in via_sparse
            .as_slice()
            .iter()
            .zip(via_dense.as_slice())
            .zip(want.as_slice())
        {
            prop_assert!((got_s - w).abs() <= 1e-10 * w.abs().max(1.0), "{got_s} vs {w}");
            prop_assert!((got_d - w).abs() <= 1e-10 * w.abs().max(1.0), "{got_d} vs {w}");
        }
    }

    #[test]
    fn triangular_solves_invert_their_matvec(
        (n, lower, b) in triangular_strategy()
    ) {
        // `solve_lower` must invert L: L·x == b (checked through the sparse
        // matvec, the independent kernel). Upper goes through the transpose.
        let x = lower.solve_lower(&b).expect("nonzero diagonal");
        for (got, want) in lower.matvec(&x).iter().zip(&b) {
            prop_assert!((got - want).abs() <= 1e-9 * want.abs().max(1.0), "{got} vs {want}");
        }
        let upper = lower.transpose();
        let x = upper.solve_upper(&b).expect("nonzero diagonal");
        for (got, want) in upper.matvec(&x).iter().zip(&b) {
            prop_assert!((got - want).abs() <= 1e-9 * want.abs().max(1.0), "{got} vs {want}");
        }
        let _ = n;
    }

    #[test]
    fn sparse_lu_solves_match_dense_lu(
        (a, b) in dominant_system_strategy()
    ) {
        let lu = SparseLu::factor(&a).expect("diagonally dominant");
        let x = lu.solve(&b).expect("factored");
        let dense_x = memlp_linalg::LuFactors::factor(a.to_dense())
            .expect("nonsingular")
            .solve(&b)
            .expect("sized rhs");
        for (got, want) in x.iter().zip(&dense_x) {
            prop_assert!((got - want).abs() <= 1e-8 * want.abs().max(1.0), "{got} vs {want}");
        }
        // A purely diagonal draw eliminates nothing, so flops may be zero;
        // any off-diagonal entry forces real elimination work.
        if a.nnz() > a.rows() {
            prop_assert!(lu.flops() > 0);
        }
        prop_assert!(lu.factor_nnz() >= a.rows());
    }

    #[test]
    fn symbolic_reuse_refactors_correctly(
        (a, b) in dominant_system_strategy(),
        scales in proptest::collection::vec(0.5f64..1.5, 64)
    ) {
        // Same pattern, new values: the reused symbolic analysis must keep
        // the factor structure (identical fill) and still solve correctly.
        let mut lu = SparseLu::factor(&a).expect("diagonally dominant");
        let nnz_before = lu.factor_nnz();

        let mut a2 = a.clone();
        for (k, v) in a2.values_mut().iter_mut().enumerate() {
            *v *= scales[k % scales.len()];
        }
        // Restore row dominance so the static pivot order stays valid.
        let n = a2.rows();
        for i in 0..n {
            let off: f64 = a2
                .iter()
                .filter(|&(r, c, _)| r == i && c != i)
                .map(|(_, _, v)| v.abs())
                .sum();
            let slot = a2.entry_index(i, i).expect("diagonal present");
            a2.values_mut()[slot] = off + 1.0;
        }

        lu.refactor(&a2).expect("same pattern");
        prop_assert_eq!(lu.factor_nnz(), nnz_before, "fill changed under refactor");
        let x = lu.solve(&b).expect("refactored");
        for (got, want) in a2.matvec(&x).iter().zip(&b) {
            prop_assert!((got - want).abs() <= 1e-8 * want.abs().max(1.0), "{got} vs {want}");
        }

        // An entry outside the *analyzed* pattern is either rejected (it
        // escapes the factor's fill) or absorbed losslessly (it lands on a
        // fill position) — never silently mis-factored.
        let mut ts: Vec<_> = a.iter().collect();
        ts.push((0, n - 1, 0.25));
        ts.push((n - 1, 0, 0.25));
        let escape = SparseMatrix::from_triplets(n, n, &ts).expect("in bounds");
        if escape.nnz() > a.nnz() && lu.refactor(&escape).is_ok() {
            let x = lu.solve(&b).expect("refactored");
            for (got, want) in escape.matvec(&x).iter().zip(&b) {
                prop_assert!(
                    (got - want).abs() <= 1e-8 * want.abs().max(1.0),
                    "{got} vs {want}"
                );
            }
        }

        // A different shape is always a hard error.
        let wrong = SparseMatrix::from_triplets(n + 1, n + 1, &[(0, 0, 1.0)]).expect("in bounds");
        prop_assert!(lu.refactor(&wrong).is_err());
    }

    #[test]
    fn out_of_bounds_triplets_are_rejected(
        rows in 1usize..=6,
        cols in 1usize..=6,
        excess in 0usize..3
    ) {
        prop_assert!(SparseMatrix::from_triplets(rows, cols, &[(rows + excess, 0, 1.0)]).is_err());
        prop_assert!(SparseMatrix::from_triplets(rows, cols, &[(0, cols + excess, 1.0)]).is_err());
    }
}
