//! Property-based tests for the power-iteration spectral-norm estimator.
//!
//! Three contracts back the PDHG step-size rule:
//!
//! * **Range** — the Rayleigh iterate converges to `σ_max` *from below*,
//!   so the estimate must sit in `[σ_max·(1−ε), σ_max]`; the upper side
//!   is checked against the dense Gram spectral bound
//!   `σ_max² = λ_max(AᵀA) ≤ ‖AᵀA‖∞`, the lower side against an
//!   independently-converged dense Gram power iteration.
//! * **Thread invariance** — the estimate's bit pattern is identical at
//!   every worker count (the parallel spmv assigns whole rows to
//!   workers and reduces each row sequentially).
//! * **Presentation invariance** — CSR and dense presentations of the
//!   same matrix produce bitwise-identical estimates (the dense entry
//!   point converts to CSR once and runs the identical iteration).

use memlp_linalg::norm_est::{self, NormEstimate};
use memlp_linalg::parallel::with_threads;
use memlp_linalg::{Matrix, SparseMatrix};
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 2, 8];

/// Strategy: a dense matrix with a controlled sparsity mix, 1..=10 in
/// each dimension, entries in [-4, 4].
fn matrix_strategy() -> impl Strategy<Value = Matrix> {
    (1usize..=10, 1usize..=10).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(prop_oneof![Just(0.0), Just(0.0), -4.0f64..4.0], rows * cols)
            .prop_map(move |entries| Matrix::from_vec(rows, cols, entries).expect("sized buffer"))
    })
}

/// Reference `σ_max` from an independent, heavily-converged power
/// iteration on the **dense** Gram matrix `AᵀA` (different code path,
/// different start vector, far tighter tolerance than the estimator
/// under test).
fn dense_gram_sigma(a: &Matrix) -> f64 {
    let n = a.cols();
    if n == 0 || a.rows() == 0 {
        return 0.0;
    }
    // Gram matrix, built densely.
    let mut g = Matrix::zeros(n, n);
    for i in 0..a.rows() {
        for j in 0..n {
            for k in 0..n {
                g[(j, k)] += a[(i, j)] * a[(i, k)];
            }
        }
    }
    let mut v: Vec<f64> = (0..n).map(|j| 1.0 + (j as f64) * 0.01).collect();
    let mut lambda = 0.0f64;
    for _ in 0..5000 {
        let w = g.matvec(&v);
        let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm == 0.0 {
            return 0.0;
        }
        let next = v.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>()
            / v.iter().map(|x| x * x).sum::<f64>();
        v = w.iter().map(|x| x / norm).collect();
        if (next - lambda).abs() <= 1e-13 * next.max(1.0) {
            lambda = next;
            break;
        }
        lambda = next;
    }
    lambda.max(0.0).sqrt()
}

/// `‖AᵀA‖∞` — an upper bound on `λ_max(AᵀA) = σ_max²` (the spectral
/// radius is dominated by every induced norm).
fn gram_inf_norm(a: &Matrix) -> f64 {
    let n = a.cols();
    let mut bound = 0.0f64;
    for j in 0..n {
        let mut row_abs = 0.0f64;
        for k in 0..n {
            let mut g = 0.0f64;
            for i in 0..a.rows() {
                g += a[(i, j)] * a[(i, k)];
            }
            row_abs += g.abs();
        }
        bound = bound.max(row_abs);
    }
    bound
}

fn estimate(a: &Matrix) -> NormEstimate {
    norm_est::spectral_norm(&SparseMatrix::from_dense(a))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Range contract: `σ̂ ∈ [σ_max·(1−ε), σ_max]`, with the upper side
    /// certified by the dense Gram spectral bound.
    #[test]
    fn estimate_brackets_sigma_max(a in matrix_strategy()) {
        let est = estimate(&a);
        prop_assert!(est.sigma.is_finite());
        prop_assert!(est.sigma >= 0.0);
        // Upper: σ̂² may not exceed the Gram bound ‖AᵀA‖∞.
        let gram_bound = gram_inf_norm(&a);
        prop_assert!(
            est.sigma * est.sigma <= gram_bound * (1.0 + 1e-9) + 1e-12,
            "sigma² {} above Gram bound {}", est.sigma * est.sigma, gram_bound
        );
        // Lower: within ε of the independently-converged reference.
        let reference = dense_gram_sigma(&a);
        prop_assert!(
            est.sigma >= reference * (1.0 - 1e-4) - 1e-9,
            "sigma {} below reference {}", est.sigma, reference
        );
        // And never above it beyond round-off (both converge from below
        // to the same σ_max; the reference is the tighter of the two).
        prop_assert!(
            est.sigma <= reference.max(est.sigma * (1.0 - 1e-9)) + 1e-9,
            "sigma {} exceeds reference {}", est.sigma, reference
        );
        // The safe step-size value dominates the raw estimate and stays
        // under the provable upper bound.
        let ub = norm_est::upper_bound(&SparseMatrix::from_dense(&a));
        let safe = est.safe_sigma(ub);
        prop_assert!(safe >= est.sigma);
        prop_assert!(safe <= ub.max(est.sigma) + 1e-12);
    }

    /// Bitwise thread invariance of the full estimate.
    #[test]
    fn estimate_is_bitwise_thread_invariant(a in matrix_strategy()) {
        let s = SparseMatrix::from_dense(&a);
        let reference = with_threads(1, || norm_est::spectral_norm(&s));
        for t in THREADS {
            let est = with_threads(t, || norm_est::spectral_norm(&s));
            prop_assert_eq!(est.sigma.to_bits(), reference.sigma.to_bits(),
                "sigma bits differ at {} threads", t);
            prop_assert_eq!(est.iterations, reference.iterations);
            prop_assert_eq!(est.converged, reference.converged);
        }
    }

    /// CSR and dense presentations produce bitwise-identical estimates.
    #[test]
    fn csr_and_dense_presentations_agree_bitwise(a in matrix_strategy()) {
        let s = SparseMatrix::from_dense(&a);
        let from_csr = norm_est::spectral_norm(&s);
        let from_dense = norm_est::spectral_norm_dense(&a);
        prop_assert_eq!(from_csr.sigma.to_bits(), from_dense.sigma.to_bits());
        prop_assert_eq!(from_csr.iterations, from_dense.iterations);
        prop_assert_eq!(from_csr.converged, from_dense.converged);
    }
}
