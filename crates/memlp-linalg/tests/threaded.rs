//! Cross-thread-count determinism for the parallel dense kernels.
//!
//! Every kernel in this crate partitions its work into fixed index ranges
//! that depend only on the problem shape, with the per-element arithmetic
//! order unchanged inside each range — so results must be **bit-for-bit**
//! identical at every worker count. These tests pin that contract at
//! thread budgets {1, 2, 8}: small shapes via property tests (plumbing and
//! partition edge cases), and fixed large shapes that actually clear the
//! `MIN_FLOPS_PER_THREAD` cutoff and fan out.
//!
//! These tests run under the `memlp-lint` regime like all other code:
//! the `concurrency::primitive` rule scans test files too, so any
//! threading primitive used here (rather than going through
//! `parallel::with_threads`) would be a deny finding. The pool's own
//! internals carry the workspace's only reasoned allows.

use memlp_linalg::kernels::{self, KernelPolicy};
use memlp_linalg::parallel::with_threads;
use memlp_linalg::{LuFactors, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREADS: [usize; 3] = [1, 2, 8];

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(-1.0..1.0))
}

/// Diagonally dominant square matrix (LU never hits a zero pivot).
fn dominant_matrix(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, n, |i, j| {
        let v: f64 = rng.random_range(-1.0..1.0);
        if i == j {
            v + n as f64
        } else {
            v
        }
    })
}

fn random_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(-1.0..1.0)).collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs `f` under each thread budget and asserts all outputs are
/// bit-identical to the single-thread result.
fn assert_bitwise_invariant(label: &str, f: impl Fn() -> Vec<f64>) {
    let reference = with_threads(1, &f);
    for t in THREADS {
        let got = with_threads(t, &f);
        assert_eq!(
            bits(&got),
            bits(&reference),
            "{label}: thread count {t} changed the result"
        );
    }
}

// --- Large shapes: genuinely above the flop cutoff, so the multi-worker
// --- paths execute (matvec at 512² fans out to 8 workers; the LU trailing
// --- update crosses the cutoff from the first panel at n = 256).

#[test]
fn matvec_large_is_bitwise_thread_invariant() {
    let a = random_matrix(512, 512, 1);
    let x = random_vec(512, 2);
    assert_bitwise_invariant("matvec 512x512", || a.matvec(&x));
}

#[test]
fn matvec_transposed_large_is_bitwise_thread_invariant() {
    let a = random_matrix(384, 640, 3);
    let x = random_vec(384, 4);
    assert_bitwise_invariant("matvec_transposed 384x640", || a.matvec_transposed(&x));
}

#[test]
fn matmul_large_is_bitwise_thread_invariant() {
    let a = random_matrix(160, 192, 5);
    let b = random_matrix(192, 128, 6);
    assert_bitwise_invariant("matmul 160x192·192x128", || {
        a.matmul(&b).unwrap().as_slice().to_vec()
    });
}

#[test]
fn scaled_gram_large_is_bitwise_thread_invariant() {
    let a = random_matrix(160, 120, 7);
    let d: Vec<f64> = random_vec(120, 8).iter().map(|v| v.abs() + 0.1).collect();
    assert_bitwise_invariant("scaled_gram 160x120", || {
        a.scaled_gram(&d).as_slice().to_vec()
    });
}

#[test]
fn lu_factor_and_solve_large_are_bitwise_thread_invariant() {
    let a = dominant_matrix(256, 9);
    let b = random_vec(256, 10);
    assert_bitwise_invariant("lu solve n=256", || {
        LuFactors::factor(a.clone()).unwrap().solve(&b).unwrap()
    });
}

#[test]
fn lu_solve_matrix_large_is_bitwise_thread_invariant() {
    let a = dominant_matrix(256, 11);
    let b = random_matrix(256, 8, 12);
    assert_bitwise_invariant("lu solve_matrix n=256 k=8", || {
        LuFactors::factor(a.clone())
            .unwrap()
            .solve_matrix(&b)
            .unwrap()
            .as_slice()
            .to_vec()
    });
}

// --- Tile-shape × thread-count cross product: the register-tiled kernels
// --- must be invariant on BOTH axes at once. Threading partitions rows
// --- into bands of whole tiles-worth of chunks; tiling partitions each
// --- band's rows into MR-tall register tiles — neither changes the
// --- per-element reduction tree, so every (policy, threads) pair lands on
// --- the same bits. This is the contract that lets `KernelPolicy` be
// --- retuned without re-baselining any golden output.

/// Runs `f` under every (tile shape, thread budget) pair and asserts all
/// outputs are bit-identical to the plain-loop single-thread result.
fn assert_bitwise_tile_and_thread_invariant(label: &str, f: impl Fn() -> Vec<f64>) {
    const SHAPES: [(usize, usize); 5] = [(2, 4), (2, 8), (4, 4), (4, 8), (8, 4)];
    let reference = kernels::with_policy(KernelPolicy::plain(), || with_threads(1, &f));
    for (mr, nr) in SHAPES {
        let policy = KernelPolicy {
            mr,
            nr,
            tile_cutoff_flops: 0,
        };
        for t in THREADS {
            let got = kernels::with_policy(policy, || with_threads(t, &f));
            assert_eq!(
                bits(&got),
                bits(&reference),
                "{label}: tile {mr}x{nr} at {t} threads changed the result"
            );
        }
    }
}

#[test]
fn matvec_is_bitwise_tile_and_thread_invariant() {
    let a = random_matrix(509, 387, 20);
    let x = random_vec(387, 21);
    assert_bitwise_tile_and_thread_invariant("matvec 509x387", || a.matvec(&x));
}

#[test]
fn matmul_is_bitwise_tile_and_thread_invariant() {
    let a = random_matrix(157, 93, 22);
    let b = random_matrix(93, 101, 23);
    assert_bitwise_tile_and_thread_invariant("matmul 157x93·93x101", || {
        a.matmul(&b).unwrap().as_slice().to_vec()
    });
}

#[test]
fn scaled_gram_is_bitwise_tile_and_thread_invariant() {
    let a = random_matrix(131, 87, 24);
    let d: Vec<f64> = random_vec(87, 25).iter().map(|v| v.abs() + 0.1).collect();
    assert_bitwise_tile_and_thread_invariant("scaled_gram 131x87", || {
        a.scaled_gram(&d).as_slice().to_vec()
    });
}

#[test]
fn lu_solve_is_bitwise_tile_and_thread_invariant() {
    let a = dominant_matrix(193, 26);
    let b = random_vec(193, 27);
    assert_bitwise_tile_and_thread_invariant("lu solve n=193", || {
        LuFactors::factor(a.clone()).unwrap().solve(&b).unwrap()
    });
}

// --- Small random shapes: the serial fallback plus every partition edge
// --- case (t > len, len % t ≠ 0, empty bands).

proptest! {
    #[test]
    fn matvec_any_shape_is_bitwise_thread_invariant(
        (rows, cols, seed) in (1usize..24, 1usize..24, 0u64..1000),
    ) {
        let a = random_matrix(rows, cols, seed);
        let x = random_vec(cols, seed ^ 0x5eed);
        let reference = with_threads(1, || a.matvec(&x));
        for t in THREADS {
            let got = with_threads(t, || a.matvec(&x));
            prop_assert_eq!(bits(&got), bits(&reference));
        }
    }

    #[test]
    fn matvec_transposed_any_shape_is_bitwise_thread_invariant(
        (rows, cols, seed) in (1usize..24, 1usize..24, 0u64..1000),
    ) {
        let a = random_matrix(rows, cols, seed);
        let x = random_vec(rows, seed ^ 0xdead);
        let reference = with_threads(1, || a.matvec_transposed(&x));
        for t in THREADS {
            let got = with_threads(t, || a.matvec_transposed(&x));
            prop_assert_eq!(bits(&got), bits(&reference));
        }
    }

    #[test]
    fn lu_solve_any_size_is_bitwise_thread_invariant(
        (n, seed) in (1usize..20, 0u64..1000),
    ) {
        let a = dominant_matrix(n, seed);
        let b = random_vec(n, seed ^ 0xb175);
        let reference = with_threads(1, || LuFactors::factor(a.clone()).unwrap().solve(&b).unwrap());
        for t in THREADS {
            let got = with_threads(t, || LuFactors::factor(a.clone()).unwrap().solve(&b).unwrap());
            prop_assert_eq!(bits(&got), bits(&reference));
        }
    }
}
