//! Incremental-cache behavior, end to end through the binary: cold and
//! warm runs must emit byte-identical output, and editing a *callee* must
//! re-trigger (or retire) cross-file findings even while the caller's
//! pass-1 analysis is served from the cache.

use std::path::{Path, PathBuf};
use std::process::Command;

const LIB_RS: &str = "#![forbid(unsafe_code)]\n\
    mod helper;\n\
    \n\
    pub fn api(xs: &[u32]) -> u32 {\n\
    \x20   crate::helper::pick(xs)\n\
    }\n";

/// Callee with a reachable private panic (seed for `reach::panic`).
const HELPER_PANICKY: &str = "fn pick(xs: &[u32]) -> u32 {\n\
    \x20   xs.first().copied().unwrap()\n\
    }\n";

/// Same callee, total: no seed.
const HELPER_TOTAL: &str = "fn pick(xs: &[u32]) -> u32 {\n\
    \x20   xs.first().copied().unwrap_or(0)\n\
    }\n";

fn mini_workspace(name: &str, helper_rs: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let src = root.join("src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    std::fs::write(src.join("lib.rs"), LIB_RS).unwrap();
    std::fs::write(src.join("helper.rs"), helper_rs).unwrap();
    root
}

fn run_json(root: &Path, extra: &[&str]) -> (Option<i32>, String) {
    let mut args = vec!["--root", root.to_str().unwrap(), "--format", "json"];
    args.extend_from_slice(extra);
    let out = Command::new(env!("CARGO_BIN_EXE_memlp-lint"))
        .args(&args)
        .output()
        .expect("spawn memlp-lint");
    (out.status.code(), String::from_utf8(out.stdout).unwrap())
}

#[test]
fn cold_warm_and_uncached_runs_are_byte_identical() {
    let root = mini_workspace("cache_identical", HELPER_PANICKY);
    let (code_cold, cold) = run_json(&root, &[]);
    assert!(
        root.join(".memlp-lint-cache.json").is_file(),
        "first run should write the cache"
    );
    let (code_warm, warm) = run_json(&root, &[]);
    let (code_none, none) = run_json(&root, &["--no-cache"]);
    assert_eq!(code_cold, Some(1));
    assert_eq!(code_warm, Some(1));
    assert_eq!(code_none, Some(1));
    assert_eq!(cold, warm, "cold vs warm output diverged");
    assert_eq!(cold, none, "cached vs --no-cache output diverged");
    assert!(cold.contains("\"rule\": \"reach::panic\""), "{cold}");
}

#[test]
fn editing_a_callee_retriggers_the_cross_file_finding_through_the_cache() {
    let root = mini_workspace("cache_invalidation", HELPER_TOTAL);
    let helper = root.join("src/helper.rs");

    // Run 1 (cold): the total helper is clean.
    let (code, out) = run_json(&root, &[]);
    assert_eq!(code, Some(0), "{out}");
    assert!(!out.contains("reach::panic"), "{out}");

    // Run 2: only the callee changes; `lib.rs` pass-1 comes from the
    // cache, yet the cross pass must surface the new reachable panic and
    // its witness chain through the cached caller.
    std::fs::write(&helper, HELPER_PANICKY).unwrap();
    let (code, out) = run_json(&root, &[]);
    assert_eq!(code, Some(1), "{out}");
    assert!(out.contains("\"rule\": \"reach::panic\""), "{out}");
    assert!(out.contains("entry point `memlp::api`"), "{out}");

    // Run 3: revert the callee; the finding must retire the same way.
    std::fs::write(&helper, HELPER_TOTAL).unwrap();
    let (code, out) = run_json(&root, &[]);
    assert_eq!(code, Some(0), "{out}");
    assert!(!out.contains("reach::panic"), "{out}");
}

#[test]
fn corrupt_cache_reads_as_empty_and_is_rewritten() {
    let root = mini_workspace("cache_corrupt", HELPER_PANICKY);
    let (_, want) = run_json(&root, &[]);
    let cache = root.join(".memlp-lint-cache.json");
    std::fs::write(&cache, "{ not json at all").unwrap();
    let (code, got) = run_json(&root, &[]);
    assert_eq!(code, Some(1));
    assert_eq!(want, got, "corrupt cache changed output");
    let rewritten = std::fs::read_to_string(&cache).unwrap();
    assert!(rewritten.starts_with('{') && rewritten.contains("\"files\""));
}
