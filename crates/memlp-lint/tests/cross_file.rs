//! Cross-file golden tests: each fixture *set* under
//! `tests/fixtures/cross/` is a multi-file workspace slice linted through
//! [`memlp_lint::lint_sources`], with the exact `(file, line, rule)` set
//! asserted and the call-chain witness checked step by step. Bad/good
//! pairs keep the same call shape so a pass that stops resolving calls
//! cannot silently turn a bad fixture "clean".

use memlp_lint::{lint_sources, Finding, Report};

const PANIC_FILES: &[(&str, &str)] = &[
    ("api.rs", "crates/memlp-lp/src/api.rs"),
    ("scale.rs", "crates/memlp-lp/src/scale.rs"),
    ("pivot.rs", "crates/memlp-lp/src/pivot.rs"),
];

const ENTROPY_FILES: &[(&str, &str)] = &[
    ("diag.rs", "src/diag.rs"),
    ("sched.rs", "crates/memlp-noc/src/sched.rs"),
];

const TAINT_FILES: &[(&str, &str)] = &[
    ("probe.rs", "crates/memlp-device/src/probe.rs"),
    ("verify.rs", "crates/memlp-core/src/verify.rs"),
];

const PDHG_FILES: &[(&str, &str)] = &[
    ("operator.rs", "crates/memlp-core/src/pdhg_op.rs"),
    ("converge.rs", "crates/memlp-solvers/src/pdhg_check.rs"),
];

const TILE_FILES: &[(&str, &str)] = &[
    ("readback.rs", "crates/memlp-noc/src/tile_readback.rs"),
    ("scan.rs", "crates/memlp-crossbar/src/tile_scan.rs"),
];

fn load(set: &str, files: &[(&str, &str)]) -> Report {
    let sources = files
        .iter()
        .map(|&(fixture, simulated)| {
            let path = format!(
                "{}/tests/fixtures/cross/{set}/{fixture}",
                env!("CARGO_MANIFEST_DIR")
            );
            let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
            (simulated.to_string(), src)
        })
        .collect();
    lint_sources(sources)
}

fn triples(report: &Report) -> Vec<(&str, u32, &str)> {
    report
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.rule))
        .collect()
}

fn the_finding<'a>(report: &'a Report, rule: &str) -> &'a Finding {
    let mut hits = report.findings.iter().filter(|f| f.rule == rule);
    let f = hits.next().unwrap_or_else(|| panic!("no {rule} finding"));
    assert!(hits.next().is_none(), "more than one {rule} finding");
    f
}

/// Asserts the witness chain step by step: `(file, line, label fragment)`.
fn check_witness(f: &Finding, expected: &[(&str, u32, &str)]) {
    let got: Vec<String> = f
        .witness
        .iter()
        .map(|w| format!("{}:{}: {}", w.file, w.line, w.label))
        .collect();
    assert_eq!(
        f.witness.len(),
        expected.len(),
        "witness for [{}] {}:\n{}",
        f.rule,
        f.file,
        got.join("\n")
    );
    for (step, &(file, line, fragment)) in f.witness.iter().zip(expected) {
        assert_eq!((step.file.as_str(), step.line), (file, line), "{got:?}");
        assert!(
            step.label.contains(fragment),
            "step label `{}` missing `{fragment}`",
            step.label
        );
    }
}

/// The 3-hop chain `solve_entry` → `scale_rhs` → `pick_pivot` ends in a
/// private `.unwrap()`: the per-file rule flags the token and the
/// reachability pass pins the abort on the public entry point, with the
/// full discovery chain as witness.
#[test]
fn three_hop_panic_chain_is_traced_to_the_entry_point() {
    let r = load("panic_bad", PANIC_FILES);
    assert_eq!(
        triples(&r),
        vec![
            ("crates/memlp-lp/src/pivot.rs", 4, "panic::unwrap"),
            ("crates/memlp-lp/src/pivot.rs", 4, "reach::panic"),
        ]
    );
    let f = the_finding(&r, "reach::panic");
    assert!(
        f.message
            .contains("can abort callers of entry point `memlp_lp::api::solve_entry`"),
        "{}",
        f.message
    );
    check_witness(
        f,
        &[
            (
                "crates/memlp-lp/src/api.rs",
                4,
                "entry point `memlp_lp::api::solve_entry`",
            ),
            (
                "crates/memlp-lp/src/api.rs",
                5,
                "calls `memlp_lp::scale::scale_rhs`",
            ),
            (
                "crates/memlp-lp/src/scale.rs",
                4,
                "calls `memlp_lp::pivot::pick_pivot`",
            ),
            (
                "crates/memlp-lp/src/pivot.rs",
                4,
                "`.unwrap()` in `memlp_lp::pivot::pick_pivot`",
            ),
        ],
    );
}

/// The same chain returning `Option` through every hop lints clean.
#[test]
fn option_returning_panic_chain_lints_clean() {
    let r = load("panic_good", PANIC_FILES);
    assert_eq!(triples(&r), vec![]);
}

/// A wall-clock helper in the root crate is reached from `memlp-noc`
/// through an aliased import: the leak is reported at the entropy seed,
/// and the witness walks alias resolution back to the scheduler entry
/// point. Since the wall-clock ban widened beyond the solver crates
/// (timing now lives only in memlp-bench/memlp-serve), the token pass
/// flags the helper's `Instant` reads too — the cross-file finding is
/// still the one that names the solver-side entry point.
#[test]
fn aliased_import_entropy_leak_is_traced_across_crates() {
    let r = load("entropy_bad", ENTROPY_FILES);
    assert_eq!(
        triples(&r),
        vec![
            ("src/diag.rs", 3, "determinism::wall-clock"),
            ("src/diag.rs", 7, "determinism::wall-clock"),
            ("src/diag.rs", 7, "reach::nondeterminism"),
        ]
    );
    let f = the_finding(&r, "reach::nondeterminism");
    assert!(f.message.contains("leaks ambient entropy"), "{}", f.message);
    check_witness(
        f,
        &[
            (
                "crates/memlp-noc/src/sched.rs",
                6,
                "entry point `memlp_noc::sched::stamp_epoch`",
            ),
            (
                "crates/memlp-noc/src/sched.rs",
                7,
                "calls `memlp::diag::stamp_millis`",
            ),
            ("src/diag.rs", 7, "`Instant` in `memlp::diag::stamp_millis`"),
        ],
    );
}

/// The same import/call shape fed by a replayable tick counter is clean.
#[test]
fn tick_fed_scheduler_lints_clean() {
    let r = load("entropy_good", ENTROPY_FILES);
    assert_eq!(triples(&r), vec![]);
}

/// A readout bound from the annotated `analog_source` method and compared
/// with `==` (or used as a raw index) fires the taint rule; each witness
/// walks the provenance back to the annotation in the other crate.
#[test]
fn tainted_readout_exact_compare_and_index_are_found() {
    let r = load("taint_bad", TAINT_FILES);
    assert_eq!(
        triples(&r),
        vec![
            ("crates/memlp-core/src/verify.rs", 8, "float::strict-eq"),
            ("crates/memlp-core/src/verify.rs", 8, "taint::analog-exact"),
            ("crates/memlp-core/src/verify.rs", 14, "taint::analog-exact"),
        ]
    );
    let taints: Vec<&Finding> = r
        .findings
        .iter()
        .filter(|f| f.rule == "taint::analog-exact")
        .collect();
    check_witness(
        taints[0],
        &[
            (
                "crates/memlp-core/src/verify.rs",
                8,
                "strict compare on analog-tainted `v`",
            ),
            ("crates/memlp-core/src/verify.rs", 7, "`v` bound from"),
            (
                "crates/memlp-device/src/probe.rs",
                12,
                "is an annotated analog source",
            ),
        ],
    );
    check_witness(
        taints[1],
        &[
            (
                "crates/memlp-core/src/verify.rs",
                14,
                "unclamped index on analog-tainted `v`",
            ),
            ("crates/memlp-core/src/verify.rs", 13, "`v` bound from"),
            (
                "crates/memlp-device/src/probe.rs",
                12,
                "is an annotated analog source",
            ),
        ],
    );
}

/// Tolerance-band compares and `.min()`-clamped indexing over the same
/// tainted readout lint clean.
#[test]
fn tolerant_compare_and_clamped_index_lint_clean() {
    let r = load("taint_good", TAINT_FILES);
    assert_eq!(triples(&r), vec![]);
}

/// The first-order backend's smuggling hazard: the PDHG operator's
/// annotated analog drives feed the convergence check, and a strict `==`
/// against zero on the readout (or a raw checkpoint index) fires the
/// taint rule with provenance walked back to the annotation in the
/// operator crate.
#[test]
fn pdhg_readout_must_not_reach_strict_convergence_compares() {
    let r = load("pdhg_bad", PDHG_FILES);
    assert_eq!(
        triples(&r),
        vec![
            (
                "crates/memlp-solvers/src/pdhg_check.rs",
                8,
                "float::strict-eq"
            ),
            (
                "crates/memlp-solvers/src/pdhg_check.rs",
                8,
                "taint::analog-exact"
            ),
            (
                "crates/memlp-solvers/src/pdhg_check.rs",
                14,
                "taint::analog-exact"
            ),
        ]
    );
    let taints: Vec<&Finding> = r
        .findings
        .iter()
        .filter(|f| f.rule == "taint::analog-exact")
        .collect();
    check_witness(
        taints[0],
        &[
            (
                "crates/memlp-solvers/src/pdhg_check.rs",
                8,
                "strict compare on analog-tainted `r`",
            ),
            (
                "crates/memlp-solvers/src/pdhg_check.rs",
                7,
                "`r` bound from",
            ),
            (
                "crates/memlp-core/src/pdhg_op.rs",
                12,
                "is an annotated analog source",
            ),
        ],
    );
    check_witness(
        taints[1],
        &[
            (
                "crates/memlp-solvers/src/pdhg_check.rs",
                14,
                "unclamped index on analog-tainted `r`",
            ),
            (
                "crates/memlp-solvers/src/pdhg_check.rs",
                13,
                "`r` bound from",
            ),
            (
                "crates/memlp-core/src/pdhg_op.rs",
                12,
                "is an annotated analog source",
            ),
        ],
    );
}

/// Tolerance-banded convergence and clamped checkpoint indices — the
/// real loop's idiom — lint clean over the same call shape.
#[test]
fn pdhg_tolerance_band_checks_lint_clean() {
    let r = load("pdhg_good", PDHG_FILES);
    assert_eq!(triples(&r), vec![]);
}

/// The elision discipline (DESIGN.md §18): a tile-occupancy index must be
/// built from *planned* coefficients, never analog read-backs — a
/// liveness verdict riding converter noise makes fabrication decisions
/// depend on entropy. Deciding liveness by strict-comparing a read-back
/// (or indexing the occupancy bitmap with one) fires the taint rule with
/// provenance walked back to the annotated source in the fabric crate —
/// and it fires in `memlp-crossbar`, *outside* the per-file float-rule
/// scope: taint provenance, not crate lists, is what guards the index.
#[test]
fn occupancy_built_from_analog_readbacks_is_flagged() {
    let r = load("tile_bad", TILE_FILES);
    assert_eq!(
        triples(&r),
        vec![
            (
                "crates/memlp-crossbar/src/tile_scan.rs",
                8,
                "taint::analog-exact"
            ),
            (
                "crates/memlp-crossbar/src/tile_scan.rs",
                14,
                "taint::analog-exact"
            ),
        ]
    );
    let taints: Vec<&Finding> = r
        .findings
        .iter()
        .filter(|f| f.rule == "taint::analog-exact")
        .collect();
    check_witness(
        taints[0],
        &[
            (
                "crates/memlp-crossbar/src/tile_scan.rs",
                8,
                "strict compare on analog-tainted `g`",
            ),
            (
                "crates/memlp-crossbar/src/tile_scan.rs",
                7,
                "`g` bound from",
            ),
            (
                "crates/memlp-noc/src/tile_readback.rs",
                12,
                "is an annotated analog source",
            ),
        ],
    );
    check_witness(
        taints[1],
        &[
            (
                "crates/memlp-crossbar/src/tile_scan.rs",
                14,
                "unclamped index on analog-tainted `g`",
            ),
            (
                "crates/memlp-crossbar/src/tile_scan.rs",
                13,
                "`g` bound from",
            ),
            (
                "crates/memlp-noc/src/tile_readback.rs",
                12,
                "is an annotated analog source",
            ),
        ],
    );
}

/// The real occupancy idiom — liveness from planned coefficients (exact
/// zero tests on digital values), read-backs band-checked, indices
/// clamped — lints clean over the same call shape.
#[test]
fn occupancy_built_from_planned_values_lints_clean() {
    let r = load("tile_good", TILE_FILES);
    assert_eq!(triples(&r), vec![]);
}

/// Acceptance criterion: every cross-file finding carries a non-empty
/// witness chain whose last step lands on the reported seed line.
#[test]
fn every_cross_file_finding_has_a_witness_ending_at_the_seed() {
    for (set, files) in [
        ("panic_bad", PANIC_FILES),
        ("entropy_bad", ENTROPY_FILES),
        ("taint_bad", TAINT_FILES),
        ("pdhg_bad", PDHG_FILES),
        ("tile_bad", TILE_FILES),
    ] {
        let r = load(set, files);
        for f in r.findings.iter().filter(|f| f.rule.starts_with("reach::")) {
            let last = f
                .witness
                .last()
                .unwrap_or_else(|| panic!("[{}] {}:{} has no witness", f.rule, f.file, f.line));
            assert_eq!((last.file.as_str(), last.line), (f.file.as_str(), f.line));
            assert!(f.witness.len() >= 2, "witness too short in {set}");
        }
    }
}
