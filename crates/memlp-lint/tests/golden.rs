//! Golden-file tests: each fixture is linted under a simulated
//! workspace-relative path (the path drives crate/test scoping) and the
//! exact `(line, rule)` set is asserted.

use memlp_lint::lint_str;

fn findings(fixture: &str, simulated_path: &str) -> Vec<(u32, String)> {
    let path = format!("{}/tests/fixtures/{}", env!("CARGO_MANIFEST_DIR"), fixture);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    lint_str(simulated_path, &src)
        .findings
        .into_iter()
        .map(|f| (f.line, f.rule.to_string()))
        .collect()
}

fn check(fixture: &str, simulated_path: &str, expected: &[(u32, &str)]) {
    let got = findings(fixture, simulated_path);
    let want: Vec<(u32, String)> = expected.iter().map(|&(l, r)| (l, r.to_string())).collect();
    assert_eq!(got, want, "fixture {fixture} as {simulated_path}");
}

#[test]
fn determinism_rules_fire_in_solver_crates() {
    check(
        "bad_determinism.rs",
        "crates/memlp-core/src/fake.rs",
        &[
            (1, "determinism::wall-clock"),
            (2, "determinism::hash-container"),
            (5, "determinism::wall-clock"),
            (9, "determinism::unseeded-rng"),
            (10, "determinism::wall-clock"),
            (13, "determinism::hash-container"),
        ],
    );
}

/// The fault-injection / write–verify modules are determinism-critical:
/// ambient RNG, wall-clock seeds, and unordered maps in a fault-map pastiche
/// must all fire, in both the crossbar and device crates.
#[test]
fn fault_modules_are_held_to_the_determinism_regime() {
    let expected: &[(u32, &str)] = &[
        (1, "determinism::hash-container"),
        (4, "determinism::hash-container"),
        (8, "determinism::unseeded-rng"),
        (9, "determinism::hash-container"),
        (21, "determinism::wall-clock"),
        (22, "determinism::unseeded-rng"),
    ];
    check(
        "bad_fault_module.rs",
        "crates/memlp-crossbar/src/fault.rs",
        expected,
    );
    check(
        "bad_fault_module.rs",
        "crates/memlp-device/src/programming.rs",
        expected,
    );
}

/// The real idiom — salted seeded `StdRng` streams and `BTreeMap`-backed
/// fault maps — lints clean in the same modules.
#[test]
fn seeded_fault_modules_lint_clean() {
    check(
        "good_fault_module.rs",
        "crates/memlp-crossbar/src/fault.rs",
        &[],
    );
    check(
        "good_fault_module.rs",
        "crates/memlp-device/src/programming.rs",
        &[],
    );
}

/// Delta programming is cache-driven and determinism-critical: an
/// unordered code cache, wall-clock refresh stamps, or ambient RNG in the
/// skip path must all fire in the hardware-context module.
#[test]
fn delta_programming_modules_are_held_to_the_determinism_regime() {
    check(
        "bad_delta_module.rs",
        "crates/memlp-core/src/hw.rs",
        &[
            (1, "determinism::hash-container"),
            (2, "determinism::wall-clock"),
            (5, "determinism::hash-container"),
            (6, "determinism::wall-clock"),
            (10, "determinism::unseeded-rng"),
            (12, "determinism::wall-clock"),
            (24, "determinism::unseeded-rng"),
        ],
    );
}

/// The real idiom — a `BTreeMap` code cache keyed by block, with the
/// variation deviate drawn on skip and write alike — lints clean both in
/// the core hardware context and the array-level delta path.
#[test]
fn delta_programming_idiom_lints_clean() {
    check("good_delta_module.rs", "crates/memlp-core/src/hw.rs", &[]);
    check(
        "good_delta_module.rs",
        "crates/memlp-crossbar/src/array.rs",
        &[],
    );
}

#[test]
fn forbidden_tokens_inside_literals_and_comments_are_ignored() {
    check("good_strings.rs", "crates/memlp-core/src/fake.rs", &[]);
}

#[test]
fn panic_rules_fire_outside_test_modules_only() {
    check(
        "bad_panic.rs",
        "crates/memlp-lp/src/fake.rs",
        &[
            (2, "panic::unwrap"),
            (5, "panic::expect"),
            (8, "panic::panic-macro"),
            (11, "panic::panic-macro"),
            (14, "panic::panic-macro"),
        ],
    );
}

#[test]
fn concurrency_primitives_flagged_outside_the_pool() {
    check(
        "bad_concurrency.rs",
        "crates/memlp-noc/src/fake.rs",
        &[
            (1, "concurrency::primitive"),
            (2, "concurrency::primitive"),
            (5, "concurrency::primitive"),
            (9, "concurrency::primitive"),
            (10, "concurrency::primitive"),
        ],
    );
}

#[test]
fn float_strict_eq_exempts_exact_zero() {
    check(
        "bad_float.rs",
        "crates/memlp-solvers/src/fake.rs",
        &[
            (2, "float::strict-eq"),
            (4, "float::strict-eq"),
            (6, "float::strict-eq"),
        ],
    );
}

#[test]
fn allow_directives_suppress_validate_and_report_unused() {
    check(
        "allow_escapes.rs",
        "crates/memlp-core/src/fake.rs",
        &[
            (4, "lint::allow-missing-reason"),
            (5, "panic::unwrap"),
            (7, "lint::unknown-rule"),
            (10, "lint::unused-allow"),
        ],
    );
}

/// Multi-rule directives: a shared reason may contain commas and
/// parentheses; a rule that fires nothing is reported *by name* while its
/// used sibling stays silent; and a multi-rule directive still needs a
/// reason to suppress anything.
#[test]
fn multi_rule_allows_suppress_together_and_report_stale_rules_by_name() {
    check(
        "allow_multi.rs",
        "crates/memlp-core/src/fake.rs",
        &[
            (7, "lint::unused-allow"),
            (12, "lint::allow-missing-reason"),
            (13, "panic::unwrap"),
        ],
    );
    let path = format!(
        "{}/tests/fixtures/allow_multi.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let src = std::fs::read_to_string(path).unwrap();
    let report = lint_str("crates/memlp-core/src/fake.rs", &src);
    let unused = report
        .findings
        .iter()
        .find(|f| f.rule == "lint::unused-allow")
        .expect("unused-allow finding");
    assert!(
        unused.message.contains("determinism::wall-clock"),
        "stale rule not named: {}",
        unused.message
    );
}

#[test]
fn crate_roots_must_forbid_unsafe() {
    check(
        "missing_forbid.rs",
        "crates/memlp-device/src/lib.rs",
        &[(1, "safety::forbid-unsafe-missing")],
    );
    check("good_crate_root.rs", "crates/memlp-device/src/lib.rs", &[]);
}

#[test]
fn bench_crate_may_time_and_abort() {
    check("bench_timing_ok.rs", "crates/memlp-bench/src/fake.rs", &[]);
}

/// The serve daemon's trifecta — sockets, wall clocks, concurrency
/// primitives — fires in a solver crate and in the CLI alike: neither is
/// a refuge for smuggled network I/O or timing.
#[test]
fn serve_surfaces_are_confined_to_the_serve_crate() {
    let expected: &[(u32, &str)] = &[
        (4, "net::socket"),
        (5, "concurrency::primitive"),
        (6, "determinism::wall-clock"),
        (9, "determinism::wall-clock"),
        (10, "net::socket"),
        (11, "concurrency::primitive"),
        (12, "concurrency::primitive"),
    ];
    check(
        "bad_serve_module.rs",
        "crates/memlp-solvers/src/fake.rs",
        expected,
    );
    check("bad_serve_module.rs", "src/fake.rs", expected);
}

/// The same surfaces, written in the daemon's real idiom (poison-recovering
/// locks, latency stamps, listener bind), lint clean under memlp-serve —
/// and it is the *path* that licenses them, not the code: the identical
/// file under a solver crate fires every confinement rule.
#[test]
fn serve_idiom_is_clean_at_home_and_flagged_abroad() {
    check(
        "good_serve_module.rs",
        "crates/memlp-serve/src/fake.rs",
        &[],
    );
    check(
        "good_serve_module.rs",
        "crates/memlp-core/src/fake.rs",
        &[
            (3, "net::socket"),
            (4, "concurrency::primitive"),
            (5, "determinism::wall-clock"),
            (9, "concurrency::primitive"),
            (17, "determinism::wall-clock"),
            (18, "net::socket"),
        ],
    );
}

#[test]
fn unsafe_is_flagged_even_in_exempt_crates() {
    check(
        "unsafe_code.rs",
        "crates/memlp-bench/src/fake.rs",
        &[(3, "safety::unsafe-code")],
    );
}

#[test]
fn integration_tests_still_run_under_the_concurrency_regime() {
    check(
        "test_file_concurrency.rs",
        "crates/memlp-linalg/tests/fake.rs",
        &[(1, "concurrency::primitive"), (5, "concurrency::primitive")],
    );
}

#[test]
fn severities_match_the_registry() {
    let path = format!(
        "{}/tests/fixtures/allow_escapes.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let src = std::fs::read_to_string(path).unwrap();
    let report = lint_str("crates/memlp-core/src/fake.rs", &src);
    assert_eq!(report.deny_count(), 3);
    assert_eq!(report.warn_count(), 1);
}

/// The sparse Newton kernels are inner-loop and determinism-critical: an
/// unordered slot map for the symbolic pattern, wall-clock analysis
/// stamps, unwraps in the refactor hot path, and a strict compare against
/// a nonzero float must all fire — in the linalg kernel crate and in the
/// core Schur-complement module alike.
#[test]
fn sparse_modules_are_held_to_the_workspace_regime() {
    let expected: &[(u32, &str)] = &[
        (1, "determinism::hash-container"),
        (2, "determinism::wall-clock"),
        (5, "determinism::hash-container"),
        (6, "determinism::wall-clock"),
        (10, "determinism::wall-clock"),
        (13, "panic::unwrap"),
        (14, "float::strict-eq"),
    ];
    check(
        "bad_sparse_module.rs",
        "crates/memlp-linalg/src/sparse_lu.rs",
        expected,
    );
    check(
        "bad_sparse_module.rs",
        "crates/memlp-core/src/newton.rs",
        expected,
    );
}

/// The register-tiled microkernel module is inner-loop and
/// determinism-critical: a timing-fed tile auto-tuner is exactly what the
/// regime exists to keep out — wall-clock in the dispatch path, an
/// unordered rate cache, a cross-thread counter outside the pool, an
/// unwrap in the hot path, and a strict compare against a nonzero rate
/// must all fire, in the linalg kernel module and its matrix entry points
/// alike.
#[test]
fn kernel_modules_are_held_to_the_workspace_regime() {
    let expected: &[(u32, &str)] = &[
        (1, "determinism::hash-container"),
        (2, "concurrency::primitive"),
        (3, "determinism::wall-clock"),
        (9, "determinism::hash-container"),
        (10, "concurrency::primitive"),
        (14, "determinism::wall-clock"),
        (18, "float::strict-eq"),
        (26, "panic::unwrap"),
    ];
    check(
        "bad_kernels_module.rs",
        "crates/memlp-linalg/src/kernels.rs",
        expected,
    );
    check(
        "bad_kernels_module.rs",
        "crates/memlp-linalg/src/matrix.rs",
        expected,
    );
}

/// The real idiom — a thread-local `Cell` policy override with scoped
/// restore, the fixed 4-lane reduction tree, and exact-zero padding
/// compares — lints clean in the same module.
#[test]
fn kernel_idiom_lints_clean() {
    check(
        "good_kernels_module.rs",
        "crates/memlp-linalg/src/kernels.rs",
        &[],
    );
}

/// The real idiom — Vec-indexed fill pattern, NaN-safe pivot guard, and
/// exact-zero skip compares — lints clean in the same modules.
#[test]
fn sparse_kernel_idiom_lints_clean() {
    check(
        "good_sparse_module.rs",
        "crates/memlp-linalg/src/sparse_lu.rs",
        &[],
    );
    check(
        "good_sparse_module.rs",
        "crates/memlp-core/src/newton.rs",
        &[],
    );
}
