//! Scan-set coverage lock-in: the lint must keep walking the workspace
//! root's `src`/`tests`/`examples`, every crate's sources, and the bench
//! crate's `benches/` — and keep honoring the crate-class exemptions that
//! make those paths lintable (benches may time, tests may panic).

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
}

#[test]
fn the_scan_set_covers_every_crate_class() {
    let files = memlp_lint::workspace_files(workspace_root()).expect("collect scan set");
    for must in [
        // Workspace-root package: library, binaries, integration tests,
        // examples.
        "src/lib.rs",
        "tests/end_to_end.rs",
        "examples/quickstart.rs",
        // A library crate and the bench crate's benches/.
        "crates/memlp-core/src/lib.rs",
        "crates/memlp-bench/benches/kernels.rs",
        // The lint tool itself is not above its own law.
        "crates/memlp-lint/src/lib.rs",
    ] {
        assert!(
            files.iter().any(|f| f == must),
            "scan set is missing {must}"
        );
    }
    for (prefix, why) in [
        (
            "crates/memlp-lint/tests/fixtures/",
            "rule fixtures violate on purpose",
        ),
        ("vendor/", "third-party code"),
        ("target/", "build output"),
    ] {
        assert!(
            !files.iter().any(|f| f.starts_with(prefix)),
            "scan set must exclude {prefix} ({why})"
        );
    }
}

#[test]
fn crate_class_exemptions_hold_for_the_scanned_paths() {
    use memlp_lint::rules::FileCtx;
    // Benches and examples are test scope (may time, may unwrap).
    assert!(FileCtx::classify("crates/memlp-bench/benches/kernels.rs").test_file);
    assert!(FileCtx::classify("examples/quickstart.rs").test_file);
    assert!(FileCtx::classify("tests/end_to_end.rs").test_file);
    // Root-package library code is the `memlp` crate and full scope.
    let root_lib = FileCtx::classify("src/lib.rs");
    assert_eq!(root_lib.krate, "memlp");
    assert!(!root_lib.test_file && root_lib.crate_root);
    // Crate sources are attributed to their crate.
    assert_eq!(
        FileCtx::classify("crates/memlp-noc/src/router.rs").krate,
        "memlp-noc"
    );
}
