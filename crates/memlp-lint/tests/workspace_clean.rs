//! The acceptance gate: the real workspace must lint clean (zero deny
//! findings). This is the same check CI's `lint-invariants` job runs via
//! the binary; keeping it as a test means `cargo test` alone proves the
//! invariants hold.

use std::path::Path;

#[test]
fn the_workspace_has_zero_deny_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let report = memlp_lint::lint_workspace(root).expect("lint workspace");
    let denies: Vec<String> = report
        .findings
        .iter()
        .filter(|f| f.severity == memlp_lint::Severity::Deny)
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        denies.is_empty(),
        "deny findings in the workspace:\n{}",
        denies.join("\n")
    );
    assert!(
        report.files_scanned >= 100,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}
