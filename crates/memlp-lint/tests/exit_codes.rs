//! End-to-end binary tests: build a throwaway mini-workspace on disk, run
//! the `memlp-lint` binary against it with `--root`, and assert exit codes
//! and output shape.

use std::path::{Path, PathBuf};
use std::process::Command;

fn mini_workspace(name: &str, lib_rs: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let src = root.join("src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
    std::fs::write(src.join("lib.rs"), lib_rs).unwrap();
    root
}

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_memlp-lint"))
        .args(args)
        .output()
        .expect("spawn memlp-lint")
}

#[test]
fn dirty_workspace_exits_one_with_findings() {
    let root = mini_workspace("dirty", "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n");
    let out = run(&["--root", root.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("panic::unwrap"), "{stdout}");
    assert!(stdout.contains("safety::forbid-unsafe-missing"), "{stdout}");
    assert!(stdout.contains("2 deny, 0 warn"), "{stdout}");
}

#[test]
fn clean_workspace_exits_zero() {
    let root = mini_workspace("clean", "#![forbid(unsafe_code)]\npub fn ok() {}\n");
    let out = run(&["--root", root.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
}

#[test]
fn json_format_reports_counts_and_rules() {
    let root = mini_workspace("json", "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n");
    let out = run(&["--root", root.to_str().unwrap(), "--format", "json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"deny\": 2"), "{stdout}");
    assert!(stdout.contains("\"rule\": \"panic::unwrap\""), "{stdout}");
    assert!(
        stdout.contains("\"rule\": \"safety::forbid-unsafe-missing\""),
        "{stdout}"
    );
}

#[test]
fn warn_only_findings_still_exit_zero() {
    let root = mini_workspace(
        "warn_only",
        "#![forbid(unsafe_code)]\n// memlp-lint: allow(panic::unwrap, reason = \"nothing here uses it\")\npub fn ok() {}\n",
    );
    let out = run(&["--root", root.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("lint::unused-allow"), "{stdout}");
    assert!(stdout.contains("0 deny, 1 warn"), "{stdout}");
}

#[test]
fn unknown_flag_exits_two() {
    let out = run(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown argument"), "{stderr}");
}

#[test]
fn missing_root_path_exits_two() {
    let out = run(&["--root"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn list_rules_prints_registry_and_exits_zero() {
    let out = run(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    for (id, ..) in memlp_lint::RULES {
        assert!(stdout.contains(id), "missing rule {id} in --list-rules");
    }
}

#[test]
fn quiet_mode_prints_deny_findings_only() {
    let root = mini_workspace("quiet", "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n");
    let out = run(&["--root", root.to_str().unwrap(), "--quiet"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("panic::unwrap"), "{stdout}");
    assert!(!stdout.contains("finding(s)"), "{stdout}");
}

#[test]
fn nonexistent_root_exits_two() {
    let out = run(&["--root", "/nonexistent/memlp-lint-root"]);
    assert_eq!(out.status.code(), Some(2));
}
