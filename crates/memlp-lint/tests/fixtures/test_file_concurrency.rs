use std::sync::atomic::AtomicBool;

#[test]
fn integration_tests_run_under_the_concurrency_regime() {
    let _flag = AtomicBool::new(true);
    Some(1).unwrap();
}
