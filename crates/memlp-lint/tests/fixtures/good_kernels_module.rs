use std::cell::Cell;

thread_local! {
    /// Per-thread tile-shape override — plain interior mutability, no
    /// cross-thread primitive, restored by the caller.
    static OVERRIDE: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

const LANES: usize = 4;

/// The fixed 4-lane reduction tree: lane `l` sums elements `≡ l (mod 4)`,
/// pairwise combine, sequential tail — a pure function of the length, so
/// the result cannot depend on tile shape or thread count.
fn dot_lanes(a: &[f64], x: &[f64]) -> f64 {
    let mut lanes = [0.0f64; LANES];
    let chunks = a.len() / LANES;
    for c in 0..chunks {
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane += a[c * LANES + l] * x[c * LANES + l];
        }
    }
    let mut acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for i in chunks * LANES..a.len() {
        acc += a[i] * x[i];
    }
    acc
}

/// Scoped tile override in the thread-local, restored before returning —
/// the pattern `with_policy` uses for tests and benches.
fn with_forced_tile<T>(tile: (usize, usize), f: impl FnOnce() -> T) -> T {
    let prev = OVERRIDE.with(|c| c.replace(Some(tile)));
    let out = f();
    OVERRIDE.with(|c| c.set(prev));
    out
}

/// Exact-zero compares are the one strict float equality the regime
/// allows: padding rows are exactly zero by construction.
fn is_padding(row: &[f64]) -> bool {
    row.iter().all(|v| *v == 0.0)
}

fn forced_dot(a: &[f64], x: &[f64]) -> f64 {
    with_forced_tile((4, 8), || dot_lanes(a, x))
}
