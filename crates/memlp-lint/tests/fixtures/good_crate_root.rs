#![forbid(unsafe_code)]
//! Fixture crate root carrying the required attribute.
pub fn ok() {}
