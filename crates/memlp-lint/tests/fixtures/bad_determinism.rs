use std::time::Instant;
use std::collections::HashMap;

fn now_ms() -> u128 {
    Instant::now().elapsed().as_millis()
}

fn unseeded() {
    let _rng = thread_rng();
    let _sys = std::time::SystemTime::now();
}

fn keys(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect()
}
