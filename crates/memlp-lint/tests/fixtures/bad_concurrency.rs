use std::sync::Mutex;
use std::sync::atomic::AtomicU64;

fn worker() -> u64 {
    let h = std::thread::spawn(|| 42);
    h.join().unwrap_or(0)
}

static COUNTER: AtomicU64 = AtomicU64::new(0);
static LOCK: Mutex<()> = Mutex::new(());
