fn both(o: Option<u32>) -> u32 {
    // memlp-lint: allow(panic::unwrap, panic::expect, reason = "caller checks is_some() (cases a, b)")
    o.unwrap() + o.expect("set")
}

fn one(o: Option<u32>) -> u32 {
    // memlp-lint: allow(panic::unwrap, determinism::wall-clock, reason = "only the unwrap fires")
    o.unwrap()
}

fn missing(o: Option<u32>) -> u32 {
    // memlp-lint: allow(panic::unwrap, panic::expect)
    o.unwrap()
}
