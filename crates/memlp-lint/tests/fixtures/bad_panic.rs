fn f(o: Option<u32>) -> u32 {
    o.unwrap()
}
fn g(r: Result<u32, ()>) -> u32 {
    r.expect("boom")
}
fn h() {
    panic!("no");
}
fn t() {
    todo!()
}
fn u() {
    unimplemented!()
}
fn fine(o: Option<u32>) -> u32 {
    o.unwrap_or_default()
}
#[cfg(test)]
mod tests {
    #[test]
    fn unit_tests_may_unwrap() {
        Some(1).unwrap();
        panic!("fine in tests");
    }
}
