fn danger() -> i32 {
    let x = 5;
    unsafe { std::ptr::read(&x) }
}
