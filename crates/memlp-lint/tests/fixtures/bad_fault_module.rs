use std::collections::HashMap;

struct FaultMap {
    entries: HashMap<(usize, usize), u8>,
}

fn draw_plan(rows: usize, cols: usize) -> FaultMap {
    let mut rng = thread_rng();
    let mut entries = HashMap::new();
    for r in 0..rows {
        for c in 0..cols {
            if rng.gen_bool(0.01) {
                entries.insert((r, c), 1u8);
            }
        }
    }
    FaultMap { entries }
}

fn transient_seed() -> u64 {
    let t = std::time::SystemTime::now();
    let mut rng = StdRng::from_entropy();
    rng.gen()
}
