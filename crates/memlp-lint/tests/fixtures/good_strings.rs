// The escape hatch is written as memlp-lint: allow(rule, reason = "...") in DESIGN.md.
fn hidden_in_literals() -> String {
    let a = "Instant::now() and .unwrap() and thread_rng()";
    let b = r#"HashMap<Mutex> .expect("x") panic!"#;
    // Instant::now() in a comment is fine; so is .unwrap().
    /* block comment: SystemTime, todo!(), AtomicUsize,
       nested /* Mutex */ still a comment */
    let c = 'M';
    let d = r##"raw with "# fence: thread::spawn"##;
    format!("{a}{b}{c}{d}")
}
