fn f(x: f64, y: f64, z: f64) -> bool {
    let a = x == 1.5;
    let b = y == 0.0;
    let c = z != -2.5;
    let d = x == y;
    let e = 1e-3 == x;
    a && b && c && d && e
}
