/// Fill pattern of the factor in CSR layout, with the diagonal slot of
/// every row resolved once at analysis time — deterministic Vec-indexed
/// state, no maps, no clocks.
struct Symbolic {
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    diag_slots: Vec<usize>,
}

const PIVOT_FLOOR: f64 = 1e-292;

fn refactor(sym: &Symbolic, values: &[f64], diag: &mut [f64]) -> Result<u64, usize> {
    let mut flops = 0u64;
    for (k, &slot) in sym.diag_slots.iter().enumerate() {
        let piv = values[slot];
        // Written with `!(.. > ..)` so a NaN pivot also takes the error
        // path instead of poisoning the factor.
        if !(piv.abs() > PIVOT_FLOOR) {
            return Err(k);
        }
        diag[k] = piv;
        for p in sym.row_ptr[k]..sym.row_ptr[k + 1] {
            let j = sym.col_idx[p];
            if values[p] != 0.0 {
                flops += 2;
                diag[j] -= values[p] / piv;
            }
        }
    }
    Ok(flops)
}
