//! Occupancy scan for zero-tile elision.
use memlp_noc::tile_readback::TileReadback;

/// Right: liveness comes from the *planned* coefficient (exact zero
/// tests on digital values are well-defined); the read-back is only ever
/// judged inside the calibrated band.
pub fn tile_is_live(rb: &TileReadback, planned: f64, j: f64, band: f64) -> bool {
    let g = rb.read_cell(j);
    planned != 0.0 && (g - planned).abs() <= band
}

/// Right: the bitmap word index is clamped into the table before use.
pub fn live_word(rb: &TileReadback, j: f64, bitmap: &[u32]) -> u32 {
    let g = rb.read_cell(j);
    let idx = (g * 16.0) as usize;
    bitmap[idx.min(bitmap.len() - 1)]
}
