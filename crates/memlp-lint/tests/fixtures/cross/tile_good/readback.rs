//! Per-tile conductance read-back over the fabric ADC path.

/// One fabricated tile's sense port.
pub struct TileReadback {
    /// Read gain of the tile's sense amplifier.
    pub gain: f64,
}

impl TileReadback {
    /// Reads one cell's conductance back through the ADC.
    /// memlp-lint: analog_source
    pub fn read_cell(&self, j: f64) -> f64 {
        self.gain * j
    }
}
