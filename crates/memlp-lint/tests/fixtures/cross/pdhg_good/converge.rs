//! Convergence checks for the first-order loop.
use memlp_core::pdhg_op::SplitOp;

/// Right: residuals are judged inside the converter noise band.
pub fn converged(op: &SplitOp, x: f64, tol: f64) -> bool {
    let r = op.apply_row(x);
    r.abs() <= tol
}

/// Right: the checkpoint index is clamped into the table before use.
pub fn checkpoint(op: &SplitOp, x: f64, scores: &[u32]) -> u32 {
    let r = op.apply_row(x);
    let idx = (r * 16.0) as usize;
    scores[idx.min(scores.len() - 1)]
}
