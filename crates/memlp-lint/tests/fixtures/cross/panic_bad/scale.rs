//! RHS scaling pass between the public API and pivot selection.

pub(crate) fn scale_rhs(rhs: &[f64]) -> f64 {
    2.0 * crate::pivot::pick_pivot(rhs)
}
