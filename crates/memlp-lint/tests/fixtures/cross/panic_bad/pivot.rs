//! Pivot selection helper (wrong: aborts on an empty RHS).

fn pick_pivot(rhs: &[f64]) -> f64 {
    *rhs.first().unwrap()
}
