//! Convergence checks for the first-order loop.
use memlp_core::pdhg_op::SplitOp;

/// Wrong: the KKT residual rides the analog readout, so a strict
/// equality test against the convergence target is load-bearing noise.
pub fn converged(op: &SplitOp, x: f64) -> bool {
    let r = op.apply_row(x);
    r == 1e-8
}

/// Wrong: an unguarded checkpoint index derived from an analog readout.
pub fn checkpoint(op: &SplitOp, x: f64, scores: &[u32]) -> u32 {
    let r = op.apply_row(x);
    scores[r as usize]
}
