//! Sign-split PDHG operator over the crossbar ADC path.

/// Analog sign-split operator: one programmed array pair.
pub struct SplitOp {
    /// Read-back gain of the positive block.
    pub gain: f64,
}

impl SplitOp {
    /// Drives one row of `A·x` through the arrays and reads it back.
    /// memlp-lint: analog_source
    pub fn apply_row(&self, x: f64) -> f64 {
        self.gain * x
    }
}
