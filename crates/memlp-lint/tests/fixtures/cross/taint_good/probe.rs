//! Line-voltage probe model over the ADC path.

/// A single readout probe with a fixed front-end gain.
pub struct LineProbe {
    /// Front-end gain applied before the ADC.
    pub gain: f64,
}

impl LineProbe {
    /// Reads the settled line voltage through the ADC model.
    /// memlp-lint: analog_source
    pub fn read_voltage(&self) -> f64 {
        self.gain * 0.5
    }
}
