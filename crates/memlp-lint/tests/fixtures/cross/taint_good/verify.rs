//! Write–verify checks against the probe model.
use memlp_device::probe::LineProbe;

/// Right: compare within the ADC tolerance band.
pub fn verify_cell(probe: &LineProbe, tol: f64) -> bool {
    let v = probe.read_voltage();
    (v - 0.98).abs() <= tol
}

/// Right: the derived index is clamped into the table before use.
pub fn bucket(probe: &LineProbe, table: &[u32]) -> u32 {
    let v = probe.read_voltage();
    let idx = (v * 16.0) as usize;
    table[idx.min(table.len() - 1)]
}
