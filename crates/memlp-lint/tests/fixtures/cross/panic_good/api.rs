//! Public solve entry points feeding the scaling pass.

/// Entry point: scales the RHS, then reduces it to a pivot value.
pub fn solve_entry(rhs: &[f64]) -> Option<f64> {
    crate::scale::scale_rhs(rhs)
}
