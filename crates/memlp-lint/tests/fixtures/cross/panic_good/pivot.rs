//! Pivot selection helper (right: an empty RHS is the caller's problem).

fn pick_pivot(rhs: &[f64]) -> Option<f64> {
    rhs.first().copied()
}
