//! RHS scaling pass between the public API and pivot selection.

pub(crate) fn scale_rhs(rhs: &[f64]) -> Option<f64> {
    crate::pivot::pick_pivot(rhs).map(|p| 2.0 * p)
}
