//! Epoch scheduling for the mesh NoC (wrong: stamps epochs off the
//! aliased wall-clock helper, so replays diverge).
use memlp::diag::stamp_millis as clock;

/// Stamps an epoch header before dispatch.
pub fn stamp_epoch(epoch: u64) -> u128 {
    clock() + u128::from(epoch)
}
