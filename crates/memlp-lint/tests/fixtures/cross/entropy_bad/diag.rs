//! Wall-clock diagnostics for the CLI layer (legal here, but must never
//! feed a solver path).
use std::time::Instant;

/// Milliseconds of wall-clock latency for a log stamp.
pub fn stamp_millis() -> u128 {
    Instant::now().elapsed().as_millis()
}
