//! Occupancy scan for zero-tile elision.
use memlp_noc::tile_readback::TileReadback;

/// Wrong: tile liveness decided from an analog read-back — the strict
/// compare against the sub-LSB floor is load-bearing converter noise.
pub fn tile_is_live(rb: &TileReadback, j: f64) -> bool {
    let g = rb.read_cell(j);
    g != 1e-9
}

/// Wrong: a raw occupancy-bitmap index derived from an analog readout.
pub fn live_word(rb: &TileReadback, j: f64, bitmap: &[u32]) -> u32 {
    let g = rb.read_cell(j);
    bitmap[g as usize]
}
