//! Write–verify checks against the probe model.
use memlp_device::probe::LineProbe;

/// Wrong: the probed value rides the analog path, so exact equality
/// against a target voltage is load-bearing noise.
pub fn verify_cell(probe: &LineProbe) -> bool {
    let v = probe.read_voltage();
    v == 0.98
}

/// Wrong: an unguarded table index computed from an analog readout.
pub fn bucket(probe: &LineProbe, table: &[u32]) -> u32 {
    let v = probe.read_voltage();
    table[v as usize]
}
