//! Epoch scheduling for the mesh NoC (right: stamps come from the
//! replayable epoch counter, through the same aliased import shape).
use memlp::diag::stamp_tick as clock;

/// Stamps an epoch header from the epoch counter.
pub fn stamp_epoch(epoch: u64) -> u128 {
    clock(u128::from(epoch))
}
