//! Deterministic diagnostics for the CLI layer.

/// Scales a caller-supplied tick count (no ambient clock anywhere).
pub fn stamp_tick(tick: u128) -> u128 {
    tick.wrapping_mul(1000)
}
