use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const VARIATION_STREAM_SALT: u64 = 0x0DE17A;

/// Cached write-quantizer codes for one programmed block.
struct BlockCodes {
    codes: Vec<u64>,
}

struct CodeCache {
    blocks: BTreeMap<(u64, usize), BlockCodes>,
}

fn delta_program(
    cache: &mut CodeCache,
    key: (u64, usize),
    codes: Vec<u64>,
    seed: u64,
) -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ VARIATION_STREAM_SALT);
    let prev = cache.blocks.get(&key);
    let mut written = 0u64;
    let mut skipped = 0u64;
    for (i, &code) in codes.iter().enumerate() {
        // The variation deviate is drawn whether or not the pulse fires:
        // a skipped cell resolves to exactly what a fresh write produces.
        let _factor: f64 = 1.0 + rng.gen_range(-0.05..0.05);
        match prev {
            Some(p) if p.codes.get(i) == Some(&code) => skipped += 1,
            _ => written += 1,
        }
    }
    cache.blocks.insert(key, BlockCodes { codes });
    (written, skipped)
}

fn invalidate(cache: &mut CodeCache) {
    cache.blocks.clear();
}
