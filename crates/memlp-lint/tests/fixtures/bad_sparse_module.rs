use std::collections::HashMap;
use std::time::Instant;

struct SymbolicCache {
    slots: HashMap<(usize, usize), usize>,
    analyzed_at: Instant,
}

fn refactor(cache: &mut SymbolicCache, values: &[f64]) -> f64 {
    let t = Instant::now();
    let mut pivot = 0.0;
    for (&(i, j), &slot) in cache.slots.iter() {
        let v = values.get(slot).unwrap();
        if *v == 1.0 {
            pivot += v * (i + j) as f64;
        }
    }
    cache.analyzed_at = t;
    pivot
}
