//! A "serving" pastiche smuggled into a solver crate: every banned
//! surface must fire — sockets, wall clocks, and raw threading belong
//! to memlp-serve.
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::Instant;

pub fn stream_solution(addr: &str) -> std::io::Result<u64> {
    let t0 = Instant::now();
    let _conn = TcpStream::connect(addr)?;
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || tx.send(1u64).ok());
    let v: u64 = rx.recv().unwrap_or(0);
    Ok(v + t0.elapsed().as_micros() as u64)
}
