//! Fixture crate root without the forbid attribute.
pub fn ok() {}
