use std::collections::HashMap;
use std::time::Instant;

struct CodeCache {
    blocks: HashMap<u64, Vec<u64>>,
    last_write: Instant,
}

fn delta_program(cache: &mut CodeCache, key: u64, codes: Vec<u64>) -> u64 {
    let mut rng = thread_rng();
    let prev = cache.blocks.insert(key, codes.clone());
    cache.last_write = Instant::now();
    let mut skipped = 0u64;
    for (i, &code) in codes.iter().enumerate() {
        let unchanged = prev.as_ref().and_then(|p| p.get(i)) == Some(&code);
        if unchanged && rng.gen_bool(0.99) {
            skipped += 1;
        }
    }
    skipped
}

fn refresh_seed() -> u64 {
    let mut rng = rand::rngs::StdRng::from_entropy();
    rng.gen()
}
