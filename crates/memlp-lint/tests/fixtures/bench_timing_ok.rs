use std::time::Instant;

fn time_it() -> f64 {
    let t0 = Instant::now();
    let v: Vec<u64> = (0..100).collect();
    let _ = v.first().unwrap();
    t0.elapsed().as_secs_f64()
}
