//! The same surfaces are the serve daemon's job: sockets, latency
//! stamps, and lock-based sharing lint clean inside memlp-serve.
use std::net::TcpListener;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Completed-request counter with poison recovery: one panicking
/// connection must not wedge the rest of the daemon.
pub fn bump(counter: &Mutex<u64>) -> u64 {
    let mut n = counter.lock().unwrap_or_else(PoisonError::into_inner);
    *n += 1;
    *n
}

/// Binds an ephemeral port, returning the bind latency in microseconds.
pub fn bind_latency(addr: &str) -> std::io::Result<u64> {
    let t0 = Instant::now();
    let _listener = TcpListener::bind(addr)?;
    Ok(t0.elapsed().as_micros() as u64)
}
