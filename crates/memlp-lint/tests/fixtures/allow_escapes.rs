// memlp-lint: allow(panic::unwrap, reason = "fixture: justified and suppressed")
fn a(o: Option<u32>) -> u32 { o.unwrap() }

// memlp-lint: allow(panic::unwrap)
fn b(o: Option<u32>) -> u32 { o.unwrap() }

// memlp-lint: allow(nonexistent::rule, reason = "rule id typo")
fn c() {}

// memlp-lint: allow(panic::expect, reason = "nothing on the next line needs it")
fn d() {}

fn trailing(o: Option<u32>) -> u32 { o.unwrap() } // memlp-lint: allow(panic::unwrap, reason = "trailing form")
