use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FAULT_STREAM_SALT: u64 = 0x0FA0;

struct FaultMap {
    entries: BTreeMap<(usize, usize), u8>,
}

fn draw_plan(rows: usize, cols: usize, seed: u64) -> FaultMap {
    let mut rng = StdRng::seed_from_u64(seed ^ FAULT_STREAM_SALT);
    let mut entries = BTreeMap::new();
    for r in 0..rows {
        for c in 0..cols {
            if rng.gen_bool(0.01) {
                entries.insert((r, c), 1u8);
            }
        }
    }
    FaultMap { entries }
}

fn suspected_dead_rows(map: &FaultMap, rows: usize) -> Vec<usize> {
    (0..rows)
        .filter(|r| map.entries.keys().any(|(er, _)| er == r))
        .collect()
}
