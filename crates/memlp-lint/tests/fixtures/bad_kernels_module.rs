use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A tile "auto-tuner" — everything the kernel regime forbids: timing
/// feedback in the dispatch path, an unordered rate cache, a bare
/// cross-thread counter outside the pool.
struct TilePlanner {
    rates: HashMap<(usize, usize), f64>,
    dispatches: AtomicUsize,
}

fn pick_tile(planner: &mut TilePlanner, rows: usize, cols: usize) -> (usize, usize) {
    let t = Instant::now();
    planner.dispatches.fetch_add(1, Ordering::Relaxed);
    let mut best = (1, 4);
    for (&shape, &rate) in planner.rates.iter() {
        if rate == 1.0 {
            continue;
        }
        if shape.0 <= rows && shape.1 <= cols {
            best = shape;
        }
    }
    let elapsed = t.elapsed().as_secs_f64();
    let prev = planner.rates.insert(best, elapsed).unwrap();
    if prev > elapsed {
        best = (best.1, best.0);
    }
    best
}
