//! A hand-rolled Rust lexer: just enough tokenization to lint reliably.
//!
//! The rules in [`crate::rules`] match on identifier and punctuation
//! sequences, so the lexer's one job is to never confuse source code with
//! the *contents* of strings, characters, or comments. It therefore
//! understands: line and (nested) block comments, string literals with
//! escapes, byte strings, raw strings with arbitrary `#` fences, character
//! literals vs. lifetimes, and numeric literals (including exponents and
//! type suffixes). Everything else is an identifier or punctuation token.
//!
//! Comments are kept (with their starting line) because the
//! `memlp-lint: allow(...)` escape hatch lives in them.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation (`==`, `!=`, and `::` are single tokens; others one char).
    Punct,
    /// Numeric literal, suffix included (`1.5`, `1e-3`, `0x1F`, `2f64`).
    Num,
    /// String literal of any flavor (contents are not inspected by rules).
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Literal text (for `Str`, the delimiters are included).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// One comment (line or block), starting line recorded.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Lexer output: code tokens plus the comment stream.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Unterminated literals are tolerated (the token simply runs
/// to end-of-file): a linter must not panic on the code it inspects.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Lexed::default();

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Block comment, nested per Rust rules.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push(Comment {
                text: b[start..i.min(n)].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Raw / byte string prefixes: r"", r#""#, b"", br"", b''.
        if c == 'r' || c == 'b' {
            let mut j = i;
            let mut raw = false;
            if b[j] == 'b' {
                j += 1;
            }
            if j < n && b[j] == 'r' {
                raw = true;
                j += 1;
            }
            if raw {
                let mut hashes = 0usize;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == '"' {
                    let (tok, ni, nl) = lex_raw_string(&b, i, j + 1, hashes, line);
                    out.toks.push(tok);
                    i = ni;
                    line = nl;
                    continue;
                }
                // Not actually a raw string (e.g. the ident `r#type` or plain
                // `rb` variable): fall through to identifier lexing.
            } else if c == 'b' && i + 1 < n && b[i + 1] == '"' {
                let (tok, ni, nl) = lex_string(&b, i, i + 2, line);
                out.toks.push(tok);
                i = ni;
                line = nl;
                continue;
            } else if c == 'b' && i + 1 < n && b[i + 1] == '\'' {
                let (tok, ni) = lex_char(&b, i, i + 2, line);
                out.toks.push(tok);
                i = ni;
                continue;
            }
        }
        if c == '"' {
            let (tok, ni, nl) = lex_string(&b, i, i + 1, line);
            out.toks.push(tok);
            i = ni;
            line = nl;
            continue;
        }
        if c == '\'' {
            // Escaped char literal: '\n', '\'', '\u{..}'.
            if i + 1 < n && b[i + 1] == '\\' {
                let (tok, ni) = lex_char(&b, i, i + 1, line);
                out.toks.push(tok);
                i = ni;
                continue;
            }
            // Plain char literal 'x' (any single char followed by ').
            if i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\'' {
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: b[i..i + 3].iter().collect(),
                    line,
                });
                i += 3;
                continue;
            }
            // Otherwise a lifetime: 'ident.
            let start = i;
            i += 1;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Lifetime,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let (tok, ni) = lex_number(&b, i, line);
            out.toks.push(tok);
            i = ni;
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Punctuation: keep the three sequences rules match on fused.
        let two: Option<&str> = if i + 1 < n {
            match (c, b[i + 1]) {
                ('=', '=') => Some("=="),
                ('!', '=') => Some("!="),
                (':', ':') => Some("::"),
                _ => None,
            }
        } else {
            None
        };
        if let Some(t) = two {
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: t.to_string(),
                line,
            });
            i += 2;
        } else {
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    out
}

/// Lexes a normal (escaped) string starting at quote position `j`
/// (`start` is where the token text begins, e.g. a `b` prefix).
fn lex_string(b: &[char], start: usize, mut j: usize, mut line: u32) -> (Tok, usize, u32) {
    let tok_line = line;
    let n = b.len();
    while j < n {
        match b[j] {
            '\\' => j += 2,
            '"' => {
                j += 1;
                break;
            }
            '\n' => {
                line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    let j = j.min(n);
    (
        Tok {
            kind: TokKind::Str,
            text: b[start..j].iter().collect(),
            line: tok_line,
        },
        j,
        line,
    )
}

/// Lexes a raw string whose opening `"` sits just before `j`; terminates at
/// `"` followed by `hashes` `#` characters.
fn lex_raw_string(
    b: &[char],
    start: usize,
    mut j: usize,
    hashes: usize,
    mut line: u32,
) -> (Tok, usize, u32) {
    let tok_line = line;
    let n = b.len();
    while j < n {
        if b[j] == '\n' {
            line += 1;
            j += 1;
            continue;
        }
        if b[j] == '"' {
            let mut k = 0usize;
            while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                j += 1 + hashes;
                break;
            }
        }
        j += 1;
    }
    let j = j.min(n);
    (
        Tok {
            kind: TokKind::Str,
            text: b[start..j].iter().collect(),
            line: tok_line,
        },
        j,
        line,
    )
}

/// Lexes a char/byte literal whose body starts at `j` (after the quote and
/// any `b` prefix); consumes through the closing quote.
fn lex_char(b: &[char], start: usize, mut j: usize, line: u32) -> (Tok, usize) {
    let n = b.len();
    while j < n {
        match b[j] {
            '\\' => j += 2,
            '\'' => {
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    let j = j.min(n);
    (
        Tok {
            kind: TokKind::Char,
            text: b[start..j].iter().collect(),
            line,
        },
        j,
    )
}

/// Lexes a numeric literal starting at `i` (a digit), including radix
/// prefixes, decimal points, exponents, and type suffixes.
fn lex_number(b: &[char], i: usize, line: u32) -> (Tok, usize) {
    let n = b.len();
    let start = i;
    let mut j = i;
    let radix_prefixed = b[j] == '0'
        && j + 1 < n
        && matches!(b[j + 1], 'x' | 'X' | 'o' | 'O' | 'b' | 'B')
        && j + 2 < n
        && (b[j + 2].is_ascii_alphanumeric() || b[j + 2] == '_');
    if radix_prefixed {
        j += 2;
        while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
            j += 1;
        }
    } else {
        while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
            j += 1;
        }
        // Fractional part only when a digit follows the dot, so `1.max(2)`
        // and tuple access stay punctuation.
        if j + 1 < n && b[j] == '.' && b[j + 1].is_ascii_digit() {
            j += 1;
            while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                j += 1;
            }
        } else if j < n
            && b[j] == '.'
            && (j + 1 >= n || !is_ident_char(b, j + 1) && b[j + 1] != '.')
        {
            // Trailing-dot float like `1.`.
            j += 1;
        }
        // Exponent.
        if j < n && matches!(b[j], 'e' | 'E') {
            let mut k = j + 1;
            if k < n && matches!(b[k], '+' | '-') {
                k += 1;
            }
            if k < n && b[k].is_ascii_digit() {
                j = k;
                while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                    j += 1;
                }
            }
        }
        // Type suffix (f64, u32, …).
        while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
            j += 1;
        }
    }
    (
        Tok {
            kind: TokKind::Num,
            text: b[start..j].iter().collect(),
            line,
        },
        j,
    )
}

fn is_ident_char(b: &[char], i: usize) -> bool {
    b[i].is_alphanumeric() || b[i] == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let s = "Instant::now() .unwrap()"; // thread_rng in comment
            /* HashMap in block
               comment */
            let r = r#"Mutex "quoted" .expect("x")"#;
            let c = 'u'; let esc = '\n';
        "##;
        let ids = idents(src);
        assert!(ids.iter().all(|t| t != "Instant"
            && t != "unwrap"
            && t != "thread_rng"
            && t != "HashMap"
            && t != "Mutex"
            && t != "expect"));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let a = 1;\n// memlp-lint: allow(x, reason = \"y\")\nlet b = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("memlp-lint"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'static str { x }");
        let lts: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lts, vec!["'a", "'a", "'static"]);
    }

    #[test]
    fn numbers_keep_exponents_and_suffixes_whole() {
        let nums: Vec<_> = lex("let x = 1e-3 + 2.5f64 - 0x1F + 7;")
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text)
            .collect();
        assert_eq!(nums, vec!["1e-3", "2.5f64", "0x1F", "7"]);
    }

    #[test]
    fn fused_punctuation() {
        let puncts: Vec<_> = lex("a == b != c::d")
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::"]);
    }

    #[test]
    fn nested_block_comments_and_line_tracking() {
        let src = "/* a /* b */ c */\nlet x = 1;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.toks[0].text, "let");
        assert_eq!(lexed.toks[0].line, 2);
    }

    #[test]
    fn raw_string_fences_respected() {
        // The inner `"#` must not close an `r##"…"##` string.
        let src = "let s = r##\"has \"# inside\"##; let t = 1;";
        let lexed = lex(src);
        let strs: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("inside"));
        assert!(lexed.toks.iter().any(|t| t.text == "t"));
    }
}
