//! SARIF 2.1.0 emitter (`--format sarif`).
//!
//! GitHub's code-scanning upload understands this shape and annotates
//! findings inline on PRs. Each finding becomes one `result`; cross-file
//! findings attach their call-chain witness as `relatedLocations`, so the
//! annotation links every hop from the public entry point to the seed.
//! Output is deterministic: rules appear in registry order, results in
//! report order, and object keys are `BTreeMap`-sorted.

use std::collections::BTreeMap;

use crate::cache::Json;
use crate::report::Report;
use crate::rules::{Severity, RULES};

fn s(text: &str) -> Json {
    Json::Str(text.to_string())
}

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    let mut m = BTreeMap::new();
    for (k, v) in pairs {
        m.insert(k.to_string(), v);
    }
    Json::Obj(m)
}

fn message(text: &str) -> Json {
    obj(vec![("text", s(text))])
}

fn location(uri: &str, line: u32, msg: Option<&str>) -> Json {
    let mut pairs = vec![(
        "physicalLocation",
        obj(vec![
            ("artifactLocation", obj(vec![("uri", s(uri))])),
            (
                "region",
                obj(vec![("startLine", Json::Num(i64::from(line.max(1))))]),
            ),
        ]),
    )];
    if let Some(m) = msg {
        pairs.push(("message", message(m)));
    }
    obj(pairs)
}

fn level_of(sev: Severity) -> &'static str {
    match sev {
        Severity::Deny => "error",
        Severity::Warn => "warning",
    }
}

/// Renders a report as a SARIF 2.1.0 document.
pub fn to_sarif(report: &Report) -> String {
    let rules: Vec<Json> = RULES
        .iter()
        .map(|(id, sev, summary)| {
            obj(vec![
                ("id", s(id)),
                ("shortDescription", message(summary)),
                (
                    "defaultConfiguration",
                    obj(vec![("level", s(level_of(*sev)))]),
                ),
            ])
        })
        .collect();
    let rule_index: BTreeMap<&str, usize> = RULES
        .iter()
        .enumerate()
        .map(|(i, (id, ..))| (*id, i))
        .collect();

    let results: Vec<Json> = report
        .findings
        .iter()
        .map(|f| {
            let mut pairs = vec![
                ("ruleId", s(f.rule)),
                (
                    "ruleIndex",
                    Json::Num(rule_index.get(f.rule).map_or(-1, |&i| i as i64)),
                ),
                ("level", s(level_of(f.severity))),
                ("message", message(&f.message)),
                (
                    "locations",
                    Json::Arr(vec![location(&f.file, f.line, None)]),
                ),
            ];
            if !f.witness.is_empty() {
                pairs.push((
                    "relatedLocations",
                    Json::Arr(
                        f.witness
                            .iter()
                            .map(|w| location(&w.file, w.line, Some(&w.label)))
                            .collect(),
                    ),
                ));
            }
            obj(pairs)
        })
        .collect();

    let doc = obj(vec![
        (
            "$schema",
            s("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        ("version", s("2.1.0")),
        (
            "runs",
            Json::Arr(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", s("memlp-lint")),
                            (
                                "informationUri",
                                s("https://github.com/memlp/memlp#static-guarantees"),
                            ),
                            ("rules", Json::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results", Json::Arr(results)),
            ])]),
        ),
    ]);
    let mut out = doc.render();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_str;

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let report = lint_str(
            "crates/memlp-core/src/x.rs",
            "fn f() { Some(1).unwrap(); }\n",
        );
        let text = to_sarif(&report);
        assert!(text.contains("\"version\":\"2.1.0\""));
        assert!(text.contains("\"ruleId\":\"panic::unwrap\""));
        assert!(text.contains("\"level\":\"error\""));
        assert!(text.contains("\"startLine\":1"));
        // Parses back with the cache's JSON reader.
        assert!(crate::cache::parse_json(text.trim()).is_some());
    }

    #[test]
    fn clean_input_yields_empty_results() {
        let report = lint_str("crates/memlp-core/src/x.rs", "pub fn f() -> u8 { 1 }\n");
        let text = to_sarif(&report);
        assert!(text.contains("\"results\":[]"));
    }
}
