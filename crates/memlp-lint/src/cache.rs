//! Content-hash incremental cache (`.memlp-lint-cache.json`).
//!
//! Only pass 1 is cached: per-file lexing, token scanning, and IR parsing
//! are pure in `(path, content)`, so a file whose FNV-1a hash is unchanged
//! reloads its [`FileAnalysis`] instead of re-analyzing. Pass 2 — the call
//! graph and fixed points — always re-runs over all files; it is cheap
//! (the IR is tiny) and re-running it is what makes the cache sound: an
//! edit to a *callee* re-derives every caller finding without any
//! dependency bookkeeping, so there is no invalidation logic to get wrong.
//!
//! Cached directives carry **pass-1** usage only (entries are written
//! before the cross pass consumes anything), so `lint::unused-allow`
//! stays correct when a cross finding disappears between runs.
//!
//! The cache is keyed by a registry fingerprint: any change to the rule
//! table or the serialization shape (bump [`FORMAT_VERSION`]) discards
//! every entry at once. A missing or corrupt cache file is treated as
//! empty — the cache can only ever skip work, never change output.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::parser::{Bind, CallSite, FileIr, FnIr, Rhs, Seed, SeedKind, Sink, SinkKind, UseDecl};
use crate::rules::{severity_of, Directive, FileAnalysis, FileCtx, Finding, RULES};

/// Bump when the serialized shape of [`FileAnalysis`] changes.
const FORMAT_VERSION: u32 = 1;

/// Default cache file name, resolved against the workspace root.
pub const CACHE_FILE: &str = ".memlp-lint-cache.json";

/// FNV-1a 64-bit hash, rendered as fixed-width hex.
pub fn content_hash(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Fingerprint of the rule registry plus the serialization version: the
/// cache self-invalidates whenever either changes.
pub fn registry_fingerprint() -> String {
    let mut acc = String::new();
    let _ = write!(acc, "v{FORMAT_VERSION};");
    for (id, sev, summary) in RULES {
        let _ = write!(acc, "{id}|{}|{summary};", sev.label());
    }
    content_hash(acc.as_bytes())
}

/// One cached file: content hash plus the serialized pass-1 analysis.
struct Entry {
    hash: String,
    analysis: Json,
}

/// The in-memory cache, loaded from and stored to one JSON file.
#[derive(Default)]
pub struct Cache {
    entries: BTreeMap<String, Entry>,
    /// Hits/misses for `--quiet`-less diagnostics and tests.
    pub hits: usize,
    pub misses: usize,
    /// Set when entries changed since load — a fully-warm run skips the
    /// rewrite entirely.
    dirty: bool,
}

impl Cache {
    /// Loads the cache from `path`. Missing, unreadable, corrupt, or
    /// fingerprint-mismatched files all yield an empty cache.
    pub fn load(path: &Path) -> Cache {
        let mut cache = Cache::default();
        let Ok(text) = std::fs::read_to_string(path) else {
            return cache;
        };
        let Some(root) = parse_json(&text) else {
            return cache;
        };
        let Some(obj) = root.as_obj() else {
            return cache;
        };
        if obj.get("fingerprint").and_then(Json::as_str) != Some(&registry_fingerprint()) {
            return cache;
        }
        let Some(files) = obj.get("files").and_then(Json::as_obj) else {
            return cache;
        };
        for (rel, entry) in files {
            let Some(eo) = entry.as_obj() else { continue };
            let (Some(hash), Some(analysis)) =
                (eo.get("hash").and_then(Json::as_str), eo.get("analysis"))
            else {
                continue;
            };
            cache.entries.insert(
                rel.clone(),
                Entry {
                    hash: hash.to_string(),
                    analysis: analysis.clone(),
                },
            );
        }
        cache
    }

    /// Returns the cached analysis for `(rel, src)` when the content hash
    /// matches; counts a hit/miss either way.
    pub fn get(&mut self, rel: &str, src: &str) -> Option<FileAnalysis> {
        let hash = content_hash(src.as_bytes());
        let hit = self
            .entries
            .get(rel)
            .filter(|e| e.hash == hash)
            .and_then(|e| analysis_from_json(rel, src, &e.analysis));
        if hit.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Records `analysis` (which must hold pass-1 directive usage only —
    /// call this before the cross pass mutates anything).
    pub fn put(&mut self, analysis: &FileAnalysis, src: &str) {
        self.dirty = true;
        self.entries.insert(
            analysis.path.clone(),
            Entry {
                hash: content_hash(src.as_bytes()),
                analysis: analysis_to_json(analysis),
            },
        );
    }

    /// Drops entries for files no longer in the scan set.
    pub fn retain_files(&mut self, live: &[String]) {
        let before = self.entries.len();
        self.entries.retain(|k, _| live.binary_search(k).is_ok());
        if self.entries.len() != before {
            self.dirty = true;
        }
    }

    /// True when [`Cache::store`] would write something new.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Serializes and writes the cache file.
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O failure.
    pub fn store(&self, path: &Path) -> Result<(), String> {
        let mut files = BTreeMap::new();
        for (rel, e) in &self.entries {
            let mut eo = BTreeMap::new();
            eo.insert("hash".to_string(), Json::Str(e.hash.clone()));
            eo.insert("analysis".to_string(), e.analysis.clone());
            files.insert(rel.clone(), Json::Obj(eo));
        }
        let mut root = BTreeMap::new();
        root.insert("fingerprint".to_string(), Json::Str(registry_fingerprint()));
        root.insert("files".to_string(), Json::Obj(files));
        std::fs::write(path, Json::Obj(root).render())
            .map_err(|e| format!("writing {}: {e}", path.display()))
    }
}

// ---------------------------------------------------------------------------
// FileAnalysis <-> Json
// ---------------------------------------------------------------------------

fn jstr(s: &str) -> Json {
    Json::Str(s.to_string())
}

fn jnum(n: u32) -> Json {
    Json::Num(i64::from(n))
}

fn jstrs(v: &[String]) -> Json {
    Json::Arr(v.iter().map(|s| jstr(s)).collect())
}

fn call_to_json(c: &CallSite) -> Json {
    let mut o = BTreeMap::new();
    o.insert("path".into(), jstrs(&c.path));
    o.insert("method".into(), Json::Bool(c.method));
    o.insert("line".into(), jnum(c.line));
    Json::Obj(o)
}

fn rhs_to_json(r: &Rhs) -> Json {
    let mut o = BTreeMap::new();
    o.insert(
        "calls".into(),
        Json::Arr(r.calls.iter().map(call_to_json).collect()),
    );
    o.insert("idents".into(), jstrs(&r.idents));
    Json::Obj(o)
}

fn fn_to_json(f: &FnIr) -> Json {
    let mut o = BTreeMap::new();
    o.insert("name".into(), jstr(&f.name));
    o.insert("owner".into(), jstr(&f.owner));
    o.insert("module".into(), jstrs(&f.module));
    o.insert("line".into(), jnum(f.line));
    o.insert("is_pub".into(), Json::Bool(f.is_pub));
    o.insert("in_test".into(), Json::Bool(f.in_test));
    o.insert("analog_source".into(), Json::Bool(f.analog_source));
    o.insert(
        "seeds".into(),
        Json::Arr(
            f.seeds
                .iter()
                .map(|s| {
                    let mut so = BTreeMap::new();
                    so.insert(
                        "kind".into(),
                        jstr(match s.kind {
                            SeedKind::Panic => "panic",
                            SeedKind::Entropy => "entropy",
                        }),
                    );
                    so.insert("what".into(), jstr(&s.what));
                    so.insert("line".into(), jnum(s.line));
                    Json::Obj(so)
                })
                .collect(),
        ),
    );
    o.insert(
        "calls".into(),
        Json::Arr(f.calls.iter().map(call_to_json).collect()),
    );
    o.insert(
        "binds".into(),
        Json::Arr(
            f.binds
                .iter()
                .map(|b| {
                    let mut bo = BTreeMap::new();
                    bo.insert("vars".into(), jstrs(&b.vars));
                    bo.insert("rhs".into(), rhs_to_json(&b.rhs));
                    bo.insert("line".into(), jnum(b.line));
                    Json::Obj(bo)
                })
                .collect(),
        ),
    );
    o.insert(
        "sinks".into(),
        Json::Arr(
            f.sinks
                .iter()
                .map(|s| {
                    let mut so = BTreeMap::new();
                    so.insert(
                        "kind".into(),
                        jstr(match s.kind {
                            SinkKind::StrictEq => "eq",
                            SinkKind::Index => "index",
                        }),
                    );
                    so.insert("idents".into(), jstrs(&s.idents));
                    so.insert("line".into(), jnum(s.line));
                    so.insert("zero_cmp".into(), Json::Bool(s.zero_cmp));
                    so.insert("guarded".into(), Json::Bool(s.guarded));
                    Json::Obj(so)
                })
                .collect(),
        ),
    );
    o.insert(
        "rets".into(),
        Json::Arr(f.rets.iter().map(rhs_to_json).collect()),
    );
    Json::Obj(o)
}

fn analysis_to_json(a: &FileAnalysis) -> Json {
    let mut o = BTreeMap::new();
    o.insert(
        "findings".into(),
        Json::Arr(
            a.findings
                .iter()
                .map(|f| {
                    let mut fo = BTreeMap::new();
                    fo.insert("line".into(), jnum(f.line));
                    fo.insert("rule".into(), jstr(f.rule));
                    fo.insert("message".into(), jstr(&f.message));
                    Json::Obj(fo)
                })
                .collect(),
        ),
    );
    o.insert(
        "directives".into(),
        Json::Arr(
            a.directives
                .iter()
                .map(|d| {
                    let mut dobj = BTreeMap::new();
                    dobj.insert("rule".into(), jstr(&d.rule));
                    dobj.insert("line".into(), jnum(d.line));
                    dobj.insert("used".into(), Json::Bool(d.used));
                    dobj.insert("group".into(), Json::Num(d.group as i64));
                    Json::Obj(dobj)
                })
                .collect(),
        ),
    );
    let mut ir = BTreeMap::new();
    ir.insert("module".into(), jstrs(&a.ir.module));
    ir.insert(
        "uses".into(),
        Json::Arr(
            a.ir.uses
                .iter()
                .map(|u| {
                    let mut uo = BTreeMap::new();
                    uo.insert("alias".into(), jstr(&u.alias));
                    uo.insert("path".into(), jstrs(&u.path));
                    Json::Obj(uo)
                })
                .collect(),
        ),
    );
    ir.insert(
        "fns".into(),
        Json::Arr(a.ir.fns.iter().map(fn_to_json).collect()),
    );
    o.insert("ir".into(), Json::Obj(ir));
    Json::Obj(o)
}

/// Looks up the `'static` rule id for a cached rule name.
fn rule_id(name: &str) -> Option<&'static str> {
    RULES
        .iter()
        .find(|(id, ..)| *id == name)
        .map(|(id, ..)| *id)
}

fn strs_from(j: Option<&Json>) -> Option<Vec<String>> {
    let arr = j?.as_arr()?;
    let mut out = Vec::with_capacity(arr.len());
    for v in arr {
        out.push(v.as_str()?.to_string());
    }
    Some(out)
}

fn u32_from(j: Option<&Json>) -> Option<u32> {
    u32::try_from(j?.as_num()?).ok()
}

fn bool_from(j: Option<&Json>) -> Option<bool> {
    j?.as_bool()
}

fn call_from(j: &Json) -> Option<CallSite> {
    let o = j.as_obj()?;
    Some(CallSite {
        path: strs_from(o.get("path"))?,
        method: bool_from(o.get("method"))?,
        line: u32_from(o.get("line"))?,
    })
}

fn rhs_from(j: &Json) -> Option<Rhs> {
    let o = j.as_obj()?;
    let mut calls = Vec::new();
    for c in o.get("calls")?.as_arr()? {
        calls.push(call_from(c)?);
    }
    Some(Rhs {
        calls,
        idents: strs_from(o.get("idents"))?,
    })
}

fn fn_from(j: &Json) -> Option<FnIr> {
    let o = j.as_obj()?;
    let mut seeds = Vec::new();
    for s in o.get("seeds")?.as_arr()? {
        let so = s.as_obj()?;
        seeds.push(Seed {
            kind: match so.get("kind")?.as_str()? {
                "panic" => SeedKind::Panic,
                "entropy" => SeedKind::Entropy,
                _ => return None,
            },
            what: so.get("what")?.as_str()?.to_string(),
            line: u32_from(so.get("line"))?,
        });
    }
    let mut calls = Vec::new();
    for c in o.get("calls")?.as_arr()? {
        calls.push(call_from(c)?);
    }
    let mut binds = Vec::new();
    for b in o.get("binds")?.as_arr()? {
        let bo = b.as_obj()?;
        binds.push(Bind {
            vars: strs_from(bo.get("vars"))?,
            rhs: rhs_from(bo.get("rhs")?)?,
            line: u32_from(bo.get("line"))?,
        });
    }
    let mut sinks = Vec::new();
    for s in o.get("sinks")?.as_arr()? {
        let so = s.as_obj()?;
        sinks.push(Sink {
            kind: match so.get("kind")?.as_str()? {
                "eq" => SinkKind::StrictEq,
                "index" => SinkKind::Index,
                _ => return None,
            },
            idents: strs_from(so.get("idents"))?,
            line: u32_from(so.get("line"))?,
            zero_cmp: bool_from(so.get("zero_cmp"))?,
            guarded: bool_from(so.get("guarded"))?,
        });
    }
    let mut rets = Vec::new();
    for r in o.get("rets")?.as_arr()? {
        rets.push(rhs_from(r)?);
    }
    Some(FnIr {
        name: o.get("name")?.as_str()?.to_string(),
        owner: o.get("owner")?.as_str()?.to_string(),
        module: strs_from(o.get("module"))?,
        line: u32_from(o.get("line"))?,
        is_pub: bool_from(o.get("is_pub"))?,
        in_test: bool_from(o.get("in_test"))?,
        analog_source: bool_from(o.get("analog_source"))?,
        seeds,
        calls,
        binds,
        sinks,
        rets,
    })
}

/// Rebuilds a [`FileAnalysis`] from its cached JSON. `src` supplies the
/// snippet lines (the file content is already in hand for hashing, so
/// snippets are re-derived instead of stored). Any shape mismatch yields
/// `None` — treated as a cache miss.
fn analysis_from_json(rel: &str, src: &str, j: &Json) -> Option<FileAnalysis> {
    let o = j.as_obj()?;
    let snippets: Vec<String> = src.lines().map(|l| l.trim().to_string()).collect();
    let snippet =
        |line: u32| -> String { snippets.get(line as usize - 1).cloned().unwrap_or_default() };
    let mut findings = Vec::new();
    for f in o.get("findings")?.as_arr()? {
        let fo = f.as_obj()?;
        let rule = rule_id(fo.get("rule")?.as_str()?)?;
        let line = u32_from(fo.get("line"))?;
        findings.push(Finding {
            file: rel.to_string(),
            line,
            rule,
            severity: severity_of(rule),
            message: fo.get("message")?.as_str()?.to_string(),
            snippet: snippet(line),
            witness: Vec::new(),
        });
    }
    let mut directives = Vec::new();
    for d in o.get("directives")?.as_arr()? {
        let dobj = d.as_obj()?;
        directives.push(Directive {
            rule: dobj.get("rule")?.as_str()?.to_string(),
            line: u32_from(dobj.get("line"))?,
            used: bool_from(dobj.get("used"))?,
            group: usize::try_from(dobj.get("group")?.as_num()?).ok()?,
        });
    }
    let iro = o.get("ir")?.as_obj()?;
    let mut uses = Vec::new();
    for u in iro.get("uses")?.as_arr()? {
        let uo = u.as_obj()?;
        uses.push(UseDecl {
            alias: uo.get("alias")?.as_str()?.to_string(),
            path: strs_from(uo.get("path"))?,
        });
    }
    let mut fns = Vec::new();
    for f in iro.get("fns")?.as_arr()? {
        fns.push(fn_from(f)?);
    }
    Some(FileAnalysis {
        path: rel.to_string(),
        ctx: FileCtx::classify(rel),
        findings,
        directives,
        ir: FileIr {
            path: rel.to_string(),
            module: strs_from(iro.get("module"))?,
            uses,
            fns,
        },
        snippets,
    })
}

// ---------------------------------------------------------------------------
// Minimal JSON value + parser (the analyzer is dependency-free by design)
// ---------------------------------------------------------------------------

/// JSON value. Numbers are integers — the cache never stores floats.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(i64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compact single-line rendering (deterministic: object keys are
    /// `BTreeMap`-ordered).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(v) => {
                out.push('[');
                for (i, item) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses one JSON document; `None` on any syntax error.
pub fn parse_json(text: &str) -> Option<Json> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Some(v)
    } else {
        None
    }
}

const MAX_DEPTH: usize = 64;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Option<Json> {
    if depth > MAX_DEPTH {
        return None;
    }
    skip_ws(b, pos);
    match b.get(*pos)? {
        b'{' => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos)? == &b'}' {
                *pos += 1;
                return Some(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos)? != &b':' {
                    return None;
                }
                *pos += 1;
                let val = parse_value(b, pos, depth + 1)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Json::Obj(map));
                    }
                    _ => return None,
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos)? == &b']' {
                *pos += 1;
                return Some(Json::Arr(arr));
            }
            loop {
                let val = parse_value(b, pos, depth + 1)?;
                arr.push(val);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Json::Arr(arr));
                    }
                    _ => return None,
                }
            }
        }
        b'"' => Some(Json::Str(parse_string(b, pos)?)),
        b't' => {
            if b.len() >= *pos + 4 && &b[*pos..*pos + 4] == b"true" {
                *pos += 4;
                Some(Json::Bool(true))
            } else {
                None
            }
        }
        b'f' => {
            if b.len() >= *pos + 5 && &b[*pos..*pos + 5] == b"false" {
                *pos += 5;
                Some(Json::Bool(false))
            } else {
                None
            }
        }
        b'n' => {
            if b.len() >= *pos + 4 && &b[*pos..*pos + 4] == b"null" {
                *pos += 4;
                Some(Json::Null)
            } else {
                None
            }
        }
        _ => {
            let start = *pos;
            if b.get(*pos) == Some(&b'-') {
                *pos += 1;
            }
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            if *pos == start {
                return None;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<i64>().ok())
                .map(Json::Num)
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    if b.get(*pos)? != &b'"' {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        if b.len() < *pos + 5 {
                            return None;
                        }
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5]).ok()?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (the input came from a &str, so
                // boundaries are valid; a partial tail still fails cleanly).
                let start = *pos;
                let len = utf8_len(b[start]);
                let end = start + len;
                if end > b.len() {
                    return None;
                }
                out.push_str(std::str::from_utf8(&b[start..end]).ok()?);
                *pos = end;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::analyze_file;

    #[test]
    fn json_round_trips() {
        let mut o = BTreeMap::new();
        o.insert("a".to_string(), Json::Num(-3));
        o.insert(
            "b".to_string(),
            Json::Arr(vec![
                Json::Str("x\"y\n".into()),
                Json::Bool(true),
                Json::Null,
            ]),
        );
        let v = Json::Obj(o);
        let text = v.render();
        assert_eq!(parse_json(&text), Some(v));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_json("{"), None);
        assert_eq!(parse_json("[1,]"), None);
        assert_eq!(parse_json("tru"), None);
        assert_eq!(parse_json("{} extra"), None);
    }

    #[test]
    fn analysis_round_trips_through_cache_json() {
        let src = "/// memlp-lint: analog_source\n\
                   pub fn read() -> f64 { 0.0 }\n\
                   // memlp-lint: allow(panic::unwrap, reason = \"test data\")\n\
                   fn f(v: &[f64]) -> f64 { let x = read(); v[0] + x }\n";
        let a = analyze_file("crates/memlp-core/src/x.rs", src);
        let j = analysis_to_json(&a);
        let text = j.render();
        let reparsed = parse_json(&text).unwrap_or(Json::Null);
        let back = analysis_from_json("crates/memlp-core/src/x.rs", src, &reparsed);
        let Some(back) = back else {
            unreachable!("round trip produced None")
        };
        assert_eq!(back.ir.fns.len(), a.ir.fns.len());
        assert_eq!(back.ir.fns[0].analog_source, a.ir.fns[0].analog_source);
        assert_eq!(back.directives.len(), a.directives.len());
        assert_eq!(back.findings.len(), a.findings.len());
        assert_eq!(back.snippets, a.snippets);
    }

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        assert_eq!(content_hash(b""), "cbf29ce484222325");
        assert_ne!(content_hash(b"a"), content_hash(b"b"));
        assert_eq!(content_hash(b"abc"), content_hash(b"abc"));
    }

    #[test]
    fn stale_hash_misses() {
        let src_v1 = "pub fn f() {}\n";
        let src_v2 = "pub fn f() { let _ = 1; }\n";
        let a = analyze_file("crates/memlp-core/src/x.rs", src_v1);
        let mut cache = Cache::default();
        cache.put(&a, src_v1);
        let hit = cache.get("crates/memlp-core/src/x.rs", src_v1);
        assert!(hit.is_some());
        let miss = cache.get("crates/memlp-core/src/x.rs", src_v2);
        assert!(miss.is_none());
        assert_eq!((cache.hits, cache.misses), (1, 1));
    }
}
