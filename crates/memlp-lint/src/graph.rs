//! Pass 2 of the cross-file analyzer: the workspace call graph and the
//! fixed-point rule families.
//!
//! Input is the per-file IR from [`crate::parser`] (via
//! [`crate::rules::FileAnalysis`]). This module:
//!
//! 1. builds a function table keyed by absolute path
//!    (`crate::module::Owner::name`) plus a method-name index,
//! 2. resolves call sites — `use` aliases, `crate::`/`self::`/`super::`
//!    prefixes, module-relative and `Type::method` paths; bare method
//!    calls resolve by name only when the name is workspace-unique (or,
//!    for fact propagation, when every candidate agrees on the fact),
//! 3. runs fixed-point propagation for three fact lattices — *may-panic*,
//!    *touches-entropy*, *returns-analog* — and a per-function forward
//!    taint pass over the recorded bindings, and
//! 4. emits the `reach::panic`, `reach::nondeterminism`, and
//!    `taint::analog-exact` findings, each carrying a full call-chain
//!    witness from its anchor to the seed.
//!
//! Everything is deterministic: functions are processed in (file, line)
//! order, worklists are sorted, and witnesses pick the lexicographically
//! first discovery path.

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::{CallSite, SeedKind, SinkKind};
use crate::rules::{
    severity_of, Directive, FileAnalysis, Finding, WitnessStep, DETERMINISM_CRATES,
    PANIC_EXEMPT_CRATES,
};

/// Global function id: (file index, fn index within the file).
type FnId = (usize, usize);

/// Resolution result for one call site.
#[derive(Debug, Clone)]
enum Resolved {
    /// Exactly one workspace function.
    Unique(FnId),
    /// A same-named method set (used with unanimity for fact propagation).
    Candidates(Vec<FnId>),
    /// Not a workspace function (std, vendored, closure, …).
    External,
}

/// The assembled graph and resolution context.
struct Graph<'a> {
    files: &'a [FileAnalysis],
    /// Absolute path string → fn id (e.g. `memlp_core::newton::solve`,
    /// `memlp_linalg::lu::LuFactors::factor`).
    by_path: BTreeMap<String, FnId>,
    /// Method name → every impl fn with that name.
    by_method: BTreeMap<String, Vec<FnId>>,
    /// Free-fn name → every free fn with that name (for unique-name
    /// fallback of single-segment calls that imports don't explain).
    by_free: BTreeMap<String, Vec<FnId>>,
    /// Owner type name → ids, for `Type::method` paths found anywhere.
    by_owner_method: BTreeMap<(String, String), Vec<FnId>>,
    /// Resolved call edges per fn, in source order: (callee, line).
    edges: BTreeMap<FnId, Vec<(Resolved, u32, Vec<String>)>>,
}

impl<'a> Graph<'a> {
    fn build(files: &'a [FileAnalysis]) -> Graph<'a> {
        let mut by_path: BTreeMap<String, FnId> = BTreeMap::new();
        let mut by_method: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut by_free: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut by_owner_method: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        for (fi, fa) in files.iter().enumerate() {
            for (gi, f) in fa.ir.fns.iter().enumerate() {
                let id = (fi, gi);
                let mut key = f.module.join("::");
                if !f.owner.is_empty() {
                    key.push_str("::");
                    key.push_str(&f.owner);
                    by_owner_method
                        .entry((f.owner.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                    by_method.entry(f.name.clone()).or_default().push(id);
                } else {
                    by_free.entry(f.name.clone()).or_default().push(id);
                }
                key.push_str("::");
                key.push_str(&f.name);
                // First definition wins on duplicates (deterministic: files
                // and fns are walked in sorted order).
                by_path.entry(key).or_insert(id);
            }
        }
        let mut g = Graph {
            files,
            by_path,
            by_method,
            by_free,
            by_owner_method,
            edges: BTreeMap::new(),
        };
        for (fi, fa) in files.iter().enumerate() {
            for (gi, f) in fa.ir.fns.iter().enumerate() {
                let id = (fi, gi);
                let mut out = Vec::new();
                for call in &f.calls {
                    out.push((g.resolve(call, id), call.line, call.path.clone()));
                }
                g.edges.insert(id, out);
            }
        }
        g
    }

    fn fn_ir(&self, id: FnId) -> &crate::parser::FnIr {
        &self.files[id.0].ir.fns[id.1]
    }

    fn file(&self, id: FnId) -> &FileAnalysis {
        &self.files[id.0]
    }

    /// Resolves one call site in the context of the calling function.
    fn resolve(&self, call: &CallSite, caller: FnId) -> Resolved {
        let fa = &self.files[caller.0];
        let f = &fa.ir.fns[caller.1];
        if call.method {
            let name = &call.path[0];
            return match self.by_method.get(name) {
                Some(ids) if ids.len() == 1 => Resolved::Unique(ids[0]),
                Some(ids) => Resolved::Candidates(ids.clone()),
                None => Resolved::External,
            };
        }
        let crate_root = &f.module[..1];
        let path = crate::parser::normalize_path(&call.path, crate_root, &f.module);
        if path.is_empty() {
            return Resolved::External;
        }
        // Alias substitution on the head segment.
        let mut candidates: Vec<Vec<String>> = Vec::new();
        if let Some(u) = fa.ir.uses.iter().find(|u| u.alias == path[0]) {
            let mut p = u.path.clone();
            p.extend(path[1..].iter().cloned());
            candidates.push(p);
        }
        // As written (absolute path starting at some crate ident).
        candidates.push(path.clone());
        // Relative to the calling module and to the crate root.
        for base in [&f.module[..], crate_root] {
            let mut p: Vec<String> = base.to_vec();
            p.extend(path.iter().cloned());
            candidates.push(p);
        }
        // Glob imports: `use x::*;` may bring the head into scope.
        for u in fa.ir.uses.iter().filter(|u| u.alias == "*") {
            let mut p = u.path.clone();
            p.extend(path.iter().cloned());
            candidates.push(p);
        }
        for cand in &candidates {
            if let Some(&id) = self.by_path.get(&cand.join("::")) {
                return Resolved::Unique(id);
            }
        }
        // `Type::method` with the type owner defined elsewhere: unique
        // (owner, method) pairs resolve workspace-wide.
        if path.len() >= 2 {
            let owner = &path[path.len() - 2];
            let name = &path[path.len() - 1];
            if let Some(ids) = self.by_owner_method.get(&(owner.clone(), name.clone())) {
                if ids.len() == 1 {
                    return Resolved::Unique(ids[0]);
                }
                return Resolved::Candidates(ids.clone());
            }
        }
        // Unique free-fn name imported via a path the parser didn't track.
        if path.len() == 1 {
            if let Some(ids) = self.by_free.get(&path[0]) {
                if ids.len() == 1 {
                    return Resolved::Unique(ids[0]);
                }
            }
        }
        Resolved::External
    }
}

/// Marks directives used when they cover a cross-file finding; returns
/// true (and suppresses) when one matches. `extra_rules` lets a family be
/// silenced by its sibling per-file rule (e.g. `float::strict-eq` allows
/// also cover `taint::analog-exact` sinks on the same line).
fn suppressed(directives: &mut [Directive], rule: &str, extra_rules: &[&str], line: u32) -> bool {
    for d in directives.iter_mut() {
        if d.covers(line) && (d.rule == rule || extra_rules.contains(&d.rule.as_str())) {
            d.used = true;
            return true;
        }
    }
    false
}

/// True when a seed at `line` in `file` is locally justified by an allow
/// directive (the per-file rule's or the cross-file family's).
fn seed_allowed(directives: &[Directive], rules: &[&str], line: u32) -> bool {
    directives
        .iter()
        .any(|d| d.covers(line) && rules.contains(&d.rule.as_str()))
}

/// Marks the matching directives used (seed-side suppression consumes the
/// allow, so it never reports as unused).
fn mark_seed_allow_used(directives: &mut [Directive], rules: &[&str], line: u32) {
    for d in directives.iter_mut() {
        if d.covers(line) && rules.contains(&d.rule.as_str()) {
            d.used = true;
        }
    }
}

const PANIC_ALLOW_RULES: &[&str] = &[
    "reach::panic",
    "panic::unwrap",
    "panic::expect",
    "panic::panic-macro",
];
const ENTROPY_ALLOW_RULES: &[&str] = &[
    "reach::nondeterminism",
    "determinism::wall-clock",
    "determinism::unseeded-rng",
];

/// Runs the cross-file pass over every analyzed file, marking directive
/// usage in place and returning the cross findings (sorted by the caller).
pub fn cross_findings(files: &mut [FileAnalysis]) -> Vec<Finding> {
    let mut findings = Vec::new();
    // The graph borrows the files immutably; directive mutation happens
    // after each family computes its raw findings.
    let graph = Graph::build(files);

    let (reach_panic, panic_allowed) = reach_family(
        &graph,
        SeedKind::Panic,
        // Roots: public, non-test fns of non-exempt crates.
        |fa, f| f.is_pub && !f.in_test && !PANIC_EXEMPT_CRATES.contains(&fa.ctx.krate.as_str()),
        // Seeds: non-public, non-test fns (a panic in a public fn is part
        // of its own visible contract; the blind spot is private helpers).
        |fa, f| !f.is_pub && !f.in_test && !PANIC_EXEMPT_CRATES.contains(&fa.ctx.krate.as_str()),
        PANIC_ALLOW_RULES,
    );
    let (reach_entropy, entropy_allowed) = reach_family(
        &graph,
        SeedKind::Entropy,
        // Roots: any non-test fn inside a determinism-critical crate.
        |fa, f| !f.in_test && DETERMINISM_CRATES.contains(&fa.ctx.krate.as_str()),
        // Seeds: fns *outside* those crates (inside, the per-file rules
        // already deny the tokens directly).
        |fa, f| !f.in_test && !DETERMINISM_CRATES.contains(&fa.ctx.krate.as_str()),
        ENTROPY_ALLOW_RULES,
    );
    let taint = taint_family(&graph);

    // A seed-side allow that actually shielded a reached seed counts as
    // used (otherwise it would surface as a false unused-allow warning).
    for (fi, line) in panic_allowed {
        mark_seed_allow_used(&mut files[fi].directives, PANIC_ALLOW_RULES, line);
    }
    for (fi, line) in entropy_allowed {
        mark_seed_allow_used(&mut files[fi].directives, ENTROPY_ALLOW_RULES, line);
    }

    for (rule, raw) in [
        ("reach::panic", reach_panic),
        ("reach::nondeterminism", reach_entropy),
    ] {
        for rf in raw {
            let fi = rf.seed_file;
            if suppressed(
                &mut files[fi].directives,
                rule,
                if rule == "reach::panic" {
                    &PANIC_ALLOW_RULES[1..]
                } else {
                    &ENTROPY_ALLOW_RULES[1..]
                },
                rf.line,
            ) {
                continue;
            }
            findings.push(Finding {
                file: files[fi].path.clone(),
                line: rf.line,
                rule: if rule == "reach::panic" {
                    "reach::panic"
                } else {
                    "reach::nondeterminism"
                },
                severity: severity_of(rule),
                message: rf.message,
                snippet: files[fi].snippet(rf.line),
                witness: rf.witness,
            });
        }
    }
    for rf in taint {
        let fi = rf.seed_file;
        if suppressed(
            &mut files[fi].directives,
            "taint::analog-exact",
            &["float::strict-eq"],
            rf.line,
        ) {
            continue;
        }
        findings.push(Finding {
            file: files[fi].path.clone(),
            line: rf.line,
            rule: "taint::analog-exact",
            severity: severity_of("taint::analog-exact"),
            message: rf.message,
            snippet: files[fi].snippet(rf.line),
            witness: rf.witness,
        });
    }
    findings
}

/// A raw cross finding before directive suppression.
struct RawFinding {
    seed_file: usize,
    line: u32,
    message: String,
    witness: Vec<WitnessStep>,
}

/// Generic reachability family: BFS from `is_root` fns over resolved call
/// edges; every `is_seed_scope` fn holding an unsuppressed seed of `kind`
/// that is reached yields one finding per seed line, with the discovery
/// chain as witness. The second return lists `(file, line)` of seeds that
/// a seed-side allow shielded, so the caller can mark those allows used.
fn reach_family(
    graph: &Graph<'_>,
    kind: SeedKind,
    is_root: impl Fn(&FileAnalysis, &crate::parser::FnIr) -> bool,
    is_seed_scope: impl Fn(&FileAnalysis, &crate::parser::FnIr) -> bool,
    allow_rules: &[&str],
) -> (Vec<RawFinding>, Vec<(usize, u32)>) {
    // BFS with parent pointers; roots in deterministic order.
    let mut parent: BTreeMap<FnId, (FnId, u32)> = BTreeMap::new();
    let mut reached: BTreeSet<FnId> = BTreeSet::new();
    let mut queue: Vec<FnId> = Vec::new();
    for (fi, fa) in graph.files.iter().enumerate() {
        for (gi, f) in fa.ir.fns.iter().enumerate() {
            if is_root(fa, f) {
                let id = (fi, gi);
                reached.insert(id);
                queue.push(id);
            }
        }
    }
    let mut head = 0usize;
    while head < queue.len() {
        let cur = queue[head];
        head += 1;
        if let Some(edges) = graph.edges.get(&cur) {
            for (res, line, _) in edges {
                let Resolved::Unique(next) = res else {
                    continue;
                };
                if reached.insert(*next) {
                    parent.insert(*next, (cur, *line));
                    queue.push(*next);
                }
            }
        }
    }

    let mut out = Vec::new();
    let mut allowed = Vec::new();
    for (fi, fa) in graph.files.iter().enumerate() {
        for (gi, f) in fa.ir.fns.iter().enumerate() {
            let id = (fi, gi);
            if !is_seed_scope(fa, f) || !reached.contains(&id) {
                continue;
            }
            // Indirect only: the fn must have been *discovered* through a
            // call edge (roots discover themselves).
            if !parent.contains_key(&id) {
                continue;
            }
            let mut seed_lines: BTreeSet<(u32, String)> = BTreeSet::new();
            for s in f.seeds.iter().filter(|s| s.kind == kind) {
                if seed_allowed(&fa.directives, allow_rules, s.line) {
                    allowed.push((fi, s.line));
                    continue;
                }
                seed_lines.insert((s.line, s.what.clone()));
            }
            for (line, what) in seed_lines {
                let witness = witness_chain(graph, &parent, id, line, &what);
                let root_label = witness.first().map(|w| w.label.clone()).unwrap_or_default();
                let message = match kind {
                    SeedKind::Panic => format!(
                        "`{what}` in `{}` can abort callers of {root_label} — return an \
                         Error through the chain or allow with the invariant that makes \
                         it unreachable",
                        f.qname()
                    ),
                    SeedKind::Entropy => format!(
                        "`{what}` in `{}` leaks ambient entropy into {root_label} — \
                         solver results must replay from their seed alone",
                        f.qname()
                    ),
                };
                out.push(RawFinding {
                    seed_file: fi,
                    line,
                    message,
                    witness,
                });
            }
        }
    }
    (out, allowed)
}

/// Reconstructs the discovery chain root → … → seed as witness steps.
fn witness_chain(
    graph: &Graph<'_>,
    parent: &BTreeMap<FnId, (FnId, u32)>,
    seed: FnId,
    seed_line: u32,
    what: &str,
) -> Vec<WitnessStep> {
    // (callee, its caller, call line in the caller's file)
    let mut chain: Vec<(FnId, FnId, u32)> = Vec::new();
    let mut cur = seed;
    let mut guard = 0usize;
    while let Some(&(up, line)) = parent.get(&cur) {
        chain.push((cur, up, line));
        cur = up;
        guard += 1;
        if guard > 64 {
            break;
        }
    }
    let root = cur;
    let mut steps = Vec::new();
    let rf = graph.fn_ir(root);
    steps.push(WitnessStep {
        file: graph.file(root).path.clone(),
        line: rf.line,
        label: format!("entry point `{}`", rf.qname()),
    });
    for &(id, caller, call_line) in chain.iter().rev() {
        let f = graph.fn_ir(id);
        steps.push(WitnessStep {
            file: graph.file(caller).path.clone(),
            line: call_line,
            label: format!(
                "calls `{}` (defined at {}:{})",
                f.qname(),
                graph.file(id).path,
                f.line
            ),
        });
    }
    let sf = graph.fn_ir(seed);
    steps.push(WitnessStep {
        file: graph.file(seed).path.clone(),
        line: seed_line,
        label: format!("`{what}` in `{}`", sf.qname()),
    });
    steps
}

/// How a function became analog (for witness reconstruction).
#[derive(Debug, Clone)]
enum AnalogWhy {
    Annotated,
    /// Returns the result of calling an analog fn at `line`.
    ViaCall(FnId, u32),
    /// Returns a local tainted by a call to an analog fn at `line`.
    ViaBind(FnId, u32),
}

/// Pre-resolved call sites of one function's binding RHSes and returns —
/// resolution is fact-independent, so it runs once, not per fixed-point
/// iteration.
struct RhsRes {
    /// Per bind, per RHS call: (resolution, call line).
    binds: Vec<Vec<(Resolved, u32)>>,
    /// Per return expression, per call.
    rets: Vec<Vec<(Resolved, u32)>>,
}

/// The analog fact lattice plus the per-function taint pass and its sink
/// findings.
fn taint_family(graph: &Graph<'_>) -> Vec<RawFinding> {
    // Fixed point over the returns-analog fact.
    let mut analog: BTreeMap<FnId, AnalogWhy> = BTreeMap::new();
    let mut rhs_res: BTreeMap<FnId, RhsRes> = BTreeMap::new();
    for (fi, fa) in graph.files.iter().enumerate() {
        for (gi, f) in fa.ir.fns.iter().enumerate() {
            let id = (fi, gi);
            if f.analog_source {
                analog.insert(id, AnalogWhy::Annotated);
            }
            if f.in_test {
                continue;
            }
            rhs_res.insert(
                id,
                RhsRes {
                    binds: f
                        .binds
                        .iter()
                        .map(|b| {
                            b.rhs
                                .calls
                                .iter()
                                .map(|c| (graph.resolve(c, id), c.line))
                                .collect()
                        })
                        .collect(),
                    rets: f
                        .rets
                        .iter()
                        .map(|r| {
                            r.calls
                                .iter()
                                .map(|c| (graph.resolve(c, id), c.line))
                                .collect()
                        })
                        .collect(),
                },
            );
        }
    }
    let is_analog_call = |analog: &BTreeMap<FnId, AnalogWhy>, res: &Resolved| -> Option<FnId> {
        match res {
            Resolved::Unique(id) if analog.contains_key(id) => Some(*id),
            // Unanimity: an ambiguous method call propagates the fact only
            // when every candidate carries it.
            Resolved::Candidates(ids)
                if !ids.is_empty() && ids.iter().all(|i| analog.contains_key(i)) =>
            {
                Some(ids[0])
            }
            _ => None,
        }
    };

    loop {
        let mut changed = false;
        for (fi, fa) in graph.files.iter().enumerate() {
            for (gi, f) in fa.ir.fns.iter().enumerate() {
                let id = (fi, gi);
                if analog.contains_key(&id) || f.in_test {
                    continue;
                }
                let Some(res) = rhs_res.get(&id) else {
                    continue;
                };
                let (tainted, provenance) = tainted_locals(graph, &analog, id, res);
                // Returns-analog: a return expression calls an analog fn or
                // carries a tainted local.
                'rets: for (r, rres) in f.rets.iter().zip(&res.rets) {
                    for (cres, line) in rres {
                        if let Some(src) = is_analog_call(&analog, cres) {
                            analog.insert(id, AnalogWhy::ViaCall(src, *line));
                            changed = true;
                            break 'rets;
                        }
                    }
                    for ident in &r.idents {
                        if tainted.contains(ident) {
                            if let Some(&(src, line)) = provenance.get(ident) {
                                analog.insert(id, AnalogWhy::ViaBind(src, line));
                                changed = true;
                                break 'rets;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Sink detection with the final fact set.
    let mut out = Vec::new();
    for (fi, fa) in graph.files.iter().enumerate() {
        for (gi, f) in fa.ir.fns.iter().enumerate() {
            let id = (fi, gi);
            if f.in_test {
                continue;
            }
            let Some(res) = rhs_res.get(&id) else {
                continue;
            };
            let (tainted, provenance) = tainted_locals(graph, &analog, id, res);
            if tainted.is_empty() {
                continue;
            }
            let mut seen_lines: BTreeSet<(u32, SinkKind)> = BTreeSet::new();
            for s in &f.sinks {
                let hit = s.idents.iter().find(|i| tainted.contains(*i));
                let Some(var) = hit else { continue };
                match s.kind {
                    SinkKind::StrictEq if !s.zero_cmp => {}
                    SinkKind::Index if !s.guarded => {}
                    _ => continue,
                }
                if !seen_lines.insert((s.line, s.kind)) {
                    continue;
                }
                let witness = taint_witness(graph, &analog, &provenance, id, var, s.line, s.kind);
                let message = match s.kind {
                    SinkKind::StrictEq => format!(
                        "`{var}` carries an analog readout and feeds a strict float \
                         compare — decide inside the calibrated tolerance envelope \
                         instead (Fig 5)"
                    ),
                    SinkKind::Index => format!(
                        "`{var}` carries an analog readout and indexes without \
                         clamping — `.min()`/`.clamp()` the index first"
                    ),
                };
                out.push(RawFinding {
                    seed_file: fi,
                    line: s.line,
                    message,
                    witness,
                });
            }
        }
    }
    out
}

/// Forward taint pass over one function's bindings: locals assigned from
/// analog calls (or from already-tainted locals) are tainted. Two sweeps
/// handle use-before-def orderings the token pass can produce.
fn tainted_locals(
    graph: &Graph<'_>,
    analog: &BTreeMap<FnId, AnalogWhy>,
    id: FnId,
    res: &RhsRes,
) -> (BTreeSet<String>, BTreeMap<String, (FnId, u32)>) {
    let f = graph.fn_ir(id);
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    let mut provenance: BTreeMap<String, (FnId, u32)> = BTreeMap::new();
    for _ in 0..2 {
        for (b, bres) in f.binds.iter().zip(&res.binds) {
            let mut src: Option<(FnId, u32)> = None;
            for (cres, line) in bres {
                let hit = match cres {
                    Resolved::Unique(i) if analog.contains_key(i) => Some(*i),
                    Resolved::Candidates(ids)
                        if !ids.is_empty() && ids.iter().all(|i| analog.contains_key(i)) =>
                    {
                        Some(ids[0])
                    }
                    _ => None,
                };
                if let Some(i) = hit {
                    src = Some((i, *line));
                    break;
                }
            }
            if src.is_none() {
                if let Some(t) = b.rhs.idents.iter().find(|i| tainted.contains(*i)) {
                    src = provenance.get(t).copied();
                    if src.is_none() {
                        // Tainted via a var with unknown provenance; keep
                        // the chain anchored at this binding.
                        src = Some((id, b.line));
                    }
                }
            }
            if let Some(s) = src {
                for v in &b.vars {
                    tainted.insert(v.clone());
                    provenance.entry(v.clone()).or_insert(s);
                }
            }
        }
    }
    (tainted, provenance)
}

/// Witness for a taint finding: sink ← binding ← …analog provenance… ←
/// annotated source.
fn taint_witness(
    graph: &Graph<'_>,
    analog: &BTreeMap<FnId, AnalogWhy>,
    provenance: &BTreeMap<String, (FnId, u32)>,
    id: FnId,
    var: &str,
    sink_line: u32,
    kind: SinkKind,
) -> Vec<WitnessStep> {
    let f = graph.fn_ir(id);
    let mut steps = vec![WitnessStep {
        file: graph.file(id).path.clone(),
        line: sink_line,
        label: format!(
            "{} on analog-tainted `{var}` in `{}`",
            match kind {
                SinkKind::StrictEq => "strict compare",
                SinkKind::Index => "unclamped index",
            },
            f.qname()
        ),
    }];
    if let Some(&(src, line)) = provenance.get(var) {
        steps.push(WitnessStep {
            file: graph.file(id).path.clone(),
            line,
            label: format!("`{var}` bound from `{}` here", graph.fn_ir(src).qname()),
        });
        // Walk the analog provenance of the source fn down to the
        // annotation.
        let mut cur = src;
        let mut guard = 0usize;
        while guard < 8 {
            guard += 1;
            match analog.get(&cur) {
                Some(AnalogWhy::Annotated) => {
                    let cf = graph.fn_ir(cur);
                    steps.push(WitnessStep {
                        file: graph.file(cur).path.clone(),
                        line: cf.line,
                        label: format!("`{}` is an annotated analog source", cf.qname()),
                    });
                    break;
                }
                Some(AnalogWhy::ViaCall(next, line)) | Some(AnalogWhy::ViaBind(next, line)) => {
                    let cf = graph.fn_ir(cur);
                    steps.push(WitnessStep {
                        file: graph.file(cur).path.clone(),
                        line: *line,
                        label: format!(
                            "`{}` returns a value read from `{}`",
                            cf.qname(),
                            graph.fn_ir(*next).qname()
                        ),
                    });
                    if *next == cur {
                        break;
                    }
                    cur = *next;
                }
                None => break,
            }
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::analyze_file;

    fn cross(files: &[(&str, &str)]) -> Vec<(String, u32, String)> {
        let mut analyses: Vec<FileAnalysis> =
            files.iter().map(|(p, s)| analyze_file(p, s)).collect();
        cross_findings(&mut analyses)
            .into_iter()
            .map(|f| (f.rule.to_string(), f.line, f.file))
            .collect()
    }

    #[test]
    fn private_panic_helper_reachable_from_pub_api_is_found() {
        let got = cross(&[
            (
                "crates/memlp-core/src/api.rs",
                "use crate::helpers::check;\npub fn entry(x: usize) { check(x); }\n",
            ),
            (
                "crates/memlp-core/src/helpers.rs",
                "pub(crate) fn check(x: usize) { inner(x); }\nfn inner(x: usize) { assert!(x > 0); }\n",
            ),
        ]);
        assert_eq!(
            got,
            vec![(
                "reach::panic".to_string(),
                2,
                "crates/memlp-core/src/helpers.rs".to_string()
            )]
        );
    }

    #[test]
    fn entropy_outside_solver_crates_reachable_from_inside_is_found() {
        let got = cross(&[
            (
                "crates/memlp-core/src/run.rs",
                "use memlp_bench::clock::stamp;\nfn tick() -> u64 { stamp() }\n",
            ),
            (
                "crates/memlp-bench/src/clock.rs",
                "pub fn stamp() -> u64 { let t = Instant::now(); 0 }\n",
            ),
        ]);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, "reach::nondeterminism");
        assert_eq!(got[0].2, "crates/memlp-bench/src/clock.rs");
    }

    #[test]
    fn tainted_readout_strict_compare_is_found_across_files() {
        let got = cross(&[
            (
                "crates/memlp-device/src/read.rs",
                "/// memlp-lint: analog_source\npub fn read_line() -> f64 { 0.0 }\n",
            ),
            (
                "crates/memlp-core/src/use_it.rs",
                "use memlp_device::read::read_line;\nfn f() { let v = read_line(); if v == 1.5 {} }\n",
            ),
        ]);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, "taint::analog-exact");
        assert_eq!(got[0].2, "crates/memlp-core/src/use_it.rs");
    }

    #[test]
    fn tolerant_compare_and_clamped_index_stay_clean() {
        let got = cross(&[
            (
                "crates/memlp-device/src/read.rs",
                "/// memlp-lint: analog_source\npub fn read_line() -> f64 { 0.0 }\n",
            ),
            (
                "crates/memlp-core/src/use_it.rs",
                "use memlp_device::read::read_line;\nfn f(t: &[f64]) {\n    let v = read_line();\n    if (v - 1.5).abs() < 1e-9 {}\n    let i = v as usize;\n    let _ = t[i.min(t.len() - 1)];\n}\n",
            ),
        ]);
        assert!(got.is_empty(), "{got:?}");
    }
}
