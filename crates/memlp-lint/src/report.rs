//! Report assembly and output formatting (human and JSON).
//!
//! The JSON writer is hand-rolled — the analyzer is dependency-free by
//! design — and emits a stable shape CI can archive and diff:
//!
//! ```json
//! {
//!   "files_scanned": 42,
//!   "deny": 1,
//!   "warn": 0,
//!   "findings": [
//!     {"file": "...", "line": 7, "rule": "panic::unwrap",
//!      "severity": "deny", "message": "...", "snippet": "..."}
//!   ]
//! }
//! ```
//!
//! Cross-file findings additionally carry a `"witness"` array of
//! `{"file", "line", "label"}` steps — the call chain from the rule's
//! anchor to the finding site. SARIF output lives in [`crate::sarif`].

use std::fmt::Write as _;

use crate::rules::{Finding, Severity};

/// A whole-workspace lint report.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, ordered by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Number of deny-level findings (these fail the run).
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    /// Human-readable rendering: one block per finding plus a summary line.
    pub fn to_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}: {} [{}] {}",
                f.file,
                f.line,
                f.severity.label(),
                f.rule,
                f.message
            );
            if !f.snippet.is_empty() {
                let _ = writeln!(out, "    {}", f.snippet);
            }
            // Cross-file findings carry their call-chain witness: every hop
            // from the rule's anchor (public API, solver entry, analog
            // source) down to the finding site.
            for (i, w) in f.witness.iter().enumerate() {
                let arrow = if i == 0 { "   " } else { "-> " };
                let _ = writeln!(out, "    {arrow}{}:{}: {}", w.file, w.line, w.label);
            }
        }
        let _ = writeln!(
            out,
            "memlp-lint: {} finding(s) ({} deny, {} warn) across {} file(s)",
            self.findings.len(),
            self.deny_count(),
            self.warn_count(),
            self.files_scanned
        );
        out
    }

    /// JSON rendering (see module docs for the shape).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"deny\": {},", self.deny_count());
        let _ = writeln!(out, "  \"warn\": {},", self.warn_count());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"file\": {}, \"line\": {}, \"rule\": {}, \"severity\": {}, \
                 \"message\": {}, \"snippet\": {}",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(f.severity.label()),
                json_str(&f.message),
                json_str(&f.snippet)
            );
            if !f.witness.is_empty() {
                out.push_str(", \"witness\": [");
                for (j, w) in f.witness.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(
                        out,
                        "{{\"file\": {}, \"line\": {}, \"label\": {}}}",
                        json_str(&w.file),
                        w.line,
                        json_str(&w.label)
                    );
                }
                out.push(']');
            }
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::lint_source;

    fn sample_report() -> Report {
        let findings = lint_source(
            "crates/memlp-core/src/x.rs",
            "fn f() { Some(1).unwrap(); }\n",
        );
        Report {
            findings,
            files_scanned: 1,
        }
    }

    #[test]
    fn human_output_has_location_and_summary() {
        let text = sample_report().to_human();
        assert!(text.contains("crates/memlp-core/src/x.rs:1: deny [panic::unwrap]"));
        assert!(text.contains("1 deny, 0 warn"));
    }

    #[test]
    fn json_output_is_escaped_and_structured() {
        let text = sample_report().to_json();
        assert!(text.contains("\"rule\": \"panic::unwrap\""));
        assert!(text.contains("\"deny\": 1"));
        // The snippet contains quotes-free code here; force an escape check.
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
