//! Pass 1 of the cross-file analyzer: an item-level parser built on the
//! [`crate::lexer`] token stream.
//!
//! This is deliberately *not* a full Rust parser. It recovers just enough
//! structure for whole-workspace reasoning — modules, `impl` owners, `use`
//! aliases, `fn` items — and, per function, the facts the fixed-point rules
//! in [`crate::graph`] consume:
//!
//! * **call sites** (path calls fully recorded, method calls by name),
//! * **panic seeds** (`unwrap`/`expect`/`panic!`-family/`assert!`-family),
//! * **entropy seeds** (wall clocks and ambient RNG),
//! * **taint structure** (`let` bindings with their right-hand sides,
//!   strict-compare and indexing sinks, return expressions) for the
//!   analog-readout dataflow rule, and
//! * the `memlp-lint: analog_source` doc-comment annotation that seeds the
//!   analog fact lattice on `memlp-device`/`memlp-crossbar` readout APIs.
//!
//! Anything the parser cannot classify it skips: a linter over-approximates
//! where cheap and under-approximates where a guess would lie, and every
//! skip is deterministic.

use crate::lexer::{Lexed, Tok, TokKind};

/// Parsed shape of one source file.
#[derive(Debug, Clone, Default)]
pub struct FileIr {
    /// Workspace-relative path.
    pub path: String,
    /// Root module path of the file (crate ident first).
    pub module: Vec<String>,
    /// `use` aliases visible in the file (alias `*` marks a glob import).
    pub uses: Vec<UseDecl>,
    /// Every `fn` item found (bodies of nested fns are not revisited).
    pub fns: Vec<FnIr>,
}

/// One `use` alias: `alias` resolves to `path`.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Local name (`*` for glob imports).
    pub alias: String,
    /// Imported path segments as written (absolute after normalization).
    pub path: Vec<String>,
}

/// One `fn` item with its extracted facts.
#[derive(Debug, Clone, Default)]
pub struct FnIr {
    /// Bare function name.
    pub name: String,
    /// `impl`/`trait` owner type name (empty for free functions).
    pub owner: String,
    /// Absolute module path (crate ident + file + inline `mod`s).
    pub module: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True for unrestricted `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// True inside `#[cfg(test)]`/`#[test]` regions or test-scope files.
    pub in_test: bool,
    /// True when annotated with `memlp-lint: analog_source`.
    pub analog_source: bool,
    /// Local fact seeds (panic / entropy tokens) with their lines.
    pub seeds: Vec<Seed>,
    /// Call sites in the body.
    pub calls: Vec<CallSite>,
    /// `let`/reassignment/`for` bindings (taint propagation).
    pub binds: Vec<Bind>,
    /// Strict-compare and indexing sinks (taint consumption).
    pub sinks: Vec<Sink>,
    /// Right-hand sides of `return` statements and the trailing expression.
    pub rets: Vec<Rhs>,
}

impl FnIr {
    /// Display name: `module::Owner::name` / `module::name`.
    pub fn qname(&self) -> String {
        let mut parts: Vec<&str> = self.module.iter().map(String::as_str).collect();
        if !self.owner.is_empty() {
            parts.push(&self.owner);
        }
        parts.push(&self.name);
        parts.join("::")
    }
}

/// What kind of fact a local seed contributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedKind {
    /// May abort: `unwrap`/`expect`/`panic!`/`assert!` family.
    Panic,
    /// Ambient nondeterminism: wall clocks or unseeded RNG.
    Entropy,
}

/// One local fact seed.
#[derive(Debug, Clone)]
pub struct Seed {
    /// Fact family.
    pub kind: SeedKind,
    /// The offending token (for messages), e.g. `assert_eq!`.
    pub what: String,
    /// 1-based line.
    pub line: u32,
}

/// One call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path segments as written (single segment for method calls).
    pub path: Vec<String>,
    /// True for `.name(...)` receiver calls (resolved by name, see graph).
    pub method: bool,
    /// 1-based line.
    pub line: u32,
}

/// Identifier/call summary of an expression (a binding RHS or return).
#[derive(Debug, Clone, Default)]
pub struct Rhs {
    /// Calls appearing in the expression.
    pub calls: Vec<CallSite>,
    /// Plain identifiers appearing in the expression (call names and
    /// shape-accessor receivers excluded).
    pub idents: Vec<String>,
}

/// One binding: `vars` receive the value of `rhs`.
#[derive(Debug, Clone)]
pub struct Bind {
    /// Bound variable names (all idents of the pattern).
    pub vars: Vec<String>,
    /// Value summary.
    pub rhs: Rhs,
    /// 1-based line of the binding.
    pub line: u32,
}

/// Taint sink kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SinkKind {
    /// Strict `==`/`!=` comparison.
    StrictEq,
    /// Slice/array indexing `a[i]`.
    Index,
}

/// One potential taint sink.
#[derive(Debug, Clone)]
pub struct Sink {
    /// Sink kind.
    pub kind: SinkKind,
    /// Identifiers feeding the sink (comparison operands / index expr).
    pub idents: Vec<String>,
    /// 1-based line.
    pub line: u32,
    /// `StrictEq` only: one side is an exact-zero float literal
    /// (structural-sparsity checks are exempt, as in `float::strict-eq`).
    pub zero_cmp: bool,
    /// `Index` only: the index expression clamps (`min`/`clamp`/
    /// `saturating_sub`) before indexing.
    pub guarded: bool,
}

/// Methods that return shapes/sizes, not values: a tainted receiver does
/// not taint `x.len()`-style results, so these receivers are dropped from
/// ident summaries.
const SHAPE_ACCESSORS: &[&str] = &[
    "len", "is_empty", "rows", "cols", "count", "capacity", "dims", "side", "nnz",
];

/// Struct fields that hold shapes/dimensions, not analog values: a field
/// access `sys.m` inside an index expression reads a problem dimension, so
/// neither the receiver nor the field taints the index.
const SHAPE_FIELDS: &[&str] = &["m", "n", "k", "rows", "cols", "dim", "len", "size", "nnz"];

/// Keywords never treated as call heads or value identifiers.
const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "let", "mut",
    "ref", "move", "as", "in", "fn", "pub", "use", "mod", "impl", "trait", "struct", "enum",
    "type", "const", "static", "where", "dyn", "self", "Self", "super", "crate", "true", "false",
    "async", "await", "unsafe", "extern",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Derives the absolute root module path for a workspace-relative file.
///
/// Crate library sources map to real module paths (`crates/memlp-core/src/
/// newton.rs` → `memlp_core::newton`); test/example/bench targets and
/// binaries are their own crate roots, so they get a unique synthetic root
/// that nothing resolves into from outside.
pub fn module_path_of(rel: &str) -> Vec<String> {
    let rel = rel.replace('\\', "/");
    let (crate_ident, rest) = match rel.strip_prefix("crates/") {
        Some(r) => {
            let mut it = r.splitn(2, '/');
            let name = it.next().unwrap_or("").replace('-', "_");
            (name, it.next().unwrap_or("").to_string())
        }
        None => ("memlp".to_string(), rel.clone()),
    };
    if let Some(inner) = rest.strip_prefix("src/") {
        if !inner.contains("bin/") {
            let mut path = vec![crate_ident];
            let trimmed = inner.trim_end_matches(".rs");
            for seg in trimmed.split('/') {
                if seg == "lib" || seg == "mod" || seg.is_empty() {
                    continue;
                }
                path.push(seg.to_string());
            }
            return path;
        }
    }
    // Standalone compilation roots: give each a synthetic unique module.
    vec![format!(
        "__root_{}",
        rel.trim_end_matches(".rs").replace(['/', '-', '.'], "_")
    )]
}

/// Parses one lexed file into its IR. `test_file` marks whole-file test
/// scope (integration tests, examples, benches); `test_mask` marks
/// `#[cfg(test)]`/`#[test]` token regions inside library files.
pub fn parse_file(rel: &str, lexed: &Lexed, test_file: bool, test_mask: &[bool]) -> FileIr {
    let toks = &lexed.toks;
    let root = module_path_of(rel);
    let mut ir = FileIr {
        path: rel.to_string(),
        module: root.clone(),
        uses: Vec::new(),
        fns: Vec::new(),
    };

    // `memlp-lint: analog_source` annotation lines, ascending.
    let mut annot_lines: Vec<u32> = lexed
        .comments
        .iter()
        .filter(|c| {
            c.text
                .trim_start_matches(['/', '*', '!'])
                .trim_start()
                .strip_prefix("memlp-lint:")
                .map(|rest| rest.trim_start().starts_with("analog_source"))
                .unwrap_or(false)
        })
        .map(|c| c.line)
        .collect();
    annot_lines.sort_unstable();
    let mut next_annot = 0usize;

    let mut depth: i32 = 0;
    let mut mod_stack: Vec<(String, i32)> = Vec::new();
    let mut impl_stack: Vec<(String, i32)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let text = toks[i].text.as_str();
        match text {
            "{" => {
                depth += 1;
                i += 1;
            }
            "}" => {
                depth -= 1;
                if mod_stack.last().map(|m| m.1 == depth).unwrap_or(false) {
                    mod_stack.pop();
                }
                if impl_stack.last().map(|m| m.1 == depth).unwrap_or(false) {
                    impl_stack.pop();
                }
                i += 1;
            }
            "use" if toks[i].kind == TokKind::Ident => {
                i = parse_use(toks, i + 1, &root, &mut ir.uses);
            }
            "mod" if toks[i].kind == TokKind::Ident => {
                // `mod name {` opens a nested module; `mod name;` is an
                // out-of-line module (its file is parsed separately).
                if let (Some(name), Some(open)) = (toks.get(i + 1), toks.get(i + 2)) {
                    if name.kind == TokKind::Ident && open.text == "{" {
                        mod_stack.push((name.text.clone(), depth));
                    }
                }
                i += 1;
            }
            "impl" | "trait" if toks[i].kind == TokKind::Ident => {
                let (owner, after) = parse_impl_header(toks, i + 1);
                if toks.get(after).map(|t| t.text == "{").unwrap_or(false) {
                    impl_stack.push((owner, depth));
                }
                i = after;
            }
            "fn" if toks[i].kind == TokKind::Ident => {
                let Some(name_tok) = toks.get(i + 1) else {
                    i += 1;
                    continue;
                };
                if name_tok.kind != TokKind::Ident {
                    i += 1;
                    continue;
                }
                let fn_line = toks[i].line;
                let is_pub = visibility_is_pub(toks, i);
                let mut module = root.clone();
                module.extend(mod_stack.iter().map(|(n, _)| n.clone()));
                let owner = impl_stack
                    .last()
                    .map(|(n, _)| n.clone())
                    .unwrap_or_default();
                // Find the body: the first `{` before a `;` ends the
                // signature; a `;` first means a bodyless declaration.
                let mut j = i + 2;
                let mut body: Option<(usize, usize)> = None;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "{" => {
                            body = Some((j, matching_brace(toks, j)));
                            break;
                        }
                        ";" => break,
                        _ => j += 1,
                    }
                }
                let mut f = FnIr {
                    name: name_tok.text.clone(),
                    owner,
                    module,
                    line: fn_line,
                    is_pub,
                    in_test: test_file || test_mask.get(i).copied().unwrap_or(false),
                    analog_source: false,
                    ..FnIr::default()
                };
                while next_annot < annot_lines.len() && annot_lines[next_annot] < fn_line {
                    f.analog_source = true;
                    next_annot += 1;
                }
                if let Some((open, close)) = body {
                    extract_body(&toks[open..=close.min(toks.len() - 1)], &mut f);
                    ir.fns.push(f);
                    i = close + 1;
                } else {
                    ir.fns.push(f);
                    i = j + 1;
                }
            }
            _ => i += 1,
        }
    }
    ir
}

/// Index of the `}` matching the `{` at `open` (last token if unbalanced).
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    toks.len().saturating_sub(1)
}

/// True when the tokens before `fn` at `i` carry an unrestricted `pub`.
fn visibility_is_pub(toks: &[Tok], i: usize) -> bool {
    // Walk back over modifier tokens (`const`, `async`, `extern "C"`).
    let mut k = i;
    while k > 0 {
        let prev = &toks[k - 1];
        match prev.text.as_str() {
            "const" | "async" | "unsafe" | "extern" => k -= 1,
            _ if prev.kind == TokKind::Str => k -= 1, // extern ABI string
            _ => break,
        }
    }
    if k == 0 {
        return false;
    }
    let prev = &toks[k - 1];
    if prev.text == "pub" {
        // `pub` immediately: unrestricted only if not `pub(...)` — but a
        // restriction would sit *after* `pub`, i.e. between it and `fn`,
        // and we walked only over modifiers, so this `pub` is plain.
        return true;
    }
    // `pub(crate) fn`: the token before `fn` is `)`; scan back to `pub`.
    if prev.text == ")" {
        let mut b = k - 1;
        while b > 0 && toks[b].text != "(" {
            b -= 1;
        }
        if b >= 1 && toks[b - 1].text == "pub" {
            return false; // restricted visibility is not public API
        }
    }
    false
}

/// Parses a `use` declaration starting after the `use` keyword; returns the
/// index one past the terminating `;`. Handles `a::b::c`, `as` renames,
/// nested groups `{…}`, and glob `*` imports.
fn parse_use(toks: &[Tok], mut i: usize, root: &[String], out: &mut Vec<UseDecl>) -> usize {
    // Collect the raw token texts up to `;`, then parse the tree textually.
    let start = i;
    let mut depth = 0i32;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => depth += 1,
            "}" => depth -= 1,
            ";" if depth <= 0 => break,
            _ => {}
        }
        i += 1;
    }
    let texts: Vec<&str> = toks[start..i].iter().map(|t| t.text.as_str()).collect();
    expand_use_tree(&texts, &[], root, out);
    i + 1
}

/// Recursively expands a use-tree token slice into flat alias → path decls.
fn expand_use_tree(toks: &[&str], prefix: &[String], root: &[String], out: &mut Vec<UseDecl>) {
    let mut path: Vec<String> = Vec::new();
    let mut k = 0usize;
    while k < toks.len() {
        match toks[k] {
            "::" => k += 1,
            "{" => {
                // Split the group body at top-level commas and recurse.
                let mut depth = 1i32;
                let mut item_start = k + 1;
                let mut m = k + 1;
                let mut full = prefix.to_vec();
                full.extend(path.iter().cloned());
                while m < toks.len() {
                    match toks[m] {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                if m > item_start {
                                    expand_use_tree(&toks[item_start..m], &full, root, out);
                                }
                                break;
                            }
                        }
                        "," if depth == 1 => {
                            if m > item_start {
                                expand_use_tree(&toks[item_start..m], &full, root, out);
                            }
                            item_start = m + 1;
                        }
                        _ => {}
                    }
                    m += 1;
                }
                return;
            }
            "*" => {
                push_use(prefix, &path, "*", root, out);
                return;
            }
            "as" => {
                let alias = toks.get(k + 1).copied().unwrap_or("_").to_string();
                push_use(prefix, &path, &alias, root, out);
                return;
            }
            seg => {
                path.push(seg.to_string());
                k += 1;
            }
        }
    }
    if let Some(last) = path.last().cloned() {
        push_use(prefix, &path, &last, root, out);
    }
}

/// Records one flattened use decl, normalizing `crate`/`self`/`super`
/// prefixes against the file's root module.
fn push_use(
    prefix: &[String],
    path: &[String],
    alias: &str,
    root: &[String],
    out: &mut Vec<UseDecl>,
) {
    if alias == "_" {
        return;
    }
    let mut full: Vec<String> = prefix.to_vec();
    full.extend(path.iter().cloned());
    let abs = normalize_path(&full, root, root);
    out.push(UseDecl {
        alias: alias.to_string(),
        path: abs,
    });
}

/// Rewrites `crate::`/`self::`/`super::` heads against the crate root and
/// current module. Paths that start elsewhere are returned unchanged.
pub fn normalize_path(path: &[String], crate_root: &[String], module: &[String]) -> Vec<String> {
    let Some(head) = path.first() else {
        return Vec::new();
    };
    match head.as_str() {
        "crate" => {
            let mut v = vec![crate_root
                .first()
                .cloned()
                .unwrap_or_else(|| "crate".into())];
            v.extend(path[1..].iter().cloned());
            v
        }
        "self" => {
            let mut v = module.to_vec();
            v.extend(path[1..].iter().cloned());
            v
        }
        "super" => {
            let mut v: Vec<String> = module.to_vec();
            let mut rest = path;
            while rest.first().map(|s| s == "super").unwrap_or(false) {
                v.pop();
                rest = &rest[1..];
            }
            v.extend(rest.iter().cloned());
            v
        }
        _ => path.to_vec(),
    }
}

/// Parses an `impl`/`trait` header starting after the keyword; returns the
/// owner type name and the index of the opening `{` (or stop token).
fn parse_impl_header(toks: &[Tok], mut i: usize) -> (String, usize) {
    let mut owner = String::new();
    let mut after_for = false;
    let mut angle = 0i32;
    while i < toks.len() {
        let t = toks[i].text.as_str();
        match t {
            "<" => angle += 1,
            ">" => angle -= 1,
            "{" | ";" if angle <= 0 => break,
            "for" if angle <= 0 => {
                after_for = true;
                owner.clear();
            }
            _ if angle > 0 => {}
            _ => {
                if toks[i].kind == TokKind::Ident && !is_keyword(t) {
                    // Keep the last plain segment: `impl a::b::Type` → Type.
                    let _ = after_for;
                    owner = t.to_string();
                }
            }
        }
        i += 1;
    }
    (owner, i)
}

/// Walks a function body token slice (including the outer braces) and
/// fills the fn's seeds, calls, binds, sinks, and returns.
fn extract_body(body: &[Tok], f: &mut FnIr) {
    extract_seeds(body, &mut f.seeds);
    extract_calls(body, &mut f.calls);
    extract_binds(body, &mut f.binds);
    extract_sinks(body, &mut f.sinks);
    extract_rets(body, &mut f.rets);
}

/// Local panic / entropy fact seeds.
fn extract_seeds(body: &[Tok], out: &mut Vec<Seed>) {
    for (k, t) in body.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev = k.checked_sub(1).and_then(|p| body.get(p));
        let next = body.get(k + 1);
        let text = t.text.as_str();
        let bang = next.map(|n| n.text == "!").unwrap_or(false);
        let call = next.map(|n| n.text == "(").unwrap_or(false);
        let dotted = prev
            .map(|p| p.text == "." || p.text == "::")
            .unwrap_or(false);
        if matches!(text, "unwrap" | "expect") && dotted && call {
            out.push(Seed {
                kind: SeedKind::Panic,
                what: format!(".{text}()"),
                line: t.line,
            });
        }
        if bang
            && matches!(
                text,
                "panic"
                    | "todo"
                    | "unimplemented"
                    | "unreachable"
                    | "assert"
                    | "assert_eq"
                    | "assert_ne"
            )
        {
            out.push(Seed {
                kind: SeedKind::Panic,
                what: format!("{text}!"),
                line: t.line,
            });
        }
        if matches!(text, "Instant" | "SystemTime") {
            out.push(Seed {
                kind: SeedKind::Entropy,
                what: text.to_string(),
                line: t.line,
            });
        }
        if matches!(text, "thread_rng" | "ThreadRng" | "OsRng" | "from_entropy") {
            out.push(Seed {
                kind: SeedKind::Entropy,
                what: text.to_string(),
                line: t.line,
            });
        }
        if text == "rand"
            && next.map(|n| n.text == "::").unwrap_or(false)
            && body.get(k + 2).map(|n| n.text == "random").unwrap_or(false)
        {
            out.push(Seed {
                kind: SeedKind::Entropy,
                what: "rand::random".into(),
                line: t.line,
            });
        }
    }
}

/// Call-site extraction: `a::b::f(...)`, `f(...)`, and `.m(...)`.
fn extract_calls(body: &[Tok], out: &mut Vec<CallSite>) {
    let mut k = 0usize;
    while k < body.len() {
        let t = &body[k];
        if t.kind != TokKind::Ident || is_keyword(&t.text) {
            k += 1;
            continue;
        }
        let prev = k.checked_sub(1).and_then(|p| body.get(p));
        if prev.map(|p| p.text == ".").unwrap_or(false) {
            // Method call `.name(`.
            if body.get(k + 1).map(|n| n.text == "(").unwrap_or(false) {
                out.push(CallSite {
                    path: vec![t.text.clone()],
                    method: true,
                    line: t.line,
                });
            }
            k += 1;
            continue;
        }
        // Path walk: ident (:: ident)*.
        let mut segs = vec![t.text.clone()];
        let mut m = k + 1;
        while m + 1 < body.len() && body[m].text == "::" && body[m + 1].kind == TokKind::Ident {
            segs.push(body[m + 1].text.clone());
            m += 2;
        }
        // Skip one turbofish `::<...>` between the path and the arg list.
        let mut call_at = m;
        if m + 1 < body.len() && body[m].text == "::" && body[m + 1].text == "<" {
            let mut angle = 1i32;
            let mut a = m + 2;
            while a < body.len() && angle > 0 {
                match body[a].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    _ => {}
                }
                a += 1;
            }
            call_at = a;
        }
        let is_macro = body.get(call_at).map(|n| n.text == "!").unwrap_or(false);
        if !is_macro && body.get(call_at).map(|n| n.text == "(").unwrap_or(false) {
            out.push(CallSite {
                path: segs,
                method: false,
                line: t.line,
            });
        }
        k = m.max(k + 1);
    }
}

/// Summarizes an expression token slice: its calls and its value idents.
fn rhs_of(slice: &[Tok]) -> Rhs {
    let mut rhs = Rhs::default();
    extract_calls(slice, &mut rhs.calls);
    for (k, t) in slice.iter().enumerate() {
        if t.kind != TokKind::Ident || is_keyword(&t.text) {
            continue;
        }
        // Skip call names (`f(` / `.m(`) — the call list covers them.
        if slice.get(k + 1).map(|n| n.text == "(").unwrap_or(false) {
            continue;
        }
        // Skip macro names and path-interior segments.
        if slice.get(k + 1).map(|n| n.text == "!").unwrap_or(false) {
            continue;
        }
        if slice.get(k + 1).map(|n| n.text == "::").unwrap_or(false) {
            continue;
        }
        // Drop receivers of shape accessors: `x.len()` is not a value of x.
        if slice.get(k + 1).map(|n| n.text == ".").unwrap_or(false) {
            if let (Some(m), Some(p)) = (slice.get(k + 2), slice.get(k + 3)) {
                if p.text == "(" && SHAPE_ACCESSORS.contains(&m.text.as_str()) {
                    continue;
                }
            }
        }
        rhs.idents.push(t.text.clone());
    }
    rhs.idents.sort();
    rhs.idents.dedup();
    rhs
}

/// Binding extraction: `let pat = expr;` / `pat = expr;` reassignment /
/// `for pat in expr {`, including `if let` / `while let` forms.
fn extract_binds(body: &[Tok], out: &mut Vec<Bind>) {
    let mut k = 0usize;
    while k < body.len() {
        let t = &body[k];
        if t.kind != TokKind::Ident {
            k += 1;
            continue;
        }
        match t.text.as_str() {
            "let" => {
                let line = t.line;
                let cond_let = k
                    .checked_sub(1)
                    .and_then(|p| body.get(p))
                    .map(|p| p.text == "if" || p.text == "while")
                    .unwrap_or(false);
                // Pattern idents until `:` (type) or `=`.
                let mut vars = Vec::new();
                let mut m = k + 1;
                let mut saw_eq = false;
                while m < body.len() {
                    match body[m].text.as_str() {
                        "=" => {
                            saw_eq = true;
                            m += 1;
                            break;
                        }
                        ":" | ";" => break,
                        _ => {
                            if body[m].kind == TokKind::Ident && !is_keyword(&body[m].text) {
                                vars.push(body[m].text.clone());
                            }
                            m += 1;
                        }
                    }
                }
                // Skip an explicit type annotation to the `=`.
                if !saw_eq {
                    while m < body.len() && body[m].text != "=" && body[m].text != ";" {
                        m += 1;
                    }
                    if body.get(m).map(|x| x.text == "=").unwrap_or(false) {
                        saw_eq = true;
                        m += 1;
                    }
                }
                if saw_eq && !vars.is_empty() {
                    let end = rhs_end(body, m, cond_let);
                    out.push(Bind {
                        vars,
                        rhs: rhs_of(&body[m..end]),
                        line,
                    });
                    k = end;
                    continue;
                }
                k = m.max(k + 1);
            }
            "for" => {
                let line = t.line;
                let mut vars = Vec::new();
                let mut m = k + 1;
                while m < body.len() && body[m].text != "in" && body[m].text != "{" {
                    if body[m].kind == TokKind::Ident && !is_keyword(&body[m].text) {
                        vars.push(body[m].text.clone());
                    }
                    m += 1;
                }
                if body.get(m).map(|x| x.text == "in").unwrap_or(false) {
                    let end = rhs_end(body, m + 1, true);
                    if !vars.is_empty() {
                        out.push(Bind {
                            vars,
                            rhs: rhs_of(&body[m + 1..end]),
                            line,
                        });
                    }
                    k = end;
                    continue;
                }
                k = m.max(k + 1);
            }
            name if !is_keyword(name) => {
                // Reassignment `x = expr;` at statement start.
                let at_stmt_start = k == 0 || matches!(body[k - 1].text.as_str(), ";" | "{" | "}");
                if at_stmt_start
                    && body.get(k + 1).map(|n| n.text == "=").unwrap_or(false)
                    && body.get(k + 2).map(|n| n.text != "=").unwrap_or(false)
                {
                    let end = rhs_end(body, k + 2, false);
                    out.push(Bind {
                        vars: vec![name.to_string()],
                        rhs: rhs_of(&body[k + 2..end]),
                        line: t.line,
                    });
                    k = end;
                    continue;
                }
                k += 1;
            }
            _ => k += 1,
        }
    }
}

/// End index (exclusive) of an expression starting at `m`: runs to the
/// first `;` at local brace depth zero (or to `{` when `stop_at_brace`,
/// for `if let`/`while let`/`for` headers).
fn rhs_end(body: &[Tok], m: usize, stop_at_brace: bool) -> usize {
    let mut depth = 0i32;
    let mut k = m;
    while k < body.len() {
        match body[k].text.as_str() {
            "{" => {
                if stop_at_brace && depth == 0 {
                    return k;
                }
                depth += 1;
            }
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            }
            ";" if depth == 0 => return k,
            _ => {}
        }
        k += 1;
    }
    k
}

/// Sink extraction: strict float comparisons and unclamped indexing.
fn extract_sinks(body: &[Tok], out: &mut Vec<Sink>) {
    for (k, t) in body.iter().enumerate() {
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            let mut idents = Vec::new();
            let mut zero_lit = false;
            let mut nonzero_lit = false;
            let mut path_cmp = false;
            collect_cmp_side(
                body,
                k,
                true,
                &mut idents,
                &mut zero_lit,
                &mut nonzero_lit,
                &mut path_cmp,
            );
            collect_cmp_side(
                body,
                k,
                false,
                &mut idents,
                &mut zero_lit,
                &mut nonzero_lit,
                &mut path_cmp,
            );
            // A `::`-qualified operand (`status == LpStatus::Optimal`) is an
            // enum-variant or associated-const compare, not a raw float
            // compare — exact equality is the *point* there, so no sink.
            if path_cmp {
                continue;
            }
            idents.sort();
            idents.dedup();
            out.push(Sink {
                kind: SinkKind::StrictEq,
                idents,
                line: t.line,
                zero_cmp: zero_lit && !nonzero_lit,
                guarded: false,
            });
        }
        if t.text == "[" {
            let indexing = k
                .checked_sub(1)
                .and_then(|p| body.get(p))
                .map(|p| {
                    (p.kind == TokKind::Ident && !is_keyword(&p.text))
                        || p.text == ")"
                        || p.text == "]"
                })
                .unwrap_or(false);
            if !indexing {
                continue;
            }
            let mut depth = 1i32;
            let mut m = k + 1;
            let mut idents = Vec::new();
            let mut guarded = false;
            while m < body.len() && depth > 0 {
                match body[m].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    txt => {
                        if body[m].kind == TokKind::Ident && !is_keyword(txt) {
                            // `recv.m` / `recv.len()` read a dimension, not
                            // a value: skip the receiver and the accessor
                            // together.
                            if let (Some(dot), Some(field)) = (body.get(m + 1), body.get(m + 2)) {
                                let is_call = body.get(m + 3).map(|p| p.text == "(") == Some(true);
                                let shape = dot.text == "."
                                    && field.kind == TokKind::Ident
                                    && if is_call {
                                        SHAPE_ACCESSORS.contains(&field.text.as_str())
                                    } else {
                                        SHAPE_FIELDS.contains(&field.text.as_str())
                                    };
                                if shape {
                                    m += 3;
                                    continue;
                                }
                            }
                            if matches!(txt, "min" | "clamp" | "saturating_sub") {
                                guarded = true;
                            } else {
                                idents.push(txt.to_string());
                            }
                        }
                    }
                }
                m += 1;
            }
            if !idents.is_empty() {
                idents.sort();
                idents.dedup();
                out.push(Sink {
                    kind: SinkKind::Index,
                    idents,
                    line: body[k].line,
                    zero_cmp: false,
                    guarded,
                });
            }
        }
    }
}

/// Gathers one side of a `==`/`!=`: nearby value idents, literal flags,
/// and whether the operand is a `::`-qualified path (enum variant or
/// associated const — exact compares are intended there).
#[allow(clippy::too_many_arguments)]
fn collect_cmp_side(
    body: &[Tok],
    op: usize,
    left: bool,
    idents: &mut Vec<String>,
    zero_lit: &mut bool,
    nonzero_lit: &mut bool,
    path_cmp: &mut bool,
) {
    let mut steps = 0usize;
    let mut k = op;
    loop {
        let next = if left { k.checked_sub(1) } else { Some(k + 1) };
        let Some(n) = next else { break };
        let Some(t) = body.get(n) else { break };
        // Skip over bracket/paren groups so `out[0] == 1.5` still reaches
        // the receiver `out`.
        if left && (t.text == "]" || t.text == ")") {
            let closer = t.text.clone();
            let opener = if closer == "]" { "[" } else { "(" };
            let mut depth = 1i32;
            let mut j = n;
            while depth > 0 {
                let Some(p) = j.checked_sub(1) else { break };
                j = p;
                let Some(pt) = body.get(j) else { break };
                if pt.text == closer {
                    depth += 1;
                } else if pt.text == opener {
                    depth -= 1;
                }
            }
            if depth > 0 {
                break;
            }
            k = j;
            steps += 1;
            if steps >= 6 {
                break;
            }
            continue;
        }
        match t.kind {
            TokKind::Ident if !is_keyword(&t.text) => {
                // Shape accessors keep their receivers out (see rhs_of).
                let is_shape_recv = !left || !SHAPE_ACCESSORS.contains(&t.text.as_str());
                let is_call_name = body.get(n + 1).map(|x| x.text == "(").unwrap_or(false);
                if is_shape_recv && !is_call_name {
                    idents.push(t.text.clone());
                }
            }
            TokKind::Num => {
                if crate::rules::float_literal_is_zero(&t.text) {
                    *zero_lit = true;
                } else if crate::rules::is_float_literal_text(&t.text) {
                    *nonzero_lit = true;
                }
            }
            TokKind::Punct if t.text == "::" => *path_cmp = true,
            TokKind::Punct if matches!(t.text.as_str(), "." | "-") => {}
            _ => break,
        }
        steps += 1;
        k = n;
        if steps >= 6 {
            break;
        }
    }
}

/// Return-expression extraction: every `return expr;` plus the trailing
/// expression of the body (tokens after the last top-level `;`).
fn extract_rets(body: &[Tok], out: &mut Vec<Rhs>) {
    let mut k = 0usize;
    while k < body.len() {
        if body[k].kind == TokKind::Ident && body[k].text == "return" {
            let end = rhs_end(body, k + 1, false);
            if end > k + 1 {
                out.push(rhs_of(&body[k + 1..end]));
            }
            k = end;
            continue;
        }
        k += 1;
    }
    // Trailing expression: after the last `;` at body depth 1 (the slice
    // includes the outer braces, so depth 1 is the statement level).
    let mut depth = 0i32;
    let mut last_semi: Option<usize> = None;
    for (i, t) in body.iter().enumerate() {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => depth -= 1,
            ";" if depth == 1 => last_semi = Some(i),
            _ => {}
        }
    }
    let start = last_semi.map(|s| s + 1).unwrap_or(1);
    if start < body.len().saturating_sub(1) {
        let tail = &body[start..body.len() - 1];
        if tail.iter().any(|t| t.kind == TokKind::Ident) {
            out.push(rhs_of(tail));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_region_mask_of;

    fn parse(path: &str, src: &str) -> FileIr {
        let lexed = lex(src);
        let mask = test_region_mask_of(&lexed.toks);
        parse_file(path, &lexed, false, &mask)
    }

    #[test]
    fn module_paths_map_files_to_crates() {
        assert_eq!(
            module_path_of("crates/memlp-core/src/lib.rs"),
            vec!["memlp_core"]
        );
        assert_eq!(
            module_path_of("crates/memlp-core/src/newton.rs"),
            vec!["memlp_core", "newton"]
        );
        assert_eq!(module_path_of("src/lib.rs"), vec!["memlp"]);
        assert!(module_path_of("crates/memlp-core/tests/x.rs")[0].starts_with("__root_"));
    }

    #[test]
    fn fns_modules_impls_and_uses_are_recovered() {
        let ir = parse(
            "crates/memlp-core/src/m.rs",
            "use memlp_linalg::lu::{LuFactors, factor as lu_factor};\n\
             pub fn free() { helper(); }\n\
             fn helper() {}\n\
             mod inner { pub fn deep() {} }\n\
             impl Widget { pub fn method(&self) -> f64 { 1.0 } }\n",
        );
        assert_eq!(ir.uses.len(), 2);
        assert_eq!(ir.uses[1].alias, "lu_factor");
        assert_eq!(ir.uses[1].path, vec!["memlp_linalg", "lu", "factor"]);
        let names: Vec<&str> = ir.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["free", "helper", "deep", "method"]);
        assert_eq!(ir.fns[2].module, vec!["memlp_core", "m", "inner"]);
        assert_eq!(ir.fns[3].owner, "Widget");
        assert!(ir.fns[0].is_pub && !ir.fns[1].is_pub);
        assert_eq!(ir.fns[0].calls.len(), 1);
        assert_eq!(ir.fns[0].calls[0].path, vec!["helper"]);
    }

    #[test]
    fn pub_crate_is_not_public_api() {
        let ir = parse(
            "crates/memlp-core/src/m.rs",
            "pub(crate) fn internal() {}\npub fn api() {}\n",
        );
        assert!(!ir.fns[0].is_pub);
        assert!(ir.fns[1].is_pub);
    }

    #[test]
    fn seeds_capture_panic_and_entropy_tokens() {
        let ir = parse(
            "crates/memlp-core/src/m.rs",
            "fn f(o: Option<u8>) {\n    assert!(true);\n    o.unwrap();\n    let t = Instant::now();\n}\n",
        );
        let kinds: Vec<(&str, SeedKind)> = ir.fns[0]
            .seeds
            .iter()
            .map(|s| (s.what.as_str(), s.kind))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("assert!", SeedKind::Panic),
                (".unwrap()", SeedKind::Panic),
                ("Instant", SeedKind::Entropy),
            ]
        );
    }

    #[test]
    fn analog_annotation_attaches_to_next_fn() {
        let ir = parse(
            "crates/memlp-device/src/m.rs",
            "/// Reads the settled line voltages.\n/// memlp-lint: analog_source\npub fn read_lines() -> Vec<f64> { Vec::new() }\npub fn other() {}\n",
        );
        assert!(ir.fns[0].analog_source);
        assert!(!ir.fns[1].analog_source);
    }

    #[test]
    fn binds_sinks_and_rets_feed_the_taint_pass() {
        let ir = parse(
            "crates/memlp-core/src/m.rs",
            "fn f() -> f64 {\n    let v = read_adc();\n    let w = v + 1.0;\n    if w == 2.5 { return w; }\n    let i = idx(w);\n    table[i];\n    table[i.min(7)];\n    w\n}\n",
        );
        let f = &ir.fns[0];
        assert_eq!(f.binds[0].vars, vec!["v"]);
        assert_eq!(f.binds[0].rhs.calls[0].path, vec!["read_adc"]);
        assert!(f.binds[1].rhs.idents.contains(&"v".to_string()));
        let eqs: Vec<&Sink> = f
            .sinks
            .iter()
            .filter(|s| s.kind == SinkKind::StrictEq)
            .collect();
        assert_eq!(eqs.len(), 1);
        assert!(eqs[0].idents.contains(&"w".to_string()));
        let idx: Vec<&Sink> = f
            .sinks
            .iter()
            .filter(|s| s.kind == SinkKind::Index)
            .collect();
        assert_eq!(idx.len(), 2);
        assert!(!idx[0].guarded && idx[1].guarded);
        // Returns: the `return w;` statement and the trailing `w`.
        assert_eq!(f.rets.len(), 2);
        assert!(f.rets.iter().all(|r| r.idents.contains(&"w".to_string())));
    }

    #[test]
    fn test_regions_mark_fns_in_test() {
        let ir = parse(
            "crates/memlp-core/src/m.rs",
            "fn lib_fn() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n",
        );
        assert!(!ir.fns[0].in_test);
        assert!(ir.fns[1].in_test);
    }
}
