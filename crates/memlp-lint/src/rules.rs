//! Rule families and the scanning engine.
//!
//! Every rule maps to an invariant the paper's headline claims rest on
//! (see DESIGN.md §"Static guarantees"):
//!
//! * **determinism** — the Eqn 18 variation model and every solver result
//!   must be reproducible from a seed, so the solver crates may not touch
//!   wall clocks, unseeded RNGs, or unordered hash containers;
//! * **concurrency** — PR 1's bitwise thread-invariance proof lives in
//!   `memlp-linalg::parallel`; keeping every primitive there keeps the
//!   proof local;
//! * **panic-freedom** — library crates return their `Error` types instead
//!   of aborting mid-solve;
//! * **float hygiene** — strict `==`/`!=` against non-zero float literals
//!   is almost always a tolerance bug in solver code (exact-zero sparsity
//!   checks are exempt);
//! * **safety** — `#![forbid(unsafe_code)]` on every crate root, and no
//!   `unsafe` anywhere;
//! * **cross-file reachability & taint** (`reach::*`, `taint::*`) — the
//!   two-pass analyzer in [`crate::parser`] / [`crate::graph`] follows the
//!   workspace call graph to find invariant leaks no single file shows:
//!   panicking private helpers reachable from public API, entropy escaping
//!   the solver crates through any call chain, and analog readouts flowing
//!   into exact comparisons or unclamped indexing.
//!
//! This module owns the rule registry, the per-file token pass
//! ([`analyze_file`] — pass 1, content-addressed and cacheable), and the
//! directive (`memlp-lint: allow(...)`) machinery. The cross-file pass
//! lives in [`crate::graph`] and is stitched in by [`crate::lint_sources`].

use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::parser::{self, FileIr};

/// Finding severity. `Deny` findings fail the build; `Warn` findings are
/// advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory only.
    Warn,
    /// Fails the lint run (non-zero exit).
    Deny,
}

impl Severity {
    /// Lower-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One step of a cross-file call-chain witness: how the analyzer got from
/// the rule's anchor (public API, solver-crate entry, analog source) to
/// the finding site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessStep {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What this step is (e.g. `public API memlp_core::Solver::solve`,
    /// `calls helper() here`).
    pub label: String,
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier, e.g. `panic::unwrap`.
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// The trimmed source line.
    pub snippet: String,
    /// Call-chain witness (cross-file rules only; empty for token rules).
    pub witness: Vec<WitnessStep>,
}

/// Registry of every rule: (id, severity, summary). `--list-rules` prints
/// this table and `allow(...)` directives are validated against it.
pub const RULES: &[(&str, Severity, &str)] = &[
    (
        "determinism::wall-clock",
        Severity::Deny,
        "no Instant/SystemTime outside memlp-bench/memlp-serve; solver timing is the cost ledger",
    ),
    (
        "determinism::unseeded-rng",
        Severity::Deny,
        "no thread_rng/OsRng/from_entropy in determinism-critical crates; seed every stream",
    ),
    (
        "determinism::hash-container",
        Severity::Deny,
        "no HashMap/HashSet in determinism-critical crates; iteration order is unspecified",
    ),
    (
        "concurrency::primitive",
        Severity::Deny,
        "no thread::spawn/scope, Mutex, RwLock, atomics, … outside memlp-linalg::parallel and memlp-serve",
    ),
    (
        "net::socket",
        Severity::Deny,
        "no TcpListener/TcpStream/UdpSocket outside memlp-serve; the daemon owns the network edge",
    ),
    (
        "panic::unwrap",
        Severity::Deny,
        "no .unwrap() in non-test library code; return the crate's Error type",
    ),
    (
        "panic::expect",
        Severity::Deny,
        "no .expect() in non-test library code; return the crate's Error type",
    ),
    (
        "panic::panic-macro",
        Severity::Deny,
        "no panic!/todo!/unimplemented! in non-test library code",
    ),
    (
        "float::strict-eq",
        Severity::Deny,
        "no ==/!= against non-zero float literals in solver/linalg code; use a tolerance",
    ),
    (
        "safety::unsafe-code",
        Severity::Deny,
        "no unsafe blocks anywhere in the workspace",
    ),
    (
        "safety::forbid-unsafe-missing",
        Severity::Deny,
        "every crate root must carry #![forbid(unsafe_code)]",
    ),
    (
        "style::dbg-macro",
        Severity::Warn,
        "dbg! left in library code",
    ),
    (
        "lint::allow-missing-reason",
        Severity::Deny,
        "memlp-lint: allow(...) directives must carry reason = \"...\"",
    ),
    (
        "lint::unknown-rule",
        Severity::Deny,
        "memlp-lint: allow(...) names a rule that does not exist",
    ),
    (
        "lint::unused-allow",
        Severity::Warn,
        "memlp-lint: allow(...) directive suppressed nothing",
    ),
    (
        "reach::panic",
        Severity::Deny,
        "panicking private helper transitively reachable from public library API",
    ),
    (
        "reach::nondeterminism",
        Severity::Deny,
        "entropy/wall-clock source outside the solver crates reachable from solver code",
    ),
    (
        "taint::analog-exact",
        Severity::Deny,
        "analog readout flows into strict float ==/!= or unclamped indexing",
    ),
];

/// Long-form rationale for `--explain <rule>`. Every registry entry has
/// one; the cross-file rules also document their witness output.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "determinism::wall-clock" => {
            "Every solver result in this reproduction must replay bit-for-bit from a seed \
             (paper Eqn 18 / §4.1). `Instant`/`SystemTime` reads make control flow depend on \
             the host scheduler, so they are confined to the two crates whose job is timing: \
             memlp-bench (kernel measurement) and memlp-serve (request latency stamps and \
             load-gen percentiles, which never feed back into a solve). Everywhere else — \
             solver crates, the CLI, the lint tool — thread a simulated clock through the \
             cost ledger, or use the solver's iteration-tick deadlines (`IterationDeadline`)."
        }
        "determinism::unseeded-rng" => {
            "`thread_rng`/`OsRng`/`from_entropy` draw from ambient entropy, so two runs of \
             the same seed diverge. Construct a seeded `StdRng` stream (salted per block, as \
             in memlp-crossbar::fault) instead."
        }
        "determinism::hash-container" => {
            "`HashMap`/`HashSet` iteration order is unspecified and changes across runs and \
             toolchains. Solver paths iterate containers to build matrices and reports, so \
             use `BTreeMap`/`BTreeSet` or a `Vec`."
        }
        "concurrency::primitive" => {
            "PR 1's bitwise thread-invariance proof lives entirely in \
             memlp-linalg::parallel. Any primitive outside it (threads, locks, atomics, \
             channels) would need its own proof; route work through the shared pool. \
             memlp-serve is the one other crate allowed primitives: a daemon's accept \
             loop, admission queue, and worker pool are concurrency by definition, and \
             its determinism story is different — each *solve* replays bitwise on pooled \
             seeded hardware, while scheduling order is explicitly out of scope \
             (DESIGN.md §16)."
        }
        "net::socket" => {
            "Sockets are ambient, nondeterministic I/O and an availability surface. All \
             network access is confined to memlp-serve, whose framed length-prefixed \
             protocol, admission control, and drain lifecycle are property-tested; solver \
             crates stay pure functions of their seeds, and the CLI talks to the daemon \
             through memlp_serve::ServeClient rather than raw sockets."
        }
        "panic::unwrap" | "panic::expect" => {
            "Library code aborting mid-solve loses the trace and the partially-programmed \
             crossbar state. Return the crate's Error type; reserve panics for tests. If the \
             value is provably present, say why: \
             // memlp-lint: allow(panic::unwrap, reason = \"...\")."
        }
        "panic::panic-macro" => {
            "`panic!`/`todo!`/`unimplemented!` in non-test library code aborts the caller's \
             solve. Return an Error instead."
        }
        "float::strict-eq" => {
            "Strict equality against a non-zero float literal is a tolerance bug in solver \
             code: analog readouts and LU results carry quantization and variation error. \
             Compare with an epsilon. Exact-zero compares are exempt (structural sparsity)."
        }
        "safety::unsafe-code" => {
            "The workspace is 100% safe Rust; every kernel is written so the \
             autovectorizer, not unsafe SIMD, provides the speed (DESIGN.md §14)."
        }
        "safety::forbid-unsafe-missing" => {
            "`#![forbid(unsafe_code)]` on every crate root turns the no-unsafe policy into \
             a compiler guarantee that survives refactors."
        }
        "style::dbg-macro" => "`dbg!` is a leftover debugging aid; remove it before merging.",
        "lint::allow-missing-reason" => {
            "Escape hatches must be auditable: every `memlp-lint: allow(...)` carries \
             reason = \"...\" explaining why the invariant holds anyway."
        }
        "lint::unknown-rule" => {
            "The allow directive names a rule that is not in the registry — most likely a \
             typo; see --list-rules."
        }
        "lint::unused-allow" => {
            "The directive suppressed nothing on its own or the following line. For a \
             multi-rule directive `allow(a, b, reason = ...)` the message names which rule \
             went unused; delete the stale rule (or the whole directive)."
        }
        "reach::panic" => {
            "Cross-file pass. A private helper that can panic (unwrap/expect/panic!-family \
             or assert!-family) is transitively reachable from a public, non-test function \
             of a library crate: the panic is part of the public contract but invisible at \
             the API boundary. The finding prints the full call-chain witness, e.g.\n  \
             public API memlp_core::Solver::solve (solver.rs:120)\n  \
             -> calls assemble() (solver.rs:140)\n  \
             -> assemble: `assert_eq!` may panic here (newton.rs:88)\n\
             Return an Error through the chain, or allow at the seed with the invariant \
             that makes the panic unreachable."
        }
        "reach::nondeterminism" => {
            "Cross-file pass. A function in a determinism-critical solver crate can reach \
             — through any call chain, across crates and `use` aliases — a wall-clock or \
             ambient-RNG source that is per-file legal where it lives (bench/CLI code). \
             Entropy must not flow back into solver results; break the edge or move the \
             helper."
        }
        "taint::analog-exact" => {
            "Cross-file pass. A value derived from an analog readout (an API annotated \
             `memlp-lint: analog_source`, or any function the fixed point proves returns \
             one) flows into a strict float ==/!= or into slice indexing without clamping. \
             ADC outputs are only trustworthy inside the calibrated tolerance envelope \
             (paper Fig 5), so exact decisions on them are miscompiles of the math: compare \
             against a tolerance, or clamp before indexing. Exact-zero compares are exempt \
             (structural sparsity survives the ADC). The finding's witness traces \
             sink <- binding <- call <- ... <- annotated source."
        }
        _ => return None,
    })
}

/// Crates whose solver paths must be bit-reproducible (paper Eqn 18 /
/// §4.1): wall clocks, unseeded RNGs, and hash containers are banned.
pub(crate) const DETERMINISM_CRATES: &[&str] = &[
    "memlp-core",
    "memlp-linalg",
    "memlp-crossbar",
    "memlp-device",
    "memlp-noc",
    "memlp-solvers",
    "memlp-lp",
];

/// Crates whose numerics are tolerance-based: strict float equality against
/// a non-zero literal is flagged.
const FLOAT_CRATES: &[&str] = &["memlp-core", "memlp-linalg", "memlp-solvers"];

/// The only crates allowed to read wall clocks: the bench harness times
/// kernels, and the serve daemon stamps request latencies (which never
/// feed back into a solve). Everywhere else `Instant`/`SystemTime` is
/// banned — including the CLI and this lint tool, which carry explicit
/// allows where a human has argued the read is inert.
pub(crate) const WALL_CLOCK_CRATES: &[&str] = &["memlp-bench", "memlp-serve"];

/// Crates allowed to own concurrency primitives wholesale. The serving
/// daemon is concurrency by definition (accept loop, admission queue,
/// worker pool); its per-solve determinism contract is documented in
/// DESIGN.md §16. memlp-linalg is *not* listed: its `parallel` module
/// carries per-site allows so any new primitive there is still a
/// conscious decision.
pub(crate) const CONCURRENCY_CRATES: &[&str] = &["memlp-serve"];

/// The only crate allowed to open sockets; see `net::socket`.
pub(crate) const NET_CRATES: &[&str] = &["memlp-serve"];

/// Crates exempt from panic rules (the bench harness is allowed to abort).
pub(crate) const PANIC_EXEMPT_CRATES: &[&str] = &["memlp-bench"];

/// Severity of a registry rule (Deny for unknown ids, fail-closed).
pub(crate) fn severity_of(rule: &str) -> Severity {
    RULES
        .iter()
        .find(|(id, ..)| *id == rule)
        .map(|&(_, s, _)| s)
        .unwrap_or(Severity::Deny)
}

fn is_known_rule(rule: &str) -> bool {
    RULES.iter().any(|(id, ..)| *id == rule)
}

/// How a scanned file is classified, derived from its workspace-relative
/// path.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Crate the file belongs to (`memlp` for the root package).
    pub krate: String,
    /// True for integration tests / examples / benches (whole file is test
    /// scope).
    pub test_file: bool,
    /// True for `src/lib.rs` of a crate (the root package included).
    pub crate_root: bool,
}

impl FileCtx {
    /// Classifies a workspace-relative path.
    pub fn classify(rel: &str) -> FileCtx {
        let rel = rel.replace('\\', "/");
        let krate = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("memlp")
            .to_string();
        let test_file = rel.split('/').any(|seg| {
            seg == "tests" || seg == "examples" || seg == "benches" || seg == "fixtures"
        });
        let crate_root =
            rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"));
        FileCtx {
            krate,
            test_file,
            crate_root,
        }
    }
}

/// An `allow` escape-hatch directive parsed from a comment. A multi-rule
/// directive `allow(a, b, reason = "...")` expands to one `Directive` per
/// rule, sharing `line` and `group` size, so unused-allow reporting can
/// name exactly which rule went stale.
#[derive(Debug, Clone)]
pub struct Directive {
    /// The rule this directive suppresses.
    pub rule: String,
    /// 1-based line of the directive comment.
    pub line: u32,
    /// Set when the directive suppressed at least one finding (either
    /// pass).
    pub used: bool,
    /// Number of rules in the same comma-separated directive (1 = simple).
    pub group: usize,
}

impl Directive {
    /// True when this directive covers findings on `line` (its own line or
    /// the next, so trailing and line-above placements both work).
    pub fn covers(&self, line: u32) -> bool {
        line == self.line || line == self.line + 1
    }
}

/// Pass-1 result for one file: per-file findings (without `unused-allow`,
/// which is only decidable after the cross-file pass consumes directives),
/// the parsed directives, the item-level IR, and the file class.
#[derive(Debug, Clone)]
pub struct FileAnalysis {
    /// Workspace-relative path.
    pub path: String,
    /// Path classification.
    pub ctx: FileCtx,
    /// Token-rule findings, already directive-suppressed.
    pub findings: Vec<Finding>,
    /// Directives, with pass-1 usage recorded.
    pub directives: Vec<Directive>,
    /// Item-level IR for the cross-file pass.
    pub ir: FileIr,
    /// Per-line trimmed snippets the cross pass anchors findings to.
    pub snippets: Vec<String>,
}

impl FileAnalysis {
    /// Trimmed source line (1-based), or empty when out of range.
    pub fn snippet(&self, line: u32) -> String {
        self.snippets
            .get(line as usize - 1)
            .cloned()
            .unwrap_or_default()
    }
}

/// Pass 1: lex, token-scan, and parse one file. Pure in the file content
/// and path — this is the unit the content-hash cache stores.
pub fn analyze_file(rel_path: &str, src: &str) -> FileAnalysis {
    let ctx = FileCtx::classify(rel_path);
    let lexed = lex(src);
    let snippets: Vec<String> = src.lines().map(|l| l.trim().to_string()).collect();
    let snippet =
        |line: u32| -> String { snippets.get(line as usize - 1).cloned().unwrap_or_default() };

    let mut findings: Vec<Finding> = Vec::new();
    let mut directives = parse_directives(rel_path, &lexed.comments, &mut findings, &snippet);
    let test_mask = test_region_mask(&lexed.toks);

    scan_tokens(
        &ctx,
        rel_path,
        &lexed.toks,
        &test_mask,
        &mut findings,
        &snippet,
    );

    if ctx.crate_root && !has_forbid_unsafe(&lexed.toks) {
        findings.push(Finding {
            file: rel_path.to_string(),
            line: 1,
            rule: "safety::forbid-unsafe-missing",
            severity: severity_of("safety::forbid-unsafe-missing"),
            message: "crate root is missing `#![forbid(unsafe_code)]`".into(),
            snippet: snippet(1),
            witness: Vec::new(),
        });
    }

    // Apply suppressions: a directive covers its own line and the next one,
    // so it works both trailing (`stmt // memlp-lint: allow(...)`) and on
    // the line above the offending statement.
    findings.retain(|f| {
        if f.rule.starts_with("lint::") {
            return true;
        }
        for d in directives.iter_mut() {
            if d.rule == f.rule && d.covers(f.line) {
                d.used = true;
                return false;
            }
        }
        true
    });

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    let ir = parser::parse_file(rel_path, &lexed, ctx.test_file, &test_mask);
    FileAnalysis {
        path: rel_path.to_string(),
        ctx,
        findings,
        directives,
        ir,
        snippets,
    }
}

/// Emits `lint::unused-allow` warnings for directives neither pass used.
/// For multi-rule directives the message names the stale rule and notes
/// that a sibling rule did match, so the fix is precise.
pub fn unused_allow_findings(analysis: &FileAnalysis) -> Vec<Finding> {
    let mut out = Vec::new();
    for d in &analysis.directives {
        if d.used {
            continue;
        }
        let sibling_used = d.group > 1
            && analysis
                .directives
                .iter()
                .any(|o| o.line == d.line && o.used);
        let message = if sibling_used {
            let used: Vec<&str> = analysis
                .directives
                .iter()
                .filter(|o| o.line == d.line && o.used)
                .map(|o| o.rule.as_str())
                .collect();
            format!(
                "allow({}) suppressed nothing on this or the next line ({} in the same \
                 directive did — drop the stale rule)",
                d.rule,
                used.join(", ")
            )
        } else {
            format!(
                "allow({}) suppressed nothing on this or the next line",
                d.rule
            )
        };
        out.push(Finding {
            file: analysis.path.clone(),
            line: d.line,
            rule: "lint::unused-allow",
            severity: severity_of("lint::unused-allow"),
            message,
            snippet: analysis.snippet(d.line),
            witness: Vec::new(),
        });
    }
    out
}

/// Lints one file's source with the per-file token pass only. `rel_path`
/// drives the scope rules (which crate, test vs. library code). The full
/// pipeline — cross-file rules included — is [`crate::lint_str`] /
/// [`crate::lint_sources`].
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let analysis = analyze_file(rel_path, src);
    let mut findings = analysis.findings.clone();
    findings.extend(unused_allow_findings(&analysis));
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Parses `memlp-lint: allow(rule_a[, rule_b…], reason = "...")` directives
/// out of the comment stream. A directive must *start* the comment (after
/// the comment markers), so prose that merely mentions the syntax never
/// parses as one. Directives without a reason, or naming unknown rules,
/// become findings themselves (and do not suppress anything). One comment
/// may allow several rules; each is tracked separately for usage.
/// `memlp-lint: analog_source` fact annotations (consumed by the parser)
/// are recognized and skipped here.
/// Splits a directive's argument list (everything after the opening paren)
/// into top-level comma-separated parts. Commas and parens inside the
/// quoted reason string don't split or terminate; the scan stops at the
/// matching close paren (or end of comment for unterminated input, which
/// the reason check then rejects).
fn directive_args(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escape = false;
    for ch in s.chars() {
        if in_str {
            cur.push(ch);
            if escape {
                escape = false;
            } else if ch == '\\' {
                escape = true;
            } else if ch == '"' {
                in_str = false;
            }
            continue;
        }
        match ch {
            '"' => {
                in_str = true;
                cur.push(ch);
            }
            ',' => {
                parts.push(std::mem::take(&mut cur));
            }
            ')' => break,
            _ => cur.push(ch),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

fn parse_directives(
    rel_path: &str,
    comments: &[Comment],
    findings: &mut Vec<Finding>,
    snippet: &dyn Fn(u32) -> String,
) -> Vec<Directive> {
    let mut out = Vec::new();
    for c in comments {
        let content = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        {
            let Some(rest) = content.strip_prefix("memlp-lint:") else {
                continue;
            };
            let body = rest.trim_start();
            // Fact annotations are the parser's business, not suppressions.
            if body.starts_with("analog_source") {
                continue;
            }
            let Some(args) = body.strip_prefix("allow") else {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: c.line,
                    rule: "lint::allow-missing-reason",
                    severity: severity_of("lint::allow-missing-reason"),
                    message:
                        "malformed directive: expected `memlp-lint: allow(rule, reason = \"...\")`"
                            .into(),
                    snippet: snippet(c.line),
                    witness: Vec::new(),
                });
                continue;
            };
            let args = args.trim_start();
            let inner = args.strip_prefix('(').map(directive_args);
            let Some(inner) = inner else {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: c.line,
                    rule: "lint::allow-missing-reason",
                    severity: severity_of("lint::allow-missing-reason"),
                    message: "malformed directive: missing `(rule, reason = \"...\")`".into(),
                    snippet: snippet(c.line),
                    witness: Vec::new(),
                });
                continue;
            };
            // Every top-level part before the `reason = "..."` clause is a
            // rule name (the splitter ignores commas inside the quoted
            // reason and parens inside its text).
            let mut rules: Vec<String> = Vec::new();
            let mut has_reason = false;
            for part in inner {
                let part = part.trim();
                if let Some(r) = part.strip_prefix("reason") {
                    has_reason = r
                        .trim_start()
                        .strip_prefix('=')
                        .map(|v| v.trim_start())
                        .map(|v| v.starts_with('"') && v.len() > 2 && v[1..].contains('"'))
                        .unwrap_or(false);
                } else if !part.is_empty() {
                    rules.push(part.to_string());
                }
            }
            if rules.is_empty() {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: c.line,
                    rule: "lint::allow-missing-reason",
                    severity: severity_of("lint::allow-missing-reason"),
                    message: "malformed directive: missing `(rule, reason = \"...\")`".into(),
                    snippet: snippet(c.line),
                    witness: Vec::new(),
                });
                continue;
            }
            // One finding per reasonless directive (not per listed rule).
            if !has_reason {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: c.line,
                    rule: "lint::allow-missing-reason",
                    severity: severity_of("lint::allow-missing-reason"),
                    message: format!(
                        "allow({}) has no reason — every escape hatch must say why",
                        rules.join(", ")
                    ),
                    snippet: snippet(c.line),
                    witness: Vec::new(),
                });
            }
            let group = rules.len();
            for rule in rules {
                if !is_known_rule(&rule) {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: c.line,
                        rule: "lint::unknown-rule",
                        severity: severity_of("lint::unknown-rule"),
                        message: format!("allow names unknown rule `{rule}` (see --list-rules)"),
                        snippet: snippet(c.line),
                        witness: Vec::new(),
                    });
                } else if has_reason {
                    out.push(Directive {
                        rule,
                        line: c.line,
                        used: false,
                        group,
                    });
                }
            }
        }
    }
    out
}

/// Public alias for [`test_region_mask`] so the parser's unit tests share
/// the exact same notion of test scope.
#[cfg(test)]
pub(crate) fn test_region_mask_of(toks: &[Tok]) -> Vec<bool> {
    test_region_mask(toks)
}

/// Marks token index ranges covered by `#[cfg(test)]` / `#[test]` items so
/// panic/determinism/float rules skip unit-test code embedded in library
/// sources.
fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(after_attr) = test_attr_end(toks, i) {
            // Skip any further attributes between the test attribute and
            // the item (`#[cfg(test)] #[allow(...)] mod tests { … }`).
            let mut j = after_attr;
            while j + 1 < toks.len() && toks[j].text == "#" && toks[j + 1].text == "[" {
                let mut depth = 0usize;
                let mut k = j + 1;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                j = (k + 1).min(toks.len());
            }
            // The item body: everything to the matching `}` of its first
            // top-level `{`, or to a `;` for brace-less items.
            let mut k = j;
            let mut end = toks.len().saturating_sub(1);
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "{" => {
                        let mut depth = 0usize;
                        while k < toks.len() {
                            match toks[k].text.as_str() {
                                "{" => depth += 1,
                                "}" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                        end = k.min(toks.len() - 1);
                        break;
                    }
                    ";" => {
                        end = k;
                        break;
                    }
                    _ => k += 1,
                }
            }
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// If `toks[i..]` opens with `#[test]` or `#[cfg(test)]`, returns the index
/// one past the closing `]`.
fn test_attr_end(toks: &[Tok], i: usize) -> Option<usize> {
    if toks.get(i)?.text != "#" || toks.get(i + 1)?.text != "[" {
        return None;
    }
    let t2 = &toks.get(i + 2)?.text;
    if t2 == "test" && toks.get(i + 3)?.text == "]" {
        return Some(i + 4);
    }
    if t2 == "cfg"
        && toks.get(i + 3)?.text == "("
        && toks.get(i + 4)?.text == "test"
        && toks.get(i + 5)?.text == ")"
        && toks.get(i + 6)?.text == "]"
    {
        return Some(i + 7);
    }
    None
}

/// True when the token stream contains `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    const SEQ: &[&str] = &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
    toks.windows(SEQ.len())
        .any(|w| w.iter().zip(SEQ).all(|(t, s)| t.text == *s))
}

/// True for a float literal token (decimal point, exponent, or f32/f64
/// suffix; radix-prefixed integers are excluded). Shared with the parser's
/// sink extraction.
pub(crate) fn is_float_literal_text(text: &str) -> bool {
    is_float_literal(text)
}

/// True when a float literal is exactly zero; shared with the parser.
pub(crate) fn float_literal_is_zero(text: &str) -> bool {
    is_zero_literal(text)
}

/// True for a float literal token (decimal point, exponent, or f32/f64
/// suffix; radix-prefixed integers are excluded).
fn is_float_literal(text: &str) -> bool {
    let t = text.to_ascii_lowercase();
    if t.starts_with("0x") || t.starts_with("0o") || t.starts_with("0b") {
        return false;
    }
    t.contains('.') || t.ends_with("f32") || t.ends_with("f64") || {
        // `1e5`-style exponent with no dot.
        t.chars()
            .next()
            .map(|c| c.is_ascii_digit())
            .unwrap_or(false)
            && t.contains('e')
    }
}

/// True when a float literal is exactly zero (`0.0`, `0.`, `0f64`): exact
/// structural-sparsity checks against zero are well-defined and common in
/// the kernels, so they are exempt from `float::strict-eq`.
fn is_zero_literal(text: &str) -> bool {
    let t = text.to_ascii_lowercase();
    let mantissa: String = t
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .split('e')
        .next()
        .unwrap_or("")
        .chars()
        .filter(|c| *c != '_')
        .collect();
    !mantissa.is_empty() && mantissa.chars().all(|c| c == '0' || c == '.')
}

/// The token-scanning pass: emits at most one finding per (line, rule).
fn scan_tokens(
    ctx: &FileCtx,
    rel_path: &str,
    toks: &[Tok],
    test_mask: &[bool],
    findings: &mut Vec<Finding>,
    snippet: &dyn Fn(u32) -> String,
) {
    let determinism = DETERMINISM_CRATES.contains(&ctx.krate.as_str()) && !ctx.test_file;
    let float_scope = FLOAT_CRATES.contains(&ctx.krate.as_str()) && !ctx.test_file;
    let panic_scope = !PANIC_EXEMPT_CRATES.contains(&ctx.krate.as_str()) && !ctx.test_file;
    let clock_scope = !WALL_CLOCK_CRATES.contains(&ctx.krate.as_str()) && !ctx.test_file;
    let conc_scope = !CONCURRENCY_CRATES.contains(&ctx.krate.as_str());
    let net_scope = !NET_CRATES.contains(&ctx.krate.as_str()) && !ctx.test_file;

    let mut seen: Vec<(u32, &'static str)> = Vec::new();
    let mut emit = |line: u32, rule: &'static str, message: String| {
        if seen.contains(&(line, rule)) {
            return;
        }
        seen.push((line, rule));
        findings.push(Finding {
            file: rel_path.to_string(),
            line,
            rule,
            severity: severity_of(rule),
            message,
            snippet: snippet(line),
            witness: Vec::new(),
        });
    };

    for (idx, tok) in toks.iter().enumerate() {
        let in_test = test_mask.get(idx).copied().unwrap_or(false);
        let prev = idx.checked_sub(1).and_then(|p| toks.get(p));
        let next = toks.get(idx + 1);
        let text = tok.text.as_str();

        match tok.kind {
            TokKind::Ident => {
                // safety::unsafe-code — everywhere, test code included.
                if text == "unsafe" {
                    emit(
                        tok.line,
                        "safety::unsafe-code",
                        "`unsafe` is banned workspace-wide".into(),
                    );
                }

                // concurrency::primitive — everywhere outside the serve
                // daemon (tests included, so the thread-invariance suites
                // run under the same regime); memlp-linalg::parallel
                // carries explicit allows.
                let is_conc_ident = matches!(
                    text,
                    "Mutex" | "RwLock" | "Condvar" | "OnceLock" | "OnceCell" | "mpsc" | "Barrier"
                ) || (text.starts_with("Atomic")
                    && text.len() > "Atomic".len());
                let is_thread_call = text == "thread"
                    && next.map(|n| n.text == "::").unwrap_or(false)
                    && matches!(
                        toks.get(idx + 2).map(|t| t.text.as_str()),
                        Some("spawn") | Some("scope")
                    );
                if conc_scope && (is_conc_ident || is_thread_call) {
                    emit(
                        tok.line,
                        "concurrency::primitive",
                        format!(
                            "`{text}` outside memlp-linalg::parallel and memlp-serve — route \
                             threading through the shared pool so thread-invariance stays \
                             provable in one place"
                        ),
                    );
                }

                // net::socket — only the serve daemon opens sockets.
                if net_scope
                    && !in_test
                    && matches!(text, "TcpListener" | "TcpStream" | "UdpSocket")
                {
                    emit(
                        tok.line,
                        "net::socket",
                        format!(
                            "`{text}` outside memlp-serve — network I/O is confined to the \
                             daemon's framed protocol; talk to it through ServeClient"
                        ),
                    );
                }

                // determinism::wall-clock — everywhere except the two
                // timing crates (memlp-bench, memlp-serve).
                if clock_scope && !in_test && matches!(text, "Instant" | "SystemTime") {
                    emit(
                        tok.line,
                        "determinism::wall-clock",
                        format!(
                            "`{text}` outside memlp-bench/memlp-serve — time a solve via the \
                             cost ledger or bound it with IterationDeadline"
                        ),
                    );
                }

                if determinism && !in_test {
                    if matches!(text, "thread_rng" | "ThreadRng" | "OsRng" | "from_entropy")
                        || (text == "rand"
                            && next.map(|n| n.text == "::").unwrap_or(false)
                            && toks
                                .get(idx + 2)
                                .map(|t| t.text == "random")
                                .unwrap_or(false))
                    {
                        emit(
                            tok.line,
                            "determinism::unseeded-rng",
                            format!(
                                "`{text}` draws from ambient entropy — construct a seeded \
                                 StdRng so every solver run replays bit-for-bit (Eqn 18)"
                            ),
                        );
                    }
                    if matches!(text, "HashMap" | "HashSet") {
                        emit(
                            tok.line,
                            "determinism::hash-container",
                            format!(
                                "`{text}` iteration order is unspecified — use \
                                 BTreeMap/BTreeSet or a Vec in solver paths"
                            ),
                        );
                    }
                }

                if panic_scope && !in_test {
                    if matches!(text, "unwrap" | "expect")
                        && prev
                            .map(|p| p.text == "." || p.text == "::")
                            .unwrap_or(false)
                        && next.map(|n| n.text == "(").unwrap_or(false)
                    {
                        let rule: &'static str = if text == "unwrap" {
                            "panic::unwrap"
                        } else {
                            "panic::expect"
                        };
                        emit(
                            tok.line,
                            rule,
                            format!(
                                "`.{text}()` in non-test library code — return the crate's \
                                 Error type instead of aborting mid-solve"
                            ),
                        );
                    }
                    if matches!(text, "panic" | "todo" | "unimplemented")
                        && next.map(|n| n.text == "!").unwrap_or(false)
                    {
                        emit(
                            tok.line,
                            "panic::panic-macro",
                            format!("`{text}!` in non-test library code"),
                        );
                    }
                    if text == "dbg" && next.map(|n| n.text == "!").unwrap_or(false) {
                        emit(
                            tok.line,
                            "style::dbg-macro",
                            "`dbg!` left in library code".into(),
                        );
                    }
                }
            }
            TokKind::Punct if float_scope && !in_test && (text == "==" || text == "!=") => {
                // Literal on the right (allowing unary minus) or left.
                let rhs = match next {
                    Some(n) if n.text == "-" => toks.get(idx + 2),
                    other => other,
                };
                let lit = [prev, rhs].into_iter().flatten().find(|t| {
                    t.kind == TokKind::Num && is_float_literal(&t.text) && !is_zero_literal(&t.text)
                });
                if let Some(l) = lit {
                    emit(
                        tok.line,
                        "float::strict-eq",
                        format!(
                            "strict `{text}` against float literal `{}` — compare with a \
                             tolerance",
                            l.text
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_at(path: &str, src: &str) -> Vec<(u32, &'static str)> {
        lint_source(path, src)
            .into_iter()
            .map(|f| (f.line, f.rule))
            .collect()
    }

    #[test]
    fn registry_ids_are_unique() {
        for (i, (id, ..)) in RULES.iter().enumerate() {
            assert!(
                RULES.iter().skip(i + 1).all(|(other, ..)| other != id),
                "duplicate rule id {id}"
            );
        }
    }

    #[test]
    fn cfg_test_modules_are_exempt_from_panic_rules() {
        let src = "#![forbid(unsafe_code)]\nfn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(rules_at("crates/memlp-lp/src/x.rs", src)
            .iter()
            .all(|(_, r)| !r.starts_with("panic::")));
    }

    #[test]
    fn zero_float_comparisons_are_exempt() {
        let src = "fn f(x: f64) -> bool { x == 0.0 && x != 1.5 }\n";
        let got = rules_at("crates/memlp-linalg/src/x.rs", src);
        assert_eq!(got, vec![(1, "float::strict-eq")]);
    }

    #[test]
    fn forbid_attribute_is_required_on_crate_roots() {
        let got = rules_at("crates/memlp-lp/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(got, vec![(1, "safety::forbid-unsafe-missing")]);
        let got = rules_at(
            "crates/memlp-lp/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
        );
        assert!(got.is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_and_is_marked_used() {
        let src = "#![forbid(unsafe_code)]\n// memlp-lint: allow(panic::unwrap, reason = \"demo\")\nfn f() { Some(1).unwrap(); }\n";
        assert!(rules_at("crates/memlp-core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_its_own_finding() {
        let src = "// memlp-lint: allow(panic::unwrap)\nfn f() { Some(1).unwrap(); }\n";
        let got = rules_at("crates/memlp-core/src/x.rs", src);
        assert!(got.contains(&(1, "lint::allow-missing-reason")));
        assert!(got.contains(&(2, "panic::unwrap")));
    }
}
