#![forbid(unsafe_code)]
//! `memlp-lint` binary: lint the workspace, print findings, exit non-zero
//! on deny-level findings.
//!
//! ```text
//! memlp-lint [--root <path>] [--format human|json|sarif] [--list-rules]
//!            [--explain <rule>] [--no-cache] [--quiet]
//! ```
//!
//! Exit codes: `0` clean (warn findings allowed), `1` deny findings, `2`
//! usage or I/O error.
//!
//! By default pass-1 results are cached in `.memlp-lint-cache.json` at the
//! workspace root (content-hash keyed; the cross-file pass always re-runs,
//! so cached and cold runs print byte-identical output). `--no-cache`
//! neither reads nor writes the cache file.

use std::path::PathBuf;
use std::process::ExitCode;

use memlp_lint::rules::Severity;

enum Format {
    Human,
    Json,
    Sarif,
}

struct Args {
    root: Option<PathBuf>,
    format: Format,
    list_rules: bool,
    explain: Option<String>,
    no_cache: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Human,
        list_rules: false,
        explain: None,
        no_cache: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                args.root = Some(PathBuf::from(v));
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.format = Format::Json,
                Some("human") => args.format = Format::Human,
                Some("sarif") => args.format = Format::Sarif,
                other => return Err(format!("--format expects human|json|sarif, got {other:?}")),
            },
            "--explain" => {
                let v = it.next().ok_or("--explain needs a rule id")?;
                args.explain = Some(v);
            }
            // A bare `--` separator (e.g. from `cargo lint -- --flag` when
            // the alias already ends in `--`) is ignored.
            "--" => {}
            "--list-rules" => args.list_rules = true,
            "--no-cache" => args.no_cache = true,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => {
                return Err(
                    "usage: memlp-lint [--root <path>] [--format human|json|sarif] \
                            [--list-rules] [--explain <rule>] [--no-cache] [--quiet]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("memlp-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for (id, severity, summary) in memlp_lint::RULES {
            println!("{:<30} {:<5} {}", id, severity.label(), summary);
        }
        return ExitCode::SUCCESS;
    }

    if let Some(rule) = &args.explain {
        return match memlp_lint::rules::explain(rule) {
            Some(text) => {
                println!("{rule}\n");
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("memlp-lint: unknown rule `{rule}` (see --list-rules)");
                ExitCode::from(2)
            }
        };
    }

    let root = match args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| memlp_lint::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("memlp-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };
    if !root.is_dir() {
        eprintln!("memlp-lint: root {} is not a directory", root.display());
        return ExitCode::from(2);
    }

    let cache_path = root.join(memlp_lint::cache::CACHE_FILE);
    let cache_arg = if args.no_cache {
        None
    } else {
        Some(cache_path.as_path())
    };
    let report = match memlp_lint::lint_workspace_cached(&root, cache_arg) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("memlp-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    match args.format {
        Format::Json => print!("{}", report.to_json()),
        Format::Sarif => print!("{}", memlp_lint::sarif::to_sarif(&report)),
        Format::Human if !args.quiet => print!("{}", report.to_human()),
        Format::Human => {
            // Quiet mode: deny findings only, no snippets or witnesses.
            for f in report
                .findings
                .iter()
                .filter(|f| f.severity == Severity::Deny)
            {
                println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
            }
        }
    }

    if report.deny_count() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
