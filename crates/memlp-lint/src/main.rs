#![forbid(unsafe_code)]
//! `memlp-lint` binary: lint the workspace, print findings, exit non-zero
//! on deny-level findings.
//!
//! ```text
//! memlp-lint [--root <path>] [--format human|json] [--list-rules] [--quiet]
//! ```
//!
//! Exit codes: `0` clean (warn findings allowed), `1` deny findings, `2`
//! usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use memlp_lint::rules::Severity;

struct Args {
    root: Option<PathBuf>,
    json: bool,
    list_rules: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        list_rules: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                args.root = Some(PathBuf::from(v));
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("human") => args.json = false,
                other => return Err(format!("--format expects human|json, got {other:?}")),
            },
            // A bare `--` separator (e.g. from `cargo lint -- --flag` when
            // the alias already ends in `--`) is ignored.
            "--" => {}
            "--list-rules" => args.list_rules = true,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => {
                return Err("usage: memlp-lint [--root <path>] [--format human|json] \
                            [--list-rules] [--quiet]"
                    .into())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("memlp-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for (id, severity, summary) in memlp_lint::RULES {
            println!("{:<30} {:<5} {}", id, severity.label(), summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = match args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| memlp_lint::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("memlp-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };
    if !root.is_dir() {
        eprintln!("memlp-lint: root {} is not a directory", root.display());
        return ExitCode::from(2);
    }

    let report = match memlp_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("memlp-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if args.json {
        print!("{}", report.to_json());
    } else if !args.quiet {
        print!("{}", report.to_human());
    } else {
        // Quiet mode: deny findings only, no snippets.
        for f in report
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
        {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
    }

    if report.deny_count() > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
