#![forbid(unsafe_code)]
//! `memlp-lint` — the workspace's own static analyzer.
//!
//! The paper's headline claims (O(1) analog MVM, 8-bit quantized I/O,
//! reproducible solves under the Eqn 18 variation model) only hold in this
//! reproduction because every crate obeys rules the compiler cannot check:
//! seeded RNG streams only, no wall-clock dependence in solver paths, all
//! threading routed through `memlp-linalg::parallel`, and library code
//! that returns `Error` values instead of panicking mid-solve. This crate
//! walks every workspace source file with a hand-rolled lexer (no `syn`,
//! no dependencies at all) and enforces those rules; see
//! [`rules::RULES`] for the registry and DESIGN.md §"Static guarantees"
//! for the invariant-by-invariant rationale.
//!
//! Run it as `cargo lint` (alias), `cargo run -p memlp-lint`, or through
//! the library API:
//!
//! ```
//! let report = memlp_lint::lint_str(
//!     "crates/memlp-core/src/example.rs",
//!     "fn f() { Some(1).unwrap(); }",
//! );
//! assert_eq!(report.deny_count(), 1);
//! ```
//!
//! Findings can be suppressed per line with a directive comment that must
//! carry a reason (directives without one are themselves deny findings):
//!
//! ```text
//! // memlp-lint: allow(panic::expect, reason = "invariant: set by program()")
//! ```

pub mod cache;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod sarif;

use std::path::{Path, PathBuf};

pub use report::Report;
pub use rules::{Finding, Severity, WitnessStep, RULES};

/// Directories scanned inside the workspace root and inside each crate.
const SCAN_DIRS: &[&str] = &["src", "tests", "examples", "benches"];

/// Path fragments never scanned: third-party code, build output, and the
/// lint's own rule fixtures (deliberately-violating test data).
const EXCLUDED: &[&str] = &["vendor/", "target/", "crates/memlp-lint/tests/fixtures/"];

/// Lints a single in-memory source file (`rel_path` drives scope rules)
/// through the full two-pass pipeline. Cross-file rules see only this one
/// file, so findings they would derive from other files are absent — use
/// [`lint_sources`] to analyze a file set together.
pub fn lint_str(rel_path: &str, src: &str) -> Report {
    lint_sources(vec![(rel_path.to_string(), src.to_string())])
}

/// Full pipeline over an in-memory file set: pass 1 per file, pass 2
/// (call graph + fixed points) across all of them, then `unused-allow`
/// accounting once both passes have consumed directives.
pub fn lint_sources(files: Vec<(String, String)>) -> Report {
    let mut analyses: Vec<rules::FileAnalysis> = files
        .iter()
        .map(|(rel, src)| rules::analyze_file(rel, src))
        .collect();
    Report {
        findings: finish_pipeline(&mut analyses),
        files_scanned: files.len(),
    }
}

/// Pass 2 + unused-allow over pass-1 results (fresh or cache-loaded),
/// returning the merged, sorted finding list.
fn finish_pipeline(analyses: &mut [rules::FileAnalysis]) -> Vec<Finding> {
    let mut findings = graph::cross_findings(analyses);
    for a in analyses.iter() {
        findings.extend(a.findings.iter().cloned());
        findings.extend(rules::unused_allow_findings(a));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Collects the workspace-relative scan set under `root`, sorted: the
/// root package's `src`/`tests`/`examples`/`benches` plus the same four
/// directories of every crate under `crates/`, minus [`EXCLUDED`]. Public
/// so the coverage tests can pin the scan set itself, not just the count.
///
/// # Errors
///
/// Returns a description of the first unreadable directory.
pub fn workspace_files(root: &Path) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    for dir in SCAN_DIRS {
        collect_rs(&root.join(dir), root, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = read_dir_sorted(&crates_dir)?;
        entries.retain(|p| p.is_dir());
        for krate in entries {
            for dir in SCAN_DIRS {
                collect_rs(&krate.join(dir), root, &mut files)?;
            }
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

/// Lints every workspace source file under `root` (no cache).
///
/// # Errors
///
/// Returns a description of the first I/O failure (unreadable directory or
/// file).
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    lint_workspace_cached(root, None)
}

/// Lints the workspace with an optional incremental cache file. When
/// `cache_path` is `Some`, per-file pass-1 results are reloaded for files
/// whose content hash is unchanged and the cache is rewritten afterwards;
/// the cross-file pass always re-runs, so output is byte-identical with a
/// cold, warm, or absent cache.
///
/// # Errors
///
/// Returns a description of the first I/O failure. A corrupt or stale
/// cache is not an error — it reads as empty.
pub fn lint_workspace_cached(root: &Path, cache_path: Option<&Path>) -> Result<Report, String> {
    // Opt-in phase timing on stderr (stdout stays byte-stable).
    let timing = std::env::var_os("MEMLP_LINT_TIMING").is_some();
    // memlp-lint: allow(determinism::wall-clock, reason = "diagnostic phase timing printed to stderr behind MEMLP_LINT_TIMING; findings and exit code never depend on it")
    let t0 = std::time::Instant::now();
    let files = workspace_files(root)?;
    let mut cache = match cache_path {
        Some(p) => cache::Cache::load(p),
        None => cache::Cache::default(),
    };
    let t_load = t0.elapsed();

    let mut analyses = Vec::with_capacity(files.len());
    for rel in &files {
        let src =
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        let analysis = match cache.get(rel, &src) {
            Some(a) => a,
            None => {
                let a = rules::analyze_file(rel, &src);
                // Stored before the cross pass touches directives, so
                // cached usage flags reflect pass 1 only.
                cache.put(&a, &src);
                a
            }
        };
        analyses.push(analysis);
    }
    let t_pass1 = t0.elapsed();

    let findings = finish_pipeline(&mut analyses);
    let t_pass2 = t0.elapsed();
    if let Some(p) = cache_path {
        cache.retain_files(&files);
        // A fully-warm run leaves the file as-is (store is the expensive
        // half of the round trip).
        if cache.is_dirty() {
            cache.store(p)?;
        }
    }
    if timing {
        eprintln!(
            "memlp-lint timing: load {:?}, pass1 {:?} ({} hit / {} miss), pass2 {:?}, store {:?}",
            t_load,
            t_pass1 - t_load,
            cache.hits,
            cache.misses,
            t_pass2 - t_pass1,
            t0.elapsed() - t_pass2
        );
    }
    Ok(Report {
        findings,
        files_scanned: files.len(),
    })
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

/// Recursively collects workspace-relative `.rs` paths under `dir`,
/// in sorted (deterministic) order, honoring [`EXCLUDED`].
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    for path in read_dir_sorted(dir)? {
        let rel = path
            .strip_prefix(root)
            .map_err(|e| format!("path {}: {e}", path.display()))?
            .to_string_lossy()
            .replace('\\', "/");
        if EXCLUDED.iter().any(|ex| rel.starts_with(ex)) {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// `read_dir` with sorted results: directory iteration order is
/// filesystem-dependent, and this tool's own output must be deterministic.
fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut entries = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_str_counts_files_and_findings() {
        let r = lint_str("crates/memlp-core/src/x.rs", "fn ok() -> u8 { 1 }\n");
        assert_eq!(r.files_scanned, 1);
        assert_eq!(r.deny_count(), 0);
    }

    #[test]
    fn excluded_paths_are_skipped() {
        assert!(EXCLUDED
            .iter()
            .any(|e| "crates/memlp-lint/tests/fixtures/bad.rs".starts_with(e)));
    }
}
