//! Dense-vs-sparse Newton path equivalence on the crossbar solver.
//!
//! The sparse core is a *digital controller* substitution: the analog
//! physics (realized blocks, quantization, charging) is identical on both
//! paths, so the solves must agree — same step directions through the
//! shared ADC, identical iterate counts, matching objectives — while the
//! factorization counters show the sparse path doing strictly less digital
//! work on the sparse domain problems.

use memlp_core::{AugmentedSystem, CrossbarPdipSolver, CrossbarSolution, CrossbarSolverOptions};
use memlp_crossbar::CrossbarConfig;
use memlp_lp::domains::{
    assignment_lp, max_flow_lp, production_schedule_lp, transportation_lp, AssignmentProblem,
    MaxFlowNetwork, ProductionPlan, TransportationProblem,
};
use memlp_lp::generator::RandomLp;
use memlp_lp::{LpProblem, LpStatus};
use memlp_solvers::pdip::{PdipOptions, PdipState};
use memlp_solvers::SolvePath;

fn domain_suite() -> Vec<(&'static str, LpProblem)> {
    vec![
        (
            "transport",
            transportation_lp(&TransportationProblem::random(3, 9, 5)).expect("valid domain"),
        ),
        (
            "routing",
            max_flow_lp(&MaxFlowNetwork::random_layered(3, 3, 7)).expect("valid domain"),
        ),
        (
            "scheduling",
            production_schedule_lp(&ProductionPlan::random(4, 8, 9)).expect("valid domain"),
        ),
        (
            "assignment",
            assignment_lp(&AssignmentProblem::random(4, 11)).expect("valid domain"),
        ),
    ]
}

fn solve_with(lp: &LpProblem, path: SolvePath, seed: u64) -> CrossbarSolution {
    let mut opts = CrossbarSolverOptions::default();
    opts.pdip.path = path;
    CrossbarPdipSolver::new(CrossbarConfig::paper_default().with_seed(seed), opts).solve(lp)
}

#[test]
fn domain_lps_are_sparse_enough_for_auto() {
    for (name, lp) in domain_suite() {
        assert!(
            SolvePath::Auto.use_sparse(lp.density()),
            "{name}: density {} should resolve Auto to the sparse path",
            lp.density()
        );
    }
}

#[test]
fn iterate_counts_and_objectives_match_across_paths() {
    // Routing is excluded here: its zero-rhs conservation rows leave no
    // strict interior, so paper-default variation makes the solve fail on
    // *both* paths (path-independently) via chaotic failure branches; see
    // `routing_matches_on_ideal_hardware` for its equivalence check.
    for (name, lp) in domain_suite() {
        if name == "routing" {
            continue;
        }
        let dense = solve_with(&lp, SolvePath::Dense, 3);
        let sparse = solve_with(&lp, SolvePath::Sparse, 3);
        assert_eq!(
            dense.solution.status, sparse.solution.status,
            "{name}: status diverged"
        );
        assert_eq!(dense.solution.status, LpStatus::Optimal, "{name}");
        assert_eq!(
            dense.solution.iterations, sparse.solution.iterations,
            "{name}: iterate counts diverged"
        );
        let rel = (dense.solution.objective - sparse.solution.objective).abs()
            / (1.0 + dense.solution.objective.abs());
        assert!(rel < 1e-7, "{name}: objective rel diff {rel}");
    }
}

#[test]
fn routing_matches_on_ideal_hardware() {
    let lp = max_flow_lp(&MaxFlowNetwork::random_layered(3, 3, 7)).expect("valid domain");
    let run = |path: SolvePath| {
        let mut opts = CrossbarSolverOptions::default();
        opts.pdip.path = path;
        CrossbarPdipSolver::new(CrossbarConfig::ideal().with_seed(3), opts).solve(&lp)
    };
    let dense = run(SolvePath::Dense);
    let sparse = run(SolvePath::Sparse);
    assert_eq!(dense.solution.status, LpStatus::Optimal);
    assert_eq!(sparse.solution.status, LpStatus::Optimal);
    assert_eq!(dense.solution.iterations, sparse.solution.iterations);
    let rel = (dense.solution.objective - sparse.solution.objective).abs()
        / (1.0 + dense.solution.objective.abs());
    assert!(rel < 1e-7, "objective rel diff {rel}");
}

#[test]
fn sparse_path_engages_and_reduces_factorization_flops() {
    for (name, lp) in domain_suite() {
        let dense = solve_with(&lp, SolvePath::Dense, 5);
        let sparse = solve_with(&lp, SolvePath::Sparse, 5);
        assert!(
            sparse.trace.factors.factorizations > 0,
            "{name}: sparse path never factored"
        );
        assert!(
            sparse.trace.factors.flops < dense.trace.factors.flops,
            "{name}: sparse flops {} not below dense {}",
            sparse.trace.factors.flops,
            dense.trace.factors.flops
        );
        assert!(
            sparse.trace.factors.factor_nnz < dense.trace.factors.factor_nnz,
            "{name}: sparse fill {} not below dense {}",
            sparse.trace.factors.factor_nnz,
            dense.trace.factors.factor_nnz
        );
    }
}

#[test]
fn forced_sparse_agrees_on_dense_random_lps() {
    // The sparse path must stay correct even where it is not profitable:
    // a fully dense random A (density ≈ 1).
    for seed in [1, 2, 3] {
        let lp = RandomLp::paper(15, seed).feasible();
        assert!(lp.density() > 0.5, "random LP should be dense");
        let dense = solve_with(&lp, SolvePath::Dense, seed);
        let sparse = solve_with(&lp, SolvePath::Sparse, seed);
        assert_eq!(dense.solution.status, LpStatus::Optimal, "seed {seed}");
        assert_eq!(
            dense.solution.iterations, sparse.solution.iterations,
            "seed {seed}: iterate counts diverged"
        );
        let rel = (dense.solution.objective - sparse.solution.objective).abs()
            / (1.0 + dense.solution.objective.abs());
        assert!(rel < 1e-7, "seed {seed}: objective rel diff {rel}");
    }
}

#[test]
fn auto_matches_explicit_selection() {
    let (_, lp) = domain_suite().remove(0);
    let auto = solve_with(&lp, SolvePath::Auto, 9);
    let sparse = solve_with(&lp, SolvePath::Sparse, 9);
    assert_eq!(auto.solution.iterations, sparse.solution.iterations);
    assert_eq!(auto.trace.factors, sparse.trace.factors);
}

#[test]
fn directions_identical_through_shared_adc() {
    // Same hardware seed → identical realized blocks; the two digital
    // factorizations differ only at floating-point noise, which the shared
    // ADC read-out quantizes away: the solved directions must be equal to
    // 1e-9 relative (and in practice bitwise).
    let lp = transportation_lp(&TransportationProblem::random(3, 9, 5)).expect("valid domain");
    let opts = PdipOptions::default();
    let state = PdipState::new(&lp, &opts);
    let run = |path: SolvePath| {
        let mut hw = memlp_core::HwContext::new(CrossbarConfig::paper_default().with_seed(17));
        let mut sys = AugmentedSystem::program(&lp, &state, &mut hw);
        sys.set_solve_path(path);
        let mu = state.mu(opts.delta);
        let s = sys.s_vector(&state);
        let ms = sys.mvm(&s, &mut hw);
        let constant = sys.rhs_constant(&lp, mu);
        let r = sys.assemble_rhs(&constant, &ms);
        sys.solve(&r, &mut hw).expect("solvable realized system")
    };
    let d = run(SolvePath::Dense);
    let sp = run(SolvePath::Sparse);
    let scale = d
        .dirs
        .dx
        .iter()
        .chain(&d.dirs.dy)
        .fold(0.0f64, |m, v| m.max(v.abs()));
    for (got, want) in sp
        .dirs
        .dx
        .iter()
        .chain(&sp.dirs.dy)
        .chain(&sp.dirs.dz)
        .chain(&sp.dirs.dw)
        .zip(
            d.dirs
                .dx
                .iter()
                .chain(&d.dirs.dy)
                .chain(&d.dirs.dz)
                .chain(&d.dirs.dw),
        )
    {
        assert!(
            (got - want).abs() <= 1e-9 * scale,
            "direction mismatch: {got} vs {want}"
        );
    }
}
