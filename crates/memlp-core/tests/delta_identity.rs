//! Delta programming must be a pure cost optimization: on fault-free
//! hardware, a solve with `delta_writes` on returns **bit-for-bit** the
//! same solution, iteration records, and recovery events as a full
//! re-program run, at every worker count. Only the ledger's written/skipped
//! split may differ — and it must differ conservatively: written + skipped
//! under delta equals written under full reprogramming.

use memlp_core::{
    CrossbarPdipSolver, CrossbarSolution, CrossbarSolverOptions, LargeScaleOptions,
    LargeScaleSolver,
};
use memlp_crossbar::CrossbarConfig;
use memlp_linalg::parallel::with_threads;
use memlp_lp::{generator::RandomLp, LpProblem};

const THREADS: [usize; 3] = [1, 2, 8];

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Unwraps a per-item batch result; none of these instances trip admission.
fn ok_batch<T, E: std::fmt::Debug>(v: Vec<Result<T, E>>) -> Vec<T> {
    v.into_iter()
        .map(|r| r.expect("batch item admitted"))
        .collect()
}

fn config(seed: u64, delta: bool) -> CrossbarConfig {
    CrossbarConfig::paper_default()
        .with_variation(5.0)
        .with_seed(seed)
        .with_delta_writes(delta)
}

fn problems() -> Vec<LpProblem> {
    (0..3u64)
        .map(|s| RandomLp::paper(24, 620 + s).feasible())
        .collect()
}

/// Identical observable solve behaviour: solution bits, per-iteration
/// records, and recovery events. The ledger is *excluded* on purpose — the
/// written/skipped split is the one thing delta programming changes.
fn assert_same_behaviour(a: &CrossbarSolution, b: &CrossbarSolution, ctx: &str) {
    assert_eq!(a.solution.status, b.solution.status, "{ctx}: status");
    assert_eq!(bits(&a.solution.x), bits(&b.solution.x), "{ctx}: x");
    assert_eq!(bits(&a.solution.y), bits(&b.solution.y), "{ctx}: y");
    assert_eq!(
        a.solution.objective.to_bits(),
        b.solution.objective.to_bits(),
        "{ctx}: objective"
    );
    assert_eq!(a.solution.iterations, b.solution.iterations, "{ctx}: iters");
    assert_eq!(a.retries_used, b.retries_used, "{ctx}: retries");
    assert_eq!(a.trace.records, b.trace.records, "{ctx}: trace records");
    assert_eq!(a.trace.events, b.trace.events, "{ctx}: trace events");
}

/// Delta accounting must be lossless: every pulse the delta run skipped is
/// one the full run executed.
fn assert_conserved(delta: &CrossbarSolution, full: &CrossbarSolution, ctx: &str) {
    let d = delta.ledger.counts();
    let f = full.ledger.counts();
    assert_eq!(
        d.setup_writes + d.update_writes + d.skipped_writes,
        f.setup_writes + f.update_writes + f.skipped_writes,
        "{ctx}: write conservation"
    );
    assert_eq!(f.skipped_writes, 0, "{ctx}: full reprogram never skips");
    assert!(
        d.skipped_writes > 0,
        "{ctx}: delta run skipped nothing — test is vacuous"
    );
}

#[test]
fn alg1_delta_matches_full_reprogram_at_all_thread_counts() {
    let lps = problems();
    let opts = CrossbarSolverOptions {
        // A refresh cadence exercises the static-block rewrite path, where
        // delta programming skips the most pulses.
        refresh_every: 5,
        ..CrossbarSolverOptions::default()
    };
    let on = CrossbarPdipSolver::new(config(7, true), opts);
    let off = CrossbarPdipSolver::new(config(7, false), opts);
    let baseline = ok_batch(with_threads(1, || off.solve_batch(&lps, 1)));
    for threads in THREADS {
        let got = ok_batch(with_threads(threads, || on.solve_batch(&lps, threads)));
        for (i, (full, delta)) in baseline.iter().zip(&got).enumerate() {
            let ctx = format!("alg1 lp {i} at {threads} threads");
            assert_same_behaviour(delta, full, &ctx);
            assert_conserved(delta, full, &ctx);
        }
    }
}

#[test]
fn alg2_delta_matches_full_reprogram_at_all_thread_counts() {
    let lps = problems();
    let on = LargeScaleSolver::new(config(9, true), LargeScaleOptions::default());
    let off = LargeScaleSolver::new(config(9, false), LargeScaleOptions::default());
    let baseline = ok_batch(with_threads(1, || off.solve_batch(&lps, 1)));
    for threads in THREADS {
        let got = ok_batch(with_threads(threads, || on.solve_batch(&lps, threads)));
        for (i, (full, delta)) in baseline.iter().zip(&got).enumerate() {
            let ctx = format!("alg2 lp {i} at {threads} threads");
            assert_same_behaviour(delta, full, &ctx);
            assert_conserved(delta, full, &ctx);
        }
    }
}

/// The trace's write stats mirror the ledger and expose the skip fraction.
#[test]
fn trace_write_stats_mirror_the_ledger() {
    let lp = RandomLp::paper(24, 621).feasible();
    let res = CrossbarPdipSolver::new(config(7, true), CrossbarSolverOptions::default()).solve(&lp);
    let c = res.ledger.counts();
    let w = res.trace.writes;
    assert_eq!(w.cells_written, c.setup_writes + c.update_writes);
    assert_eq!(w.cells_skipped, c.skipped_writes);
    assert_eq!(w.rebuilds_avoided, c.rebuilds_avoided);
    assert!(w.rebuilds_avoided > 0, "workspace reuse never engaged");
    assert!(w.skip_fraction() >= 0.0 && w.skip_fraction() < 1.0);
}
