//! Acceptance tests for the fault-recovery ladder: at 1% stuck cells plus
//! roughly one dead word line per array, both solvers must return
//! `Optimal` within the paper's Fig 5 accuracy envelope (rel err ≤ 0.10)
//! with recovery enabled, while the *same seeds* fail or leave the envelope
//! with recovery disabled — proving the ladder, not luck, delivers the
//! answer. Every escalation rung must be visible in both the
//! [`RecoveryReport`] and the solve trace.

use memlp_core::{
    CrossbarPdipSolver, CrossbarSolverOptions, LargeScaleOptions, LargeScaleSolver, RecoveryEvent,
    RecoveryPolicy,
};
use memlp_crossbar::{CrossbarConfig, FaultModel};
use memlp_lp::{generator::RandomLp, LpStatus};
use memlp_solvers::{LpSolver, NormalEqPdip};

/// Fig 5 envelope: the paper reports ≤ 9.9% relative objective error.
const ENVELOPE: f64 = 0.10;

/// 1% total stuck cells (split evenly on/off) plus a dead word-line rate
/// sized so each block draws about one dead row.
fn faulty_model() -> FaultModel {
    FaultModel::new(0.005, 0.005)
        .and_then(|m| m.with_dead_lines(0.04, 0.0))
        .expect("valid fault rates")
}

fn config(seed: u64) -> CrossbarConfig {
    CrossbarConfig::paper_default()
        .with_seed(seed)
        .with_faults(faulty_model())
}

fn alg1(seed: u64, recovery: RecoveryPolicy) -> CrossbarPdipSolver {
    CrossbarPdipSolver::new(
        config(seed),
        CrossbarSolverOptions {
            recovery,
            ..CrossbarSolverOptions::default()
        },
    )
}

fn alg2(seed: u64, recovery: RecoveryPolicy) -> LargeScaleSolver {
    LargeScaleSolver::new(
        config(seed),
        LargeScaleOptions {
            recovery,
            ..LargeScaleOptions::default()
        },
    )
}

fn rel_err(objective: f64, reference: f64) -> f64 {
    (objective - reference).abs() / (1.0 + reference.abs())
}

#[test]
fn alg1_recovers_where_no_recovery_fails() {
    for seed in [2u64, 4, 9, 12] {
        let lp = RandomLp::paper(24, 900 + seed).feasible();
        let reference = NormalEqPdip::default().solve(&lp);

        let on = alg1(seed, RecoveryPolicy::Full).solve(&lp);
        assert_eq!(
            on.solution.status,
            LpStatus::Optimal,
            "seed {seed} with recovery: {}",
            on.solution
        );
        let on_err = rel_err(on.solution.objective, reference.objective);
        assert!(on_err <= ENVELOPE, "seed {seed}: rel err {on_err}");
        assert!(on.recovery.saw_faults(), "seed {seed}: no faults detected");

        let off = alg1(seed, RecoveryPolicy::Disabled).solve(&lp);
        let off_ok = off.solution.status == LpStatus::Optimal
            && rel_err(off.solution.objective, reference.objective) <= ENVELOPE;
        assert!(
            !off_ok,
            "seed {seed}: recovery off should fail or leave the envelope, got {}",
            off.solution
        );
    }
}

#[test]
fn alg2_recovers_where_no_recovery_fails() {
    for seed in [2u64, 3, 7] {
        let lp = RandomLp::paper(24, 900 + seed).feasible();
        let reference = NormalEqPdip::default().solve(&lp);

        let on = alg2(seed, RecoveryPolicy::Full).solve(&lp);
        assert_eq!(
            on.solution.status,
            LpStatus::Optimal,
            "seed {seed} with recovery: {}",
            on.solution
        );
        let on_err = rel_err(on.solution.objective, reference.objective);
        assert!(on_err <= ENVELOPE, "seed {seed}: rel err {on_err}");
        assert!(on.recovery.saw_faults(), "seed {seed}: no faults detected");

        let off = alg2(seed, RecoveryPolicy::Disabled).solve(&lp);
        let off_ok = off.solution.status == LpStatus::Optimal
            && rel_err(off.solution.objective, reference.objective) <= ENVELOPE;
        assert!(
            !off_ok,
            "seed {seed}: recovery off should fail or leave the envelope, got {}",
            off.solution
        );
    }
}

/// Seed 2 climbs the whole ladder on both solvers: write–verify detection,
/// weak-cell re-programming, spare-line remapping, variation redraw, and
/// the digital fallback — all of it recorded, and mirrored into the trace.
#[test]
fn every_ladder_rung_is_recorded() {
    let lp = RandomLp::paper(24, 900).feasible();
    for res in [
        alg1(2, RecoveryPolicy::Full).solve(&lp),
        alg2(2, RecoveryPolicy::Full).solve(&lp),
    ] {
        let has = |f: &dyn Fn(&RecoveryEvent) -> bool| res.recovery.events.iter().any(f);
        assert!(has(&|e| matches!(
            e,
            RecoveryEvent::FaultsDetected { stuck_cells, .. } if *stuck_cells > 0
        )));
        assert!(has(&|e| matches!(
            e,
            RecoveryEvent::FaultsDetected { dead_rows, .. } if *dead_rows > 0
        )));
        assert!(has(&|e| matches!(
            e,
            RecoveryEvent::Reprogrammed { repaired, .. } if *repaired > 0
        )));
        assert!(has(&|e| matches!(
            e,
            RecoveryEvent::Remapped { rows, .. } if *rows > 0
        )));
        assert!(has(&|e| matches!(e, RecoveryEvent::VariationRedraw { .. })));
        // The digital ladder climbs the cheap first-order rung first and
        // only escalates to the dense PDIP rung if PDHG fails to certify.
        assert!(has(&|e| matches!(
            e,
            RecoveryEvent::FirstOrderFallback { .. } | RecoveryEvent::DigitalFallback { .. }
        )));
        assert!(res.recovery.used_digital_fallback());
        // The trace mirrors the report event-for-event.
        assert_eq!(res.trace.events, res.recovery.events);
    }
}

#[test]
fn disabled_policy_detects_but_never_acts() {
    let lp = RandomLp::paper(24, 902).feasible();
    for res in [
        alg1(2, RecoveryPolicy::Disabled).solve(&lp),
        alg2(2, RecoveryPolicy::Disabled).solve(&lp),
    ] {
        assert!(res.recovery.saw_faults());
        assert!(!res.recovery.events.iter().any(|e| matches!(
            e,
            RecoveryEvent::Reprogrammed { .. }
                | RecoveryEvent::Remapped { .. }
                | RecoveryEvent::FirstOrderFallback { .. }
                | RecoveryEvent::DigitalFallback { .. }
        )));
    }
}

#[test]
fn hardware_policy_never_uses_the_digital_fallback() {
    let lp = RandomLp::paper(24, 902).feasible();
    for res in [
        alg1(2, RecoveryPolicy::Hardware).solve(&lp),
        alg2(2, RecoveryPolicy::Hardware).solve(&lp),
    ] {
        assert!(!res.recovery.used_digital_fallback());
        // Hardware rungs still climbed.
        assert!(res
            .recovery
            .events
            .iter()
            .any(|e| matches!(e, RecoveryEvent::Remapped { .. })));
    }
}

/// Fault-free hardware must report a clean ledger: no detections, no
/// escalations, no digital fallback — the recovery machinery is inert.
#[test]
fn clean_hardware_reports_no_recovery() {
    let lp = RandomLp::paper(24, 910).feasible();
    let res = CrossbarPdipSolver::new(
        CrossbarConfig::paper_default().with_seed(5),
        CrossbarSolverOptions::default(),
    )
    .solve(&lp);
    assert_eq!(res.solution.status, LpStatus::Optimal);
    assert!(!res.recovery.saw_faults());
    assert!(!res.recovery.used_digital_fallback());
    assert!(res.trace.events.is_empty() || !res.recovery.saw_faults());
}

/// Genuinely infeasible problems stay Infeasible even with defective
/// hardware and the full ladder: the digital fallback re-derives the
/// certificate from the true problem rather than masking it.
#[test]
fn genuine_infeasibility_survives_the_ladder() {
    for seed in [2u64, 3] {
        let lp = RandomLp::paper(24, 950 + seed).infeasible();
        let res = alg1(seed, RecoveryPolicy::Full).solve(&lp);
        assert_eq!(
            res.solution.status,
            LpStatus::Infeasible,
            "seed {seed}: {}",
            res.solution
        );
    }
}
