//! The dense-core allocation guard (DESIGN.md §14): a realized system
//! whose `(n+m)²` dense core exceeds `DENSE_CORE_LIMIT_BYTES` must refuse
//! the dense factorization with a structured error instead of attempting
//! the allocation, while `SolvePath::Auto` reroutes the same system to the
//! sparse path and solves it.
//!
//! The instance is the smallest shipped domain past the guard: assignment
//! with k = 128 agents gives n = k² = 16 384, m = 2k = 256, so the core is
//! dim = 16 640 and its dense buffer 8·dim² ≈ 2.2 GB — just over the
//! 2 GiB limit. (The bench-scale wall is assignment@512 at ~35 GB; the
//! guard condition is identical, this one just programs in test time.)

use memlp_core::{AugmentedSystem, HwContext, DENSE_CORE_LIMIT_BYTES};
use memlp_crossbar::CrossbarConfig;
use memlp_lp::domains::{assignment_lp, AssignmentProblem};
use memlp_lp::LpProblem;
use memlp_solvers::pdip::{CoreSolveError, PdipOptions, PdipState, SolvePath};

fn oversized_lp() -> LpProblem {
    assignment_lp(&AssignmentProblem::random(128, 7)).expect("valid assignment instance")
}

fn rhs_for(
    sys: &mut AugmentedSystem,
    lp: &LpProblem,
    state: &PdipState,
    hw: &mut HwContext,
) -> Vec<f64> {
    let mu = state.mu(PdipOptions::default().delta);
    let constant = sys.rhs_constant(lp, mu);
    let s = sys.s_vector(state);
    let ms = sys.mvm(&s, hw);
    sys.assemble_rhs(&constant, &ms)
}

#[test]
fn dense_path_refuses_oversized_core_and_auto_reroutes_sparse() {
    let lp = oversized_lp();
    let n = lp.num_vars();
    let m = lp.num_constraints();
    let dim = n + m;
    let bytes = 8 * (dim as u64) * (dim as u64);
    assert!(
        bytes > DENSE_CORE_LIMIT_BYTES,
        "instance must actually exceed the guard ({bytes} <= {DENSE_CORE_LIMIT_BYTES})"
    );

    let mut hw = HwContext::new(CrossbarConfig::ideal());
    let state = PdipState::new(&lp, &PdipOptions::default());
    let mut sys = AugmentedSystem::program(&lp, &state, &mut hw);
    let r = rhs_for(&mut sys, &lp, &state, &mut hw);

    // An explicit dense request reports the structured refusal — with the
    // exact dimension and byte count, so callers can log actionable sizes.
    sys.set_solve_path(SolvePath::Dense);
    let err = sys
        .solve(&r, &mut hw)
        .expect_err("dense path must refuse the oversized core");
    assert_eq!(
        err,
        CoreSolveError::CoreTooLarge {
            dim,
            bytes,
            limit: DENSE_CORE_LIMIT_BYTES,
        }
    );
    let msg = err.to_string();
    assert!(
        msg.contains("dense Newton core") && msg.contains("sparse"),
        "error must name the failure and the way out: {msg}"
    );

    // Auto reroutes to the sparse factorization and produces directions of
    // the full augmented dimension.
    sys.set_solve_path(SolvePath::Auto);
    let aug = sys
        .solve(&r, &mut hw)
        .expect("Auto must solve the oversized core via the sparse path");
    assert_eq!(aug.dirs.dx.len(), n);
    assert_eq!(aug.dirs.dy.len(), m);
}

#[test]
fn singular_error_still_reports_as_singular() {
    // The Result refactor must not re-label the pre-existing singularity
    // path: a zero complementarity diagonal is `Singular`, not
    // `CoreTooLarge`.
    let msg = CoreSolveError::Singular.to_string();
    assert!(msg.contains("singular"), "unexpected message: {msg}");
}
