//! Deterministic replay under faults: a fault-injected solve — including
//! every recovery escalation and the structured [`RecoveryReport`] — must be
//! **bit-for-bit** identical at every worker count. Fault plans come from
//! dedicated salted seed streams, transient upsets from a per-attempt
//! stream, and batch fan-out isolates one deterministic `HwContext` per
//! problem, so `MEMLP_THREADS` (here pinned via `parallel::with_threads`)
//! must never leak into results.

use memlp_core::{
    CrossbarPdipSolver, CrossbarSolution, CrossbarSolverOptions, LargeScaleOptions,
    LargeScaleSolver, RecoveryPolicy,
};
use memlp_crossbar::{CrossbarConfig, FaultModel};
use memlp_linalg::parallel::with_threads;
use memlp_lp::{generator::RandomLp, LpProblem};

const THREADS: [usize; 3] = [1, 2, 8];

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Unwraps a per-item batch result; none of these instances trip admission.
fn ok_batch<T, E: std::fmt::Debug>(v: Vec<Result<T, E>>) -> Vec<T> {
    v.into_iter()
        .map(|r| r.expect("batch item admitted"))
        .collect()
}

/// Faults on every axis the plan supports, plus transient read upsets.
fn faulty_config(seed: u64) -> CrossbarConfig {
    let faults = FaultModel::new(0.006, 0.004)
        .and_then(|m| m.with_dead_lines(0.03, 0.01))
        .and_then(|m| m.with_transients(1e-3))
        .expect("valid fault rates");
    CrossbarConfig::paper_default()
        .with_variation(5.0)
        .with_seed(seed)
        .with_faults(faults)
}

fn problems() -> Vec<LpProblem> {
    (0..4u64)
        .map(|s| RandomLp::paper(16, 700 + s).feasible())
        .collect()
}

/// Full structural equality of two solve results, with float payloads
/// compared bitwise.
fn assert_identical(a: &CrossbarSolution, b: &CrossbarSolution, ctx: &str) {
    assert_eq!(a.solution.status, b.solution.status, "{ctx}: status");
    assert_eq!(bits(&a.solution.x), bits(&b.solution.x), "{ctx}: x");
    assert_eq!(bits(&a.solution.y), bits(&b.solution.y), "{ctx}: y");
    assert_eq!(
        a.solution.objective.to_bits(),
        b.solution.objective.to_bits(),
        "{ctx}: objective"
    );
    assert_eq!(a.solution.iterations, b.solution.iterations, "{ctx}: iters");
    assert_eq!(a.retries_used, b.retries_used, "{ctx}: retries");
    assert_eq!(a.ledger, b.ledger, "{ctx}: ledger");
    assert_eq!(a.trace, b.trace, "{ctx}: trace");
    assert_eq!(a.recovery, b.recovery, "{ctx}: recovery report");
}

#[test]
fn alg1_fault_solve_is_bitwise_thread_invariant() {
    let lps = problems();
    let solver = CrossbarPdipSolver::new(
        faulty_config(11),
        CrossbarSolverOptions {
            recovery: RecoveryPolicy::Full,
            ..CrossbarSolverOptions::default()
        },
    );
    let baseline = ok_batch(with_threads(1, || solver.solve_batch(&lps, 1)));
    assert!(
        baseline.iter().any(|r| r.recovery.saw_faults()),
        "fault injection inert — test is vacuous"
    );
    for threads in THREADS {
        let got = ok_batch(with_threads(threads, || solver.solve_batch(&lps, threads)));
        for (i, (a, b)) in baseline.iter().zip(&got).enumerate() {
            assert_identical(a, b, &format!("alg1 lp {i} at {threads} threads"));
        }
    }
}

#[test]
fn alg2_fault_solve_is_bitwise_thread_invariant() {
    let lps = problems();
    let solver = LargeScaleSolver::new(
        faulty_config(13),
        LargeScaleOptions {
            recovery: RecoveryPolicy::Full,
            ..LargeScaleOptions::default()
        },
    );
    let baseline = ok_batch(with_threads(1, || solver.solve_batch(&lps, 1)));
    assert!(
        baseline.iter().any(|r| r.recovery.saw_faults()),
        "fault injection inert — test is vacuous"
    );
    for threads in THREADS {
        let got = ok_batch(with_threads(threads, || solver.solve_batch(&lps, threads)));
        for (i, (a, b)) in baseline.iter().zip(&got).enumerate() {
            assert_identical(a, b, &format!("alg2 lp {i} at {threads} threads"));
        }
    }
}

/// Repeated solves on the same solver instance must also replay exactly —
/// each call builds a fresh deterministic `HwContext`, so no state bleeds
/// between solves.
#[test]
fn repeated_fault_solves_replay_exactly() {
    let lp = RandomLp::paper(16, 701).feasible();
    let solver = CrossbarPdipSolver::new(
        faulty_config(11),
        CrossbarSolverOptions {
            recovery: RecoveryPolicy::Full,
            ..CrossbarSolverOptions::default()
        },
    );
    let a = solver.solve(&lp);
    let b = solver.solve(&lp);
    assert_identical(&a, &b, "repeat solve");
}
