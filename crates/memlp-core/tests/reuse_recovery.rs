//! The recovery ladder across **warm context reuse** — the serving-pool
//! path where one `HwContext` outlives many solves.
//!
//! Contract under test: defects are a property of the silicon, not of a
//! solve. A warm context keeps its fault plans, repairs and line remaps
//! across [`HwContext::begin_reuse`], so (1) a repeat solve on repaired
//! hardware succeeds *without* re-climbing the ladder, (2) a new problem
//! landing on fresh blocks of the same reused array still triggers
//! detection and escalation, and (3) the pool-reset path (a fresh context
//! with a bumped seed, what `memlp-serve` does after confirmed-defective
//! hardware) redraws the fault plans and still detects/escalates rather
//! than inheriting stale state.

use memlp_core::{Budget, CrossbarPdipSolver, CrossbarSolverOptions, HwContext, RecoveryPolicy};
use memlp_crossbar::{CrossbarConfig, FaultModel};
use memlp_lp::generator::RandomLp;
use memlp_lp::LpStatus;

fn faulty_config(seed: u64) -> CrossbarConfig {
    let faults = FaultModel::new(0.006, 0.004)
        .and_then(|m| m.with_dead_lines(0.03, 0.01))
        .expect("valid fault rates");
    CrossbarConfig::paper_default()
        .with_variation(5.0)
        .with_seed(seed)
        .with_faults(faults)
}

fn solver() -> CrossbarPdipSolver {
    CrossbarPdipSolver::new(
        faulty_config(11),
        CrossbarSolverOptions {
            recovery: RecoveryPolicy::Full,
            ..CrossbarSolverOptions::default()
        },
    )
}

#[test]
fn warm_reuse_keeps_repairs_and_does_not_reescalate() {
    let lp = RandomLp::paper(16, 701).feasible();
    let s = solver();
    let mut hw = HwContext::new(faulty_config(11));

    let first = s.solve_on(&lp, &mut hw, Budget::none(), None, 0);
    assert_eq!(first.solution.status, LpStatus::Optimal);
    assert!(
        first.recovery.saw_faults(),
        "fault injection inert — test is vacuous"
    );
    assert!(first.recovery.escalations() >= 1, "ladder never climbed");

    // Repeat solves on the same warm array: the repairs and remaps from
    // the first solve persist, so the ladder has nothing left to do.
    for salt in 1..=2u64 {
        let warm = (first.solution.x.as_slice(), first.solution.y.as_slice());
        let again = s.solve_on(&lp, &mut hw, Budget::none(), Some(warm), salt);
        assert_eq!(again.solution.status, LpStatus::Optimal, "reuse {salt}");
        assert!(
            again.recovery.escalations() <= first.recovery.escalations(),
            "reuse {salt} re-climbed the ladder: {} > {}",
            again.recovery.escalations(),
            first.recovery.escalations()
        );
    }
}

#[test]
fn new_blocks_on_a_reused_context_still_escalate() {
    let small = RandomLp::paper(16, 701).feasible();
    let big = RandomLp::paper(24, 702).feasible();
    let s = solver();
    let mut hw = HwContext::new(faulty_config(11));

    let first = s.solve_on(&small, &mut hw, Budget::none(), None, 0);
    assert_eq!(first.solution.status, LpStatus::Optimal);
    assert!(first.recovery.saw_faults());

    // A different problem shape programs different physical blocks: their
    // fault plans are drawn fresh (salted per block key), so detection
    // and recovery must fire again on the *same* context.
    let second = s.solve_on(&big, &mut hw, Budget::none(), None, 1);
    assert_eq!(second.solution.status, LpStatus::Optimal);
    assert!(
        second.recovery.saw_faults(),
        "new blocks on a reused array must still be verified for defects"
    );
}

/// The whole reuse sequence is deterministic: replaying it from scratch
/// reproduces every solution and recovery report bitwise.
#[test]
fn reuse_sequence_replays_bitwise() {
    let run = || {
        let lp = RandomLp::paper(16, 701).feasible();
        let s = solver();
        let mut hw = HwContext::new(faulty_config(11));
        let mut out = Vec::new();
        let first = s.solve_on(&lp, &mut hw, Budget::none(), None, 0);
        for salt in 1..=2u64 {
            let warm = (first.solution.x.as_slice(), first.solution.y.as_slice());
            let r = s.solve_on(&lp, &mut hw, Budget::none(), Some(warm), salt);
            out.push((
                r.solution.status,
                r.solution.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                r.solution.objective.to_bits(),
                r.recovery.clone(),
                r.ledger,
            ));
        }
        out.push((
            first.solution.status,
            first.solution.x.iter().map(|v| v.to_bits()).collect(),
            first.solution.objective.to_bits(),
            first.recovery,
            first.ledger,
        ));
        out
    };
    assert_eq!(run(), run(), "warm-reuse sequence must replay bitwise");
}

/// The pool-reset path: a replacement context (bumped seed — what the
/// serve worker fabricates after confirmed-defective hardware) redraws
/// its fault plans and still detects and recovers, rather than
/// inheriting the predecessor's repairs or going blind.
#[test]
fn reset_contexts_redraw_plans_and_still_escalate() {
    let lp = RandomLp::paper(16, 701).feasible();
    let s = solver();

    let mut worn = HwContext::new(faulty_config(11));
    let first = s.solve_on(&lp, &mut worn, Budget::none(), None, 0);
    assert!(first.recovery.saw_faults());

    // Fresh silicon, new seed: same fault *model*, independent defects.
    let mut replacement = HwContext::new(faulty_config(11).with_seed(0xD15EA5E));
    let redrawn = s.solve_on(&lp, &mut replacement, Budget::none(), None, 0);
    assert_eq!(redrawn.solution.status, LpStatus::Optimal);
    assert!(
        redrawn.recovery.saw_faults(),
        "replacement array must be write-verified from scratch"
    );
    // Independent defect draws: the recovery transcripts differ.
    assert_ne!(
        first.recovery, redrawn.recovery,
        "a reset must redraw fault plans, not replay the worn array's"
    );
}
