//! Direct tests of the Eqn-14a augmented system against the textbook
//! Newton system it must reproduce.

use memlp_core::{AugmentedSystem, HwContext};
use memlp_crossbar::CrossbarConfig;
use memlp_linalg::ops;
use memlp_lp::generator::RandomLp;
use memlp_solvers::pdip::{PdipOptions, PdipState};
use memlp_solvers::{DensePdip, LpSolver};

/// Ideal hardware (no variation, 16-bit converters) for exact comparisons.
fn ideal_hw() -> HwContext {
    HwContext::new(CrossbarConfig::ideal())
}

#[test]
fn dimensions_follow_eqn_14a() {
    let lp = RandomLp::paper(18, 1).feasible();
    let n = lp.num_vars();
    let m = lp.num_constraints();
    let state = PdipState::new(&lp, &PdipOptions::default());
    let mut hw = ideal_hw();
    let sys = AugmentedSystem::program(&lp, &state, &mut hw);
    // k = columns of A with negatives + rows of A with negatives.
    let k = sys.num_compensations();
    assert!(k > 0, "mixed-sign A must need compensation");
    assert_eq!(sys.dim(), 3 * n + 3 * m + k);
    assert_eq!(sys.s_vector(&state).len(), sys.dim());
}

#[test]
fn mvm_consistency_rows_vanish() {
    // Rows R5–R7 of M·s encode u = −w, v = −z, p = −(x|y)_sel; on ideal
    // hardware they must evaluate to ~0 (quantization only).
    let lp = RandomLp::paper(15, 3).feasible();
    let state = PdipState::new(&lp, &PdipOptions::default());
    let mut hw = ideal_hw();
    let sys = AugmentedSystem::program(&lp, &state, &mut hw);
    let s = sys.s_vector(&state);
    let ms = sys.mvm(&s, &mut hw);
    let n = lp.num_vars();
    let m = lp.num_constraints();
    let scale = ops::inf_norm(&ms).max(1.0);
    for (i, v) in ms[2 * (n + m)..].iter().enumerate() {
        assert!(
            v.abs() < 1e-3 * scale,
            "consistency row {i} is {v} (scale {scale})"
        );
    }
}

#[test]
fn mvm_rows_3_4_are_twice_the_complementarity_products() {
    let lp = RandomLp::paper(12, 5).feasible();
    let mut state = PdipState::new(&lp, &PdipOptions::default());
    // Non-uniform state exercises the diagonal blocks properly.
    for (i, v) in state.x.iter_mut().enumerate() {
        *v = 0.5 + 0.1 * i as f64;
    }
    for (i, v) in state.z.iter_mut().enumerate() {
        *v = 1.5 - 0.05 * i as f64;
    }
    let mut hw = ideal_hw();
    let sys = AugmentedSystem::program(&lp, &state, &mut hw);
    let s = sys.s_vector(&state);
    let ms = sys.mvm(&s, &mut hw);
    let n = lp.num_vars();
    let m = lp.num_constraints();
    // Row block R3 = Z·x + X·z = 2·XZe.
    for j in 0..n {
        let expect = 2.0 * state.x[j] * state.z[j];
        let got = ms[m + n + j];
        assert!(
            (got - expect).abs() < 0.02 * expect.abs().max(1.0),
            "R3[{j}]: {got} vs {expect}"
        );
    }
}

#[test]
fn augmented_solve_matches_dense_newton_directions() {
    // On ideal hardware the augmented system's (Δx, Δy, Δw, Δz) must match
    // the full Eqn-12 system solved in f64 (they are algebraically the
    // same system; the compensation rows only re-encode negativity).
    let lp = RandomLp::paper(12, 7).feasible();
    let opts = PdipOptions::default();
    let state = PdipState::new(&lp, &opts);
    let mut hw = ideal_hw();
    let mut sys = AugmentedSystem::program(&lp, &state, &mut hw);

    let mu = state.mu(opts.delta);
    let constant = sys.rhs_constant(&lp, mu);
    let s = sys.s_vector(&state);
    let ms = sys.mvm(&s, &mut hw);
    let r = sys.assemble_rhs(&constant, &ms);
    let aug = sys
        .solve(&r, &mut hw)
        .expect("ideal hardware must not be singular");

    // Reference: one DensePdip iteration's directions, reproduced here via
    // its public solve on a single-iteration budget is impractical;
    // instead verify the Newton equations directly.
    let a = lp.a();
    let rho = state.primal_residual(&lp);
    let sigma = state.dual_residual(&lp);
    let n = lp.num_vars();
    let m = lp.num_constraints();

    // (9a): A·Δx + Δw = ρ.
    let adx = a.matvec(&aug.dirs.dx);
    for i in 0..m {
        let got = adx[i] + aug.dirs.dw[i];
        assert!(
            (got - rho[i]).abs() < 2e-2 * (1.0 + rho[i].abs()),
            "(9a) row {i}: {got} vs {}",
            rho[i]
        );
    }
    // (9b): Aᵀ·Δy − Δz = σ.
    let atdy = a.matvec_transposed(&aug.dirs.dy);
    for j in 0..n {
        let got = atdy[j] - aug.dirs.dz[j];
        assert!(
            (got - sigma[j]).abs() < 2e-2 * (1.0 + sigma[j].abs()),
            "(9b) row {j}"
        );
    }
    // (9c): Z·Δx + X·Δz = µe − XZe.
    for j in 0..n {
        let got = state.z[j] * aug.dirs.dx[j] + state.x[j] * aug.dirs.dz[j];
        let expect = mu - state.x[j] * state.z[j];
        assert!(
            (got - expect).abs() < 2e-2 * (1.0 + expect.abs()),
            "(9c) row {j}"
        );
    }
    // Consistency variables mirror their primaries.
    for (du, dw) in aug.du.iter().zip(&aug.dirs.dw) {
        assert!(
            (du + dw).abs() < 2e-2 * (1.0 + dw.abs()),
            "Δu = −Δw violated"
        );
    }
    for (dv, dz) in aug.dv.iter().zip(&aug.dirs.dz) {
        assert!(
            (dv + dz).abs() < 2e-2 * (1.0 + dz.abs()),
            "Δv = −Δz violated"
        );
    }
}

#[test]
fn augmented_path_agrees_with_dense_pdip_on_objective() {
    // Full-solve agreement (ideal hardware vs f64 software).
    let lp = RandomLp::paper(21, 9).feasible();
    let sw = DensePdip::default().solve(&lp);
    let hw = memlp_core::CrossbarPdipSolver::new(
        CrossbarConfig::ideal(),
        memlp_core::CrossbarSolverOptions::default(),
    )
    .solve(&lp);
    assert!(hw.solution.status.is_optimal());
    let rel = (hw.solution.objective - sw.objective).abs() / (1.0 + sw.objective.abs());
    assert!(rel < 5e-3, "ideal hardware should be near-exact: {rel}");
}

#[test]
fn ageing_scales_static_blocks_and_refresh_restores_them() {
    use memlp_crossbar::CrossbarConfig;
    use memlp_device::DriftModel;

    let lp = RandomLp::paper(12, 13).feasible();
    let state = PdipState::new(&lp, &PdipOptions::default());
    let cfg = CrossbarConfig {
        drift: DriftModel::exponential(1.0),
        ..CrossbarConfig::ideal()
    };
    let mut hw = HwContext::new(cfg);
    let mut sys = AugmentedSystem::program(&lp, &state, &mut hw);

    // One second of drift at τ = 1 s decays static coefficients by 1/e.
    let s = sys.s_vector(&state);
    let before = sys.mvm(&s, &mut hw);
    sys.age(1.0, &hw);
    let after = sys.mvm(&s, &mut hw);
    let m = lp.num_constraints();
    // Row block 1 = A′x + w + A″p: the A-parts decay, so outputs shrink in
    // magnitude for rows dominated by static coefficients.
    let shrunk = (0..m)
        .filter(|&i| after[i].abs() < before[i].abs() - 1e-9)
        .count();
    assert!(shrunk > 0, "drift must visibly decay the static blocks");

    // Refresh restores pristine values (ideal hardware → exact).
    sys.refresh_static(&mut hw);
    let restored = sys.mvm(&s, &mut hw);
    for (r, b) in restored.iter().zip(&before) {
        assert!((r - b).abs() < 2e-3 * b.abs().max(1.0), "{r} vs {b}");
    }
}

#[test]
fn update_diagonals_uses_run_phase_budget() {
    let lp = RandomLp::paper(12, 11).feasible();
    let state = PdipState::new(&lp, &PdipOptions::default());
    let mut hw = ideal_hw();
    let mut sys = AugmentedSystem::program(&lp, &state, &mut hw);
    let before = hw.ledger().counts();
    sys.update_diagonals(&state, &mut hw);
    let after = hw.ledger().counts();
    let n = lp.num_vars() as u64;
    let m = lp.num_constraints() as u64;
    // The state is unchanged, so delta programming may skip any of the
    // 2(n+m) pulses — but the whole rewrite stays in the run-phase budget.
    assert_eq!(
        (after.update_writes + after.skipped_writes)
            - (before.update_writes + before.skipped_writes),
        2 * (n + m),
        "one full X/Y/Z/W rewrite"
    );
    assert_eq!(after.setup_writes, before.setup_writes);
}
