//! Occupancy-indexed analog operands for the block-structured hardware
//! context.
//!
//! [`HwContext`](crate::HwContext) realizes each solver block as one
//! logical array region, but physically a block larger than a single
//! crossbar is a *grid* of `ANALOG_TILE_SIDE`-square tiles coordinated
//! over the NoC — the same geometry [`memlp_noc::TiledCrossbar`] models
//! at device level. A [`TiledMatrix`] carries a realized block together
//! with the [`TileOccupancy`] of its **planned** coefficients, so the
//! MVM scheduling and the cost model can skip tiles that were never
//! fabricated (DESIGN.md §18).
//!
//! Bitwise contract: with elision on, only live tiles are visited, in
//! the same fixed row-major order the full sweep uses; an elided tile's
//! contribution is an exact `±0.0` that IEEE addition cannot observe
//! (the accumulators never hold `-0.0`), so fault-free products are
//! bitwise identical with elision on or off, and independent of thread
//! count (the sweeps are serial per output line).

use memlp_crossbar::TileOccupancy;
use memlp_linalg::{ops, Matrix};

/// Tile side the analog operand planes are partitioned at — the §3.4
/// sub-array granularity the NoC schedules, finer than the single-array
/// manufacturing limit so occupancy can resolve block structure inside
/// one array's worth of operand.
pub const ANALOG_TILE_SIDE: usize = 128;

/// A realized operand block plus the occupancy index of its planned
/// coefficients.
///
/// The occupancy is always built from *planned* (target) values, never
/// from the realized (analog) read-back: letting variation- or
/// fault-skewed values decide which tiles exist would make hardware
/// noise load-bearing (the taint::analog-exact regime memlp-lint
/// enforces). With faults configured the realized block can hold
/// nonzero values inside planned-dead tiles only when elision is *off*
/// (the hardware exists and can be stuck-on); with elision on those
/// tiles have no hardware, which is why the bitwise on/off guarantee is
/// scoped to fault-free domains.
#[derive(Debug, Clone)]
pub struct TiledMatrix {
    realized: Matrix,
    occ: TileOccupancy,
    elide: bool,
}

impl TiledMatrix {
    /// Wraps a realized block with the occupancy of its planned values.
    /// `elide` gates live-tile scheduling (off = full-grid sweep).
    pub fn from_parts(realized: Matrix, occ: TileOccupancy, elide: bool) -> Self {
        debug_assert_eq!((realized.rows(), realized.cols()), occ.shape());
        TiledMatrix {
            realized,
            occ,
            elide,
        }
    }

    /// Builds the occupancy from `planned` and wraps `realized`.
    pub fn new(planned: &Matrix, realized: Matrix, tile_side: usize, elide: bool) -> Self {
        TiledMatrix::from_parts(
            realized,
            TileOccupancy::from_matrix(planned, tile_side),
            elide,
        )
    }

    /// The occupancy index.
    pub fn occupancy(&self) -> &TileOccupancy {
        &self.occ
    }

    /// The realized block.
    pub fn realized(&self) -> &Matrix {
        &self.realized
    }

    /// Rows of the operand.
    pub fn rows(&self) -> usize {
        self.realized.rows()
    }

    /// Columns of the operand.
    pub fn cols(&self) -> usize {
        self.realized.cols()
    }

    /// Whether live-tile elision is in force.
    pub fn elides(&self) -> bool {
        self.elide
    }

    /// Tiles an MVM drives: live only under elision, the full grid
    /// otherwise.
    pub fn scheduled_tiles(&self) -> usize {
        if self.elide {
            self.occ.live_tiles()
        } else {
            self.occ.grid_tiles()
        }
    }

    /// Cells with physical hardware behind them — the settle-energy
    /// population. Live-tile cells under elision, every cell otherwise.
    pub fn active_cells(&self) -> usize {
        if self.elide {
            self.occ.live_cells() as usize
        } else {
            self.rows() * self.cols()
        }
    }

    /// `A·x` over the scheduled tiles; see [`TiledMatrix::matvec_into`].
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows()];
        self.matvec_into(x, &mut y);
        y
    }

    /// `A·x` into `out`, visiting tiles in row-major `(bi, bj)` order and
    /// skipping elided ones. A single-tile live operand takes the dense
    /// kernel path in both modes; an operand with no live tile drives
    /// nothing and yields exact zeros in both modes.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols(), "tiled matvec: input length");
        assert_eq!(out.len(), self.rows(), "tiled matvec: output length");
        out.fill(0.0);
        if self.occ.live_tiles() == 0 {
            return;
        }
        if self.occ.grid_tiles() == 1 {
            out.copy_from_slice(&self.realized.matvec(x));
            return;
        }
        let ts = self.occ.tile_side();
        for bi in 0..self.occ.row_blocks() {
            for bj in 0..self.occ.col_blocks() {
                if self.elide && !self.occ.is_live(bi, bj) {
                    continue;
                }
                let (nr, nc) = self.occ.tile_dims(bi, bj);
                let (r0, c0) = (bi * ts, bj * ts);
                let xs = &x[c0..c0 + nc];
                for i in 0..nr {
                    let row = &self.realized.row(r0 + i)[c0..c0 + nc];
                    out[r0 + i] += ops::dot(row, xs);
                }
            }
        }
    }

    /// `Aᵀ·y` over the scheduled tiles; see
    /// [`TiledMatrix::matvec_transposed_into`].
    pub fn matvec_transposed(&self, y: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.cols()];
        self.matvec_transposed_into(y, &mut x);
        x
    }

    /// `Aᵀ·y` into `out` — the word-line-driven direction: the same
    /// physical tiles, the same row-major schedule, each live tile's
    /// bit-line read-back accumulated into its column segment.
    pub fn matvec_transposed_into(&self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), self.rows(), "tiled matvec_transposed: input");
        assert_eq!(out.len(), self.cols(), "tiled matvec_transposed: output");
        out.fill(0.0);
        if self.occ.live_tiles() == 0 {
            return;
        }
        if self.occ.grid_tiles() == 1 {
            out.copy_from_slice(&self.realized.matvec_transposed(y));
            return;
        }
        let ts = self.occ.tile_side();
        for bi in 0..self.occ.row_blocks() {
            for bj in 0..self.occ.col_blocks() {
                if self.elide && !self.occ.is_live(bi, bj) {
                    continue;
                }
                let (nr, nc) = self.occ.tile_dims(bi, bj);
                let (r0, c0) = (bi * ts, bj * ts);
                for i in 0..nr {
                    let yi = y[r0 + i];
                    if yi == 0.0 {
                        continue;
                    }
                    let row = &self.realized.row(r0 + i)[c0..c0 + nc];
                    for (o, &a) in out[c0..c0 + nc].iter_mut().zip(row) {
                        *o += a * yi;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 300×300 at tile 128 → 3×3 grid; live blocks on the diagonal plus
    /// (0, 2), everything else exactly zero.
    fn block_sparse(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            let (bi, bj) = (i / ANALOG_TILE_SIDE, j / ANALOG_TILE_SIDE);
            if bi == bj || (bi == 0 && bj == 2) {
                0.25 + ((i * 31 + j * 17) % 97) as f64 * 0.01
            } else {
                0.0
            }
        })
    }

    fn probe(n: usize) -> Vec<f64> {
        (0..n).map(|k| ((k % 13) as f64 - 6.0) * 0.35).collect()
    }

    #[test]
    fn elided_products_are_bitwise_identical_to_full_sweep() {
        let a = block_sparse(300, 300);
        let on = TiledMatrix::new(&a, a.clone(), ANALOG_TILE_SIDE, true);
        let off = TiledMatrix::new(&a, a.clone(), ANALOG_TILE_SIDE, false);
        assert_eq!(on.scheduled_tiles(), 4);
        assert_eq!(off.scheduled_tiles(), 9);
        assert!(on.active_cells() < off.active_cells());
        let x = probe(300);
        let ax_on = on.matvec(&x);
        let ax_off = off.matvec(&x);
        assert_eq!(ax_on, ax_off, "forward MVM must not see elision");
        let aty_on = on.matvec_transposed(&x);
        let aty_off = off.matvec_transposed(&x);
        assert_eq!(aty_on, aty_off, "transposed MVM must not see elision");
    }

    #[test]
    fn products_match_dense_reference_numerically() {
        let a = block_sparse(300, 260);
        let t = TiledMatrix::new(&a, a.clone(), ANALOG_TILE_SIDE, true);
        let x = probe(260);
        let want = a.matvec(&x);
        let got = t.matvec(&x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-9 * (1.0 + w.abs()), "{g} vs {w}");
        }
        let y = probe(300);
        let want_t = a.matvec_transposed(&y);
        let got_t = t.matvec_transposed(&y);
        for (g, w) in got_t.iter().zip(&want_t) {
            assert!((g - w).abs() <= 1e-9 * (1.0 + w.abs()), "{g} vs {w}");
        }
    }

    #[test]
    fn single_tile_operands_use_the_dense_path() {
        let a = Matrix::from_fn(40, 60, |i, j| ((i + 2 * j) % 7) as f64 * 0.2);
        let t = TiledMatrix::new(&a, a.clone(), ANALOG_TILE_SIDE, true);
        assert_eq!(t.occupancy().grid_tiles(), 1);
        let x = probe(60);
        assert_eq!(t.matvec(&x), a.matvec(&x));
        let y = probe(40);
        assert_eq!(t.matvec_transposed(&y), a.matvec_transposed(&y));
    }

    #[test]
    fn all_dead_operand_yields_exact_zeros_in_both_modes() {
        let z = Matrix::zeros(200, 200);
        for elide in [true, false] {
            let t = TiledMatrix::new(&z, z.clone(), ANALOG_TILE_SIDE, elide);
            let x: Vec<f64> = (0..200).map(|k| -1.0 - k as f64).collect();
            let y = t.matvec(&x);
            assert!(y.iter().all(|v| v.to_bits() == 0), "exact +0.0 outputs");
        }
    }

    #[test]
    fn occupancy_reflects_planned_not_realized() {
        // The realized block differs from the plan (variation), but the
        // occupancy must come from the planned coefficients.
        let planned = block_sparse(300, 300);
        let realized = planned.map(|v| v * 1.07);
        let t = TiledMatrix::new(&planned, realized, ANALOG_TILE_SIDE, true);
        assert_eq!(t.occupancy().live_tiles(), 4);
        assert_eq!(t.occupancy().grid_tiles(), 9);
    }
}
