//! Hardware context for the structured (block-wise) crossbar simulation.
//!
//! The Newton systems the solvers build are huge but extremely structured —
//! a handful of dense blocks (`A′`, `A″`, transposes) plus diagonals. The
//! monolithic [`memlp_crossbar::Crossbar`] would materialize the full
//! `≈4(n+m)` square array; this context instead realizes each block
//! individually with exactly the same per-write physics (variation redrawn
//! per write, Eqn 18) and the same ledger charging, which is both faithful
//! and fast enough for the m = 1024 sweeps. See DESIGN.md §4.

use memlp_crossbar::{CostLedger, CrossbarConfig, Phase, Quantizer};
use memlp_linalg::Matrix;
use memlp_noc::NocConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-solve hardware state: RNG, converters and the cost ledger.
#[derive(Debug, Clone)]
pub struct HwContext {
    config: CrossbarConfig,
    noc: NocConfig,
    rng: StdRng,
    ledger: CostLedger,
    adc: Quantizer,
    dac: Quantizer,
}

impl HwContext {
    /// Creates a context from a crossbar configuration, with the default
    /// hierarchical NoC coordinating tiles whenever a system exceeds the
    /// configured maximum array size (§3.4).
    pub fn new(config: CrossbarConfig) -> Self {
        HwContext::with_noc(config, NocConfig::hierarchical())
    }

    /// Creates a context with an explicit NoC fabric.
    pub fn with_noc(config: CrossbarConfig, noc: NocConfig) -> Self {
        HwContext {
            adc: Quantizer::new(config.adc_bits),
            dac: Quantizer::new(config.dac_bits),
            rng: StdRng::seed_from_u64(config.seed),
            ledger: CostLedger::new(),
            noc,
            config,
        }
    }

    /// Number of crossbar tiles a `dim × dim` system occupies given the
    /// configured maximum array side.
    pub fn tiles_for(&self, dim: usize) -> usize {
        let per_side = dim.div_ceil(self.config.max_size.max(1));
        per_side * per_side
    }

    /// The configuration in force.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// The accumulated cost ledger.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Charges an externally computed cost (NoC overheads).
    pub fn charge_noc(&mut self, time_s: f64, energy_j: f64, transfers: u64) {
        self.ledger.charge_noc_transfer(time_s, energy_j, transfers);
    }

    /// Re-seeds the RNG — the §4.3 re-solve ("double checking") scheme:
    /// re-writing the array redraws every variation deviate.
    pub fn reseed(&mut self, salt: u64) {
        self.rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(salt));
    }

    /// Writes a non-negative block matrix; returns the realized block.
    /// Charges one write per **non-zero** coefficient (erased cells already
    /// sit at `g_off`; zero coefficients need no pulse). Stuck-at faults
    /// pin cells to the block's full-scale value (`stuck-on`) or zero
    /// (`stuck-off`) regardless of the programmed target.
    pub fn write_matrix(&mut self, target: &Matrix, phase: Phase) -> Matrix {
        let a_max = target.max_abs();
        let mut nonzero = 0u64;
        let realized = target.map_with(|v| {
            match self.config.faults.draw(&mut self.rng) {
                memlp_crossbar::FaultKind::StuckOn => return a_max,
                memlp_crossbar::FaultKind::StuckOff => return 0.0,
                memlp_crossbar::FaultKind::Healthy => {}
            }
            if v == 0.0 {
                0.0
            } else {
                nonzero += 1;
                self.config.variation.perturb(v, &mut self.rng).max(0.0)
            }
        });
        self.ledger.charge_writes(
            &self.config.cost,
            phase,
            nonzero,
            self.config.variation.max_fraction,
        );
        realized
    }

    /// Writes a non-negative diagonal (or other dense vector of cells);
    /// returns realized values. Charges one write per entry — diagonals are
    /// rewritten wholesale each iteration (the paper's 2.7·N updates).
    pub fn write_diag(&mut self, target: &[f64], phase: Phase) -> Vec<f64> {
        let a_max = target.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let realized: Vec<f64> = target
            .iter()
            .map(|&v| match self.config.faults.draw(&mut self.rng) {
                memlp_crossbar::FaultKind::StuckOn => a_max,
                memlp_crossbar::FaultKind::StuckOff => 0.0,
                memlp_crossbar::FaultKind::Healthy => self
                    .config
                    .variation
                    .perturb(v.max(0.0), &mut self.rng)
                    .max(0.0),
            })
            .collect();
        self.ledger.charge_writes(
            &self.config.cost,
            phase,
            target.len() as u64,
            self.config.variation.max_fraction,
        );
        realized
    }

    /// DAC-quantizes a voltage vector driven into the array.
    pub fn dac(&mut self, v: &[f64]) -> Vec<f64> {
        self.dac.quantize_vec(v)
    }

    /// DAC-quantizes a vector segment by segment (`lens` are the segment
    /// lengths). Each block of the Newton vectors is driven by its own DAC
    /// bank with an independent programmable reference, so a small-scale
    /// block (e.g. a nearly-converged residual) is not crushed by the
    /// dynamic range of its large-scale neighbours.
    pub fn dac_blocks(&mut self, v: &[f64], lens: &[usize]) -> Vec<f64> {
        debug_assert_eq!(lens.iter().sum::<usize>(), v.len());
        let mut out = Vec::with_capacity(v.len());
        let mut at = 0;
        for &len in lens {
            out.extend(self.dac.quantize_vec(&v[at..at + len]));
            at += len;
        }
        out
    }

    /// ADC counterpart of [`HwContext::dac_blocks`].
    pub fn adc_blocks(&mut self, v: &[f64], lens: &[usize]) -> Vec<f64> {
        debug_assert_eq!(lens.iter().sum::<usize>(), v.len());
        let mut out = Vec::with_capacity(v.len());
        let mut at = 0;
        for &len in lens {
            out.extend(self.adc.quantize_vec(&v[at..at + len]));
            at += len;
        }
        out
    }

    /// ADC-quantizes a voltage vector read from the array.
    pub fn adc(&mut self, v: &[f64]) -> Vec<f64> {
        self.adc.quantize_vec(v)
    }

    /// ADC-quantizes with an auto-ranged reference **capped** at
    /// `max_scale`: the converter ranges on the signal as usual (keeping
    /// fine resolution for small read-outs) but the programmable reference
    /// tops out, so over-range components saturate instead of stretching
    /// the quantization grid. Algorithm 2 relies on this to bound the
    /// weakly determined step components its `RU`/`RL` fill produces
    /// without losing late-iteration resolution.
    pub fn adc_clipped(&mut self, v: &[f64], max_scale: f64) -> Vec<f64> {
        let auto = v.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        let fs = auto.min(max_scale);
        v.iter()
            .map(|&x| self.adc.quantize_against(x, fs))
            .collect()
    }

    /// Charges one analog operation over an array of `dim` lines.
    /// `g_estimate` is the total active conductance for settle energy.
    /// When the system spans more than one physical tile (its side exceeds
    /// `max_size`), per-tile NoC transfers through the configured fabric
    /// are charged on top (§3.4): every tile ships its line segment to the
    /// accumulating arbiters.
    pub fn charge_analog(
        &mut self,
        is_solve: bool,
        inputs: usize,
        outputs: usize,
        g_estimate: f64,
    ) {
        self.ledger.charge_analog_op(
            &self.config.cost,
            is_solve,
            inputs as u64,
            outputs as u64,
            g_estimate,
            self.config.device.v_read,
        );
        let dim = inputs.max(outputs);
        let tiles = self.tiles_for(dim);
        if tiles > 1 {
            let lines = dim.div_ceil(tiles);
            let (t, e) = self.noc.transfer_cost(tiles, lines);
            self.ledger
                .charge_noc_transfer(t * tiles as f64, e * tiles as f64, tiles as u64);
        }
    }

    /// Rough total-conductance estimate for a block set: `g_off` leakage on
    /// every cell plus mapped conductance proportional to the stored sum.
    pub fn conductance_estimate(&self, cells: usize, value_sum: f64, a_max: f64) -> f64 {
        let d = &self.config.device;
        let slope = (d.g_on() - d.g_off()) / a_max.max(f64::MIN_POSITIVE);
        d.g_off() * cells as f64 + slope * value_sum
    }
}

/// Extension: `Matrix::map` with a stateful closure (not in `memlp-linalg`
/// because `map` there takes `Fn`; the write path needs `FnMut` for the
/// RNG).
trait MapWith {
    fn map_with(&self, f: impl FnMut(f64) -> f64) -> Matrix;
}

impl MapWith for Matrix {
    fn map_with(&self, mut f: impl FnMut(f64) -> f64) -> Matrix {
        Matrix::from_fn(self.rows(), self.cols(), |i, j| f(self[(i, j)]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(var_pct: f64) -> HwContext {
        HwContext::new(
            CrossbarConfig::paper_default()
                .with_variation(var_pct)
                .with_seed(7),
        )
    }

    #[test]
    fn write_matrix_preserves_zeros_and_counts_nonzeros() {
        let mut c = ctx(20.0);
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]).unwrap();
        let r = c.write_matrix(&m, Phase::Setup);
        assert_eq!(r[(0, 1)], 0.0);
        assert_eq!(r[(1, 0)], 0.0);
        assert!(r[(0, 0)] > 0.0);
        assert_eq!(c.ledger().counts().setup_writes, 2);
    }

    #[test]
    fn write_matrix_respects_variation_band() {
        let mut c = ctx(10.0);
        let m = Matrix::from_fn(8, 8, |i, j| 1.0 + (i * 8 + j) as f64 * 0.1);
        let r = c.write_matrix(&m, Phase::Setup);
        for i in 0..8 {
            for j in 0..8 {
                let t = m[(i, j)];
                assert!((r[(i, j)] - t).abs() <= 0.10 * t + 1e-12);
            }
        }
    }

    #[test]
    fn write_diag_charges_run_phase() {
        let mut c = ctx(0.0);
        let r = c.write_diag(&[1.0, 2.0, 3.0], Phase::Run);
        assert_eq!(r, vec![1.0, 2.0, 3.0]);
        assert_eq!(c.ledger().counts().update_writes, 3);
    }

    #[test]
    fn write_diag_clamps_negative_targets() {
        // The §3.4 constant-θ solver can momentarily produce negative state
        // values; the crossbar saturates them at zero rather than erroring.
        let mut c = ctx(0.0);
        let r = c.write_diag(&[-0.5, 1.0], Phase::Run);
        assert_eq!(r[0], 0.0);
    }

    #[test]
    fn converters_quantize() {
        let mut c = ctx(0.0);
        let v = vec![1.0, 0.333333333, -0.2];
        let q = c.dac(&v);
        assert_eq!(q[0], 1.0);
        assert!((q[1] - v[1]).abs() <= 0.5 / 127.0 + 1e-12);
        let q2 = c.adc(&q);
        assert_eq!(q2, q, "ADC of a DAC grid point is idempotent at equal bits");
    }

    #[test]
    fn reseed_changes_draws() {
        let m = Matrix::from_rows(&[&[1.0; 8]]).unwrap();
        let mut c1 = ctx(20.0);
        let r1 = c1.write_matrix(&m, Phase::Setup);
        let mut c2 = ctx(20.0);
        c2.reseed(1);
        let r2 = c2.write_matrix(&m, Phase::Setup);
        assert_ne!(r1, r2);
    }

    #[test]
    fn analog_charges_accumulate() {
        let mut c = ctx(0.0);
        c.charge_analog(true, 16, 16, 1e-3);
        assert_eq!(c.ledger().counts().solve_ops, 1);
        assert!(c.ledger().run_time_s() > 0.0);
    }

    #[test]
    fn tiles_follow_max_size() {
        let c = ctx(0.0);
        let max = c.config().max_size;
        assert_eq!(c.tiles_for(max), 1);
        assert_eq!(c.tiles_for(max + 1), 4);
        assert_eq!(c.tiles_for(3 * max), 9);
    }

    #[test]
    fn oversized_systems_charge_noc_transfers() {
        let mut c = ctx(0.0);
        let max = c.config().max_size;
        c.charge_analog(false, max, max, 1e-3);
        assert_eq!(
            c.ledger().counts().noc_transfers,
            0,
            "single tile needs no NoC"
        );
        c.charge_analog(false, 2 * max, 2 * max, 1e-3);
        assert_eq!(c.ledger().counts().noc_transfers, 4, "2×2 tile grid");
    }

    #[test]
    fn conductance_estimate_scales_with_content() {
        let c = ctx(0.0);
        let lo = c.conductance_estimate(100, 10.0, 10.0);
        let hi = c.conductance_estimate(100, 90.0, 10.0);
        assert!(hi > lo);
    }
}
