//! Hardware context for the structured (block-wise) crossbar simulation.
//!
//! The Newton systems the solvers build are huge but extremely structured —
//! a handful of dense blocks (`A′`, `A″`, transposes) plus diagonals. The
//! monolithic [`memlp_crossbar::Crossbar`] would materialize the full
//! `≈4(n+m)` square array; this context instead realizes each block
//! individually with exactly the same per-write physics (variation redrawn
//! per write, Eqn 18) and the same ledger charging, which is both faithful
//! and fast enough for the m = 1024 sweeps. See DESIGN.md §4.
//!
//! # Blocks, keys and faults
//!
//! Each write targets a **block key** — a stable identifier the solver
//! assigns to one physical array region (the `A′` block, the `Z` diagonal,
//! …). Hard defects are a property of the *physical region*, so the context
//! draws one [`FaultPlan`] per key from a dedicated seed stream and applies
//! it to every write of that key: a stuck cell stays stuck across the
//! per-iteration diagonal rewrites *and* across §4.3 re-solve attempts
//! ([`HwContext::begin_attempt`] redraws variation, never defects). The
//! first faulty write of a key runs a write–verify pass
//! ([`memlp_device::FaultMap`]) and queues a
//! [`RecoveryEvent::FaultsDetected`] for the solver to drain; the recovery
//! rungs ([`HwContext::reprogram_faulty`], [`HwContext::remap_dead_lines`])
//! mutate the plans so the *next* attempt's writes realize repaired
//! hardware.

use std::collections::BTreeMap;

use memlp_crossbar::{
    CostLedger, CrossbarConfig, FaultKind, FaultPlan, LineRemap, Phase, Quantizer, TileOccupancy,
    WriteQuantizer,
};
use memlp_device::FaultMap;
use memlp_linalg::Matrix;
use memlp_noc::NocConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::recovery::RecoveryEvent;
use crate::tiles::TiledMatrix;

/// Salt separating per-block fault-plan seeds from the variation stream.
const FAULT_STREAM_SALT: u64 = 0x0FA0_17ED_B10C_0000;

/// Salt for the transient-upset stream.
const TRANSIENT_SALT: u64 = 0x0FA0_17ED_F11B_0000;

/// Per-block persistent hardware state: the defect plan, the spare-line
/// decoder table, and whether detection has been reported yet.
#[derive(Debug, Clone)]
struct BlockFaults {
    plan: FaultPlan,
    remap: LineRemap,
    reported: bool,
}

/// Delta-programming state for one block: the conductance codes most
/// recently programmed. A later write of the same block skips every
/// healthy cell whose code is unchanged (the cell already holds that code —
/// re-verifying it needs no pulse). Skipped cells still resolve to the
/// value the write-verify pass observes — the verify deviate is drawn
/// whether or not a pulse fires — so realized state is bitwise identical
/// with delta programming on or off; only the pulse accounting changes.
///
/// The cache is only trustworthy while the physical state it snapshots is:
/// a variation redraw ([`HwContext::reseed`] / [`HwContext::begin_attempt`]),
/// a weak-cell repair, a spare-line remap, or a drift refresh all
/// invalidate it (DESIGN.md §12).
#[derive(Debug, Clone)]
struct BlockCodes {
    rows: usize,
    cols: usize,
    codes: Vec<u64>,
}

/// NoC scheduling geometry for one occupancy-aware analog op: how many
/// tiles actually fired, how many the die provisions (hop distances come
/// from the full grid), and the line-segment length each live tile ships.
#[derive(Debug, Clone, Copy)]
pub struct TileTraffic {
    /// Tiles that hold at least one planned non-zero and were scheduled.
    pub live_tiles: usize,
    /// Tiles the full grid provisions, live or not.
    pub grid_tiles: usize,
    /// Line segments each live tile ships through the fabric.
    pub lines_per_tile: usize,
}

/// Per-solve hardware state: RNG, converters, per-block fault plans and the
/// cost ledger.
#[derive(Debug, Clone)]
pub struct HwContext {
    config: CrossbarConfig,
    noc: NocConfig,
    rng: StdRng,
    transient_rng: StdRng,
    /// Persistent per-block defect state, keyed by the solver's block ids.
    /// A `BTreeMap` keeps iteration deterministic for the recovery sweeps.
    blocks: BTreeMap<u32, BlockFaults>,
    /// Per-block conductance-code caches for delta programming.
    codes: BTreeMap<u32, BlockCodes>,
    /// Write-precision quantizer (`config.write_bits` significant bits).
    wq: WriteQuantizer,
    /// Detection events not yet drained by the solver.
    pending_events: Vec<RecoveryEvent>,
    ledger: CostLedger,
    adc: Quantizer,
    dac: Quantizer,
}

impl HwContext {
    /// Creates a context from a crossbar configuration, with the default
    /// hierarchical NoC coordinating tiles whenever a system exceeds the
    /// configured maximum array size (§3.4).
    pub fn new(config: CrossbarConfig) -> Self {
        HwContext::with_noc(config, NocConfig::hierarchical())
    }

    /// Creates a context with an explicit NoC fabric.
    pub fn with_noc(config: CrossbarConfig, noc: NocConfig) -> Self {
        HwContext {
            adc: Quantizer::new(config.adc_bits),
            dac: Quantizer::new(config.dac_bits),
            rng: StdRng::seed_from_u64(config.seed),
            transient_rng: StdRng::seed_from_u64(config.seed ^ TRANSIENT_SALT),
            blocks: BTreeMap::new(),
            codes: BTreeMap::new(),
            wq: WriteQuantizer::new(config.write_bits),
            pending_events: Vec::new(),
            ledger: CostLedger::new(),
            noc,
            config,
        }
    }

    /// Number of crossbar tiles a `dim × dim` system occupies given the
    /// configured maximum array side.
    pub fn tiles_for(&self, dim: usize) -> usize {
        let per_side = dim.div_ceil(self.config.max_size.max(1));
        per_side * per_side
    }

    /// The configuration in force.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// The accumulated cost ledger.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Charges an externally computed cost (NoC overheads).
    pub fn charge_noc(&mut self, time_s: f64, energy_j: f64, transfers: u64) {
        self.ledger.charge_noc_transfer(time_s, energy_j, transfers);
    }

    /// Records one core-matrix rebuild the solver avoided by reusing its
    /// assembled workspace (digital bookkeeping; free on hardware).
    pub fn note_rebuild_avoided(&mut self) {
        self.ledger.note_rebuild_avoided();
    }

    /// Records one digital core factorization (flop count and factor fill)
    /// — bookkeeping for the dense-vs-sparse Newton path comparison.
    pub fn note_factorization(&mut self, flops: u64, nnz: u64) {
        self.ledger.note_factorization(flops, nnz);
    }

    /// Re-seeds the variation RNG — the §4.3 re-solve ("double checking")
    /// scheme: re-writing the array redraws every variation deviate. Hard
    /// defects ([`FaultPlan`]s) are untouched; they belong to the silicon,
    /// not the write history.
    pub fn reseed(&mut self, salt: u64) {
        self.rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(salt));
        // The whole point of the redraw is fresh deviates on every cell;
        // the code caches would defeat it by skipping unchanged codes.
        self.invalidate_codes();
    }

    /// Drops every delta-programming code cache: the next write of each
    /// block re-programs all cells. Called automatically on variation
    /// redraws, repairs and remaps; callers performing their own wholesale
    /// rewrites (e.g. a drift refresh, where the *stored charge* decayed
    /// even though the target codes did not change) must call this first or
    /// the refresh would be skipped as a no-op.
    pub fn invalidate_codes(&mut self) {
        self.codes.clear();
    }

    /// Starts a new solve attempt: redraws variation (as [`reseed`]) and
    /// restarts the transient-upset stream for the attempt, while keeping
    /// fault plans, repairs, remaps and the accumulated ledger.
    ///
    /// [`reseed`]: HwContext::reseed
    pub fn begin_attempt(&mut self, salt: u64) {
        self.reseed(salt);
        self.transient_rng =
            StdRng::seed_from_u64(self.config.seed.wrapping_add(salt) ^ TRANSIENT_SALT);
    }

    /// Starts a new solve on **warm** hardware: restarts only the
    /// transient-upset stream (so request `salt` is reproducible on its
    /// own), while keeping the variation state, the delta-programming code
    /// caches, fault plans, repairs, remaps and the accumulated ledger.
    ///
    /// This is the serving-pool counterpart of
    /// [`HwContext::begin_attempt`]: the physical array still holds the
    /// conductances of the previous solve of the same problem family, so a
    /// repeat request's writes hit the code caches and are skipped as
    /// delta no-ops instead of being re-pulsed. A variation redraw is
    /// exactly what warm reuse must *not* do — that is the cold path.
    pub fn begin_reuse(&mut self, salt: u64) {
        self.transient_rng = StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ TRANSIENT_SALT,
        );
    }

    /// Writes a non-negative block matrix under block key `key`; returns
    /// the realized block. Targets are resolved to `config.write_bits`-bit
    /// conductance codes; one write is charged per **non-zero** healthy
    /// code (erased cells already sit at `g_off`; zero coefficients need no
    /// pulse), and with `config.delta_writes` a cell whose code is
    /// unchanged since the block's last program is *skipped* — no pulse is
    /// charged, and the cell resolves to the value the write-verify pass
    /// observes (identical to what a fresh write would have produced, so
    /// delta programming never changes results). The block's persistent
    /// [`FaultPlan`] pins stuck-on cells to the block's full-scale value
    /// and stuck-off cells / dead lines to zero, regardless of the
    /// programmed target; faulty cells consume no variation draw (the pulse
    /// never moves the device). Healthy cells draw one verify-loop deviate
    /// per write *or skip*, so the variation stream — and therefore every
    /// realized value of cells that are written — is identical whether
    /// delta programming is on or off.
    ///
    /// memlp-lint: analog_source
    pub fn write_matrix(&mut self, key: u32, target: &Matrix, phase: Phase) -> Matrix {
        self.write_matrix_masked(key, target, phase, None)
    }

    /// [`HwContext::write_matrix`] over a tiled block region: the target's
    /// [`TileOccupancy`] is scanned first (from *planned* coefficients,
    /// never analog read-backs), and with `config.tile_elision` set the
    /// all-zero tiles are never fabricated — no write pulses, no fault
    /// pins, no delta-cache entries for their cells — and the elision is
    /// noted on the ledger. Fault-free realizations are bitwise identical
    /// with elision on or off (a planned-zero healthy cell realizes an
    /// exact zero and draws no variation either way); with faults
    /// configured, elision additionally keeps stuck-on defects out of
    /// planned-dead tiles, because there is no hardware there to be stuck.
    ///
    /// Cost accounting differs from the flat path: programming a *tile* is
    /// a full write-verify sweep over the tile's cell grid — the same
    /// per-cell semantics the device layer charges (`Crossbar::program`
    /// sweeps `side × side`; the NoC fabric charges every cell of every
    /// fabricated tile) — so every healthy cell of a fabricated tile costs
    /// one write (or one delta skip), planned zeros included. Only the
    /// pulse of a *non-zero* code moves the device, so zero-code cells
    /// still draw no variation deviate: the accounting change is invisible
    /// to realized conductances.
    ///
    /// memlp-lint: analog_source
    pub fn write_matrix_tiled(
        &mut self,
        key: u32,
        target: &Matrix,
        tile_side: usize,
        phase: Phase,
    ) -> TiledMatrix {
        let occ = TileOccupancy::from_matrix(target, tile_side);
        let elide = self.config.tile_elision;
        if elide {
            self.ledger
                .note_elided_tiles(occ.dead_tiles() as u64, occ.dead_cells());
        }
        let realized = self.write_matrix_masked(key, target, phase, Some((&occ, elide)));
        TiledMatrix::from_parts(realized, occ, elide)
    }

    /// Shared write path. `tiled`, when present, carries the occupancy
    /// index plus the elision flag: with elision on, dead-tile cells have
    /// no hardware — they skip fault application entirely and realize
    /// exact zeros (their planned values are zero by construction of the
    /// occupancy index). Tiled writes charge one write (or delta skip) per
    /// fabricated healthy cell — the device layer's per-cell sweep — while
    /// the flat path charges non-zero codes only (§3.5: erased cells need
    /// no pulse).
    fn write_matrix_masked(
        &mut self,
        key: u32,
        target: &Matrix,
        phase: Phase,
        tiled: Option<(&TileOccupancy, bool)>,
    ) -> Matrix {
        let plan = self.plan_for(key, target.rows(), target.cols());
        let a_max = target.max_abs();
        let cache = self
            .delta_cache(key)
            .filter(|c| c.rows == target.rows() && c.cols == target.cols());
        let mut written = 0u64;
        let mut skipped = 0u64;
        let mut codes = vec![0u64; target.rows() * target.cols()];
        let mut realized = Matrix::zeros(target.rows(), target.cols());
        let ts = tiled.map_or(1, |(o, _)| o.tile_side());
        for i in 0..target.rows() {
            for j in 0..target.cols() {
                if let Some((occ, true)) = tiled {
                    if !occ.is_live(i / ts, j / ts) {
                        continue; // elided tile: no hardware, exact zero
                    }
                }
                let idx = i * target.cols() + j;
                let code = self.wq.code(target[(i, j)]);
                codes[idx] = code;
                realized[(i, j)] = match plan.fault_at(i, j) {
                    FaultKind::StuckOn => a_max,
                    FaultKind::StuckOff => 0.0,
                    FaultKind::Healthy => {
                        if code == 0 {
                            // The tile sweep visits (and verifies) every
                            // fabricated cell; only a non-zero pulse moves
                            // the device, so no variation deviate here.
                            if tiled.is_some() {
                                match cache.as_ref() {
                                    Some(c) if c.codes[idx] == code => skipped += 1,
                                    _ => written += 1,
                                }
                            }
                            0.0
                        } else {
                            let factor = self.config.variation.draw_factor(&mut self.rng);
                            match cache.as_ref() {
                                Some(c) if c.codes[idx] == code => skipped += 1,
                                _ => written += 1,
                            }
                            (self.wq.decode(code) * factor).max(0.0)
                        }
                    }
                };
            }
        }
        self.ledger.charge_writes(
            &self.config.cost,
            phase,
            written,
            self.config.variation.max_fraction,
        );
        self.ledger.note_skipped_writes(skipped);
        self.store_codes(key, target.rows(), target.cols(), codes);
        self.verify_block(key, target.as_slice(), realized.as_slice(), target.cols());
        realized
    }

    /// Writes a non-negative diagonal (or other dense vector of cells)
    /// under block key `key`; returns realized values. Charges one write
    /// per entry — diagonals are rewritten wholesale each iteration (the
    /// paper's 2.7·N updates) — *except* entries skipped by delta
    /// programming (unchanged `config.write_bits`-bit code since the
    /// block's last write). The block's [`FaultPlan`] is a `len × 1` region
    /// (a private line per cell, so no shared-bit-line faults).
    ///
    /// memlp-lint: analog_source
    pub fn write_diag(&mut self, key: u32, target: &[f64], phase: Phase) -> Vec<f64> {
        let plan = self.plan_for(key, target.len(), 1);
        let a_max = target.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let cache = self
            .delta_cache(key)
            .filter(|c| c.rows == target.len() && c.cols == 1);
        let mut skipped = 0u64;
        let mut codes = vec![0u64; target.len()];
        let mut realized = Vec::with_capacity(target.len());
        for (i, &v) in target.iter().enumerate() {
            let code = self.wq.code(v.max(0.0));
            codes[i] = code;
            realized.push(match plan.fault_at(i, 0) {
                FaultKind::StuckOn => a_max,
                FaultKind::StuckOff => 0.0,
                FaultKind::Healthy => {
                    let factor = self.config.variation.draw_factor(&mut self.rng);
                    if matches!(cache.as_ref(), Some(c) if c.codes[i] == code) {
                        skipped += 1;
                    }
                    (self.wq.decode(code) * factor).max(0.0)
                }
            });
        }
        self.ledger.charge_writes(
            &self.config.cost,
            phase,
            target.len() as u64 - skipped,
            self.config.variation.max_fraction,
        );
        self.ledger.note_skipped_writes(skipped);
        self.store_codes(key, target.len(), 1, codes);
        self.verify_block(key, target, &realized, 1);
        realized
    }

    /// DAC-quantizes a voltage vector driven into the array.
    pub fn dac(&mut self, v: &[f64]) -> Vec<f64> {
        self.dac.quantize_vec(v)
    }

    /// DAC-quantizes a vector segment by segment (`lens` are the segment
    /// lengths). Each block of the Newton vectors is driven by its own DAC
    /// bank with an independent programmable reference, so a small-scale
    /// block (e.g. a nearly-converged residual) is not crushed by the
    /// dynamic range of its large-scale neighbours.
    pub fn dac_blocks(&mut self, v: &[f64], lens: &[usize]) -> Vec<f64> {
        debug_assert_eq!(lens.iter().sum::<usize>(), v.len());
        let mut out = Vec::with_capacity(v.len());
        let mut at = 0;
        for &len in lens {
            out.extend(self.dac.quantize_vec(&v[at..at + len]));
            at += len;
        }
        out
    }

    /// ADC counterpart of [`HwContext::dac_blocks`]. Transient read upsets
    /// (when configured) strike each segment independently — each block has
    /// its own converter bank.
    ///
    /// memlp-lint: analog_source
    pub fn adc_blocks(&mut self, v: &[f64], lens: &[usize]) -> Vec<f64> {
        debug_assert_eq!(lens.iter().sum::<usize>(), v.len());
        let mut out = Vec::with_capacity(v.len());
        let mut at = 0;
        for &len in lens {
            let mut seg = self.adc.quantize_vec(&v[at..at + len]);
            self.config
                .faults
                .upset_read(&mut seg, &mut self.transient_rng);
            out.extend(seg);
            at += len;
        }
        out
    }

    /// ADC-quantizes a voltage vector read from the array, applying any
    /// configured transient read upsets.
    ///
    /// memlp-lint: analog_source
    pub fn adc(&mut self, v: &[f64]) -> Vec<f64> {
        let mut out = self.adc.quantize_vec(v);
        self.config
            .faults
            .upset_read(&mut out, &mut self.transient_rng);
        out
    }

    /// ADC-quantizes with an auto-ranged reference **capped** at
    /// `max_scale`: the converter ranges on the signal as usual (keeping
    /// fine resolution for small read-outs) but the programmable reference
    /// tops out, so over-range components saturate instead of stretching
    /// the quantization grid. Algorithm 2 relies on this to bound the
    /// weakly determined step components its `RU`/`RL` fill produces
    /// without losing late-iteration resolution.
    ///
    /// memlp-lint: analog_source
    pub fn adc_clipped(&mut self, v: &[f64], max_scale: f64) -> Vec<f64> {
        let auto = v.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        let fs = auto.min(max_scale);
        let mut out: Vec<f64> = v
            .iter()
            .map(|&x| self.adc.quantize_against(x, fs))
            .collect();
        self.config
            .faults
            .upset_read(&mut out, &mut self.transient_rng);
        out
    }

    /// Charges one analog operation over an array of `dim` lines.
    /// `g_estimate` is the total active conductance for settle energy.
    /// When the system spans more than one physical tile (its side exceeds
    /// `max_size`), per-tile NoC transfers through the configured fabric
    /// are charged on top (§3.4): every tile ships its line segment to the
    /// accumulating arbiters.
    pub fn charge_analog(
        &mut self,
        is_solve: bool,
        inputs: usize,
        outputs: usize,
        g_estimate: f64,
    ) {
        self.ledger.charge_analog_op(
            &self.config.cost,
            is_solve,
            inputs as u64,
            outputs as u64,
            g_estimate,
            self.config.device.v_read,
        );
        let dim = inputs.max(outputs);
        let tiles = self.tiles_for(dim);
        if tiles > 1 {
            let lines = dim.div_ceil(tiles);
            let (t, e) = self.noc.transfer_cost(tiles, lines);
            self.ledger
                .charge_noc_transfer(t * tiles as f64, e * tiles as f64, tiles as u64);
        }
    }

    /// Occupancy-aware variant of [`HwContext::charge_analog`] for
    /// operands carried as a [`TiledMatrix`]: only the `live_tiles` that
    /// were actually scheduled ship their `lines_per_tile` line segments
    /// through the fabric, while hop distances (and the decision that a
    /// fabric exists at all) follow the full `grid_tiles` geometry — a
    /// dead tile frees bandwidth, it does not shrink the die.
    pub fn charge_analog_tiled(
        &mut self,
        is_solve: bool,
        inputs: usize,
        outputs: usize,
        g_estimate: f64,
        traffic: TileTraffic,
    ) {
        self.ledger.charge_analog_op(
            &self.config.cost,
            is_solve,
            inputs as u64,
            outputs as u64,
            g_estimate,
            self.config.device.v_read,
        );
        if traffic.grid_tiles > 1 && traffic.live_tiles > 0 {
            let lines = traffic.lines_per_tile.min(inputs.max(outputs)).max(1);
            let (t, e) = self.noc.transfer_cost(traffic.grid_tiles, lines);
            self.ledger.charge_noc_transfer(
                t * traffic.live_tiles as f64,
                e * traffic.live_tiles as f64,
                traffic.live_tiles as u64,
            );
        }
    }

    /// Rough total-conductance estimate for a block set: `g_off` leakage on
    /// every cell plus mapped conductance proportional to the stored sum.
    pub fn conductance_estimate(&self, cells: usize, value_sum: f64, a_max: f64) -> f64 {
        let d = &self.config.device;
        let slope = (d.g_on() - d.g_off()) / a_max.max(f64::MIN_POSITIVE);
        d.g_off() * cells as f64 + slope * value_sum
    }

    // ----- fault state and recovery ----------------------------------------

    /// Drains the queued detection events (in block-key order of first
    /// detection) for the solver's recovery report.
    pub fn take_recovery_events(&mut self) -> Vec<RecoveryEvent> {
        std::mem::take(&mut self.pending_events)
    }

    /// `true` if any written block carries hard defects right now.
    pub fn saw_faults(&self) -> bool {
        self.blocks.values().any(|b| !b.plan.is_clean())
    }

    /// Weak (repairable) stuck cells across all written blocks.
    pub fn weak_faults(&self) -> usize {
        self.blocks.values().map(|b| b.plan.weak_cells()).sum()
    }

    /// `true` if any written block has a dead line left.
    pub fn has_dead_lines(&self) -> bool {
        self.blocks
            .values()
            .any(|b| !b.plan.dead_rows().is_empty() || !b.plan.dead_cols().is_empty())
    }

    /// Recovery rung 1: re-programs every weak stuck cell with an extended
    /// pulse budget. Returns `(repaired, remaining_hard)`. The next write
    /// of each block realizes the repaired cells; the pass itself charges
    /// run-phase writes for the extra pulse trains.
    pub fn reprogram_faulty(&mut self) -> (usize, usize) {
        let mut repaired = 0;
        let mut remaining = 0;
        for b in self.blocks.values_mut() {
            repaired += b.plan.repair_weak();
            remaining += b.plan.stuck_cells();
        }
        if repaired > 0 {
            // The extended-budget pulse trains are an order of magnitude
            // longer than a nominal write; charge them as 10 run writes per
            // repaired cell.
            self.ledger.charge_writes(
                &self.config.cost,
                Phase::Run,
                10 * repaired as u64,
                self.config.variation.max_fraction,
            );
            // Repaired cells hold whatever the repair pulses left; the next
            // write of each block must realize them fresh.
            self.invalidate_codes();
        }
        (repaired, remaining)
    }

    /// Recovery rung 2: relocates logical lines off dead physical lines
    /// onto each block's spare lines (`config.spare_lines` per side per
    /// block). Returns `(rows_remapped, cols_remapped, unmapped)`. The
    /// next write of each block realizes the relocated lines.
    pub fn remap_dead_lines(&mut self) -> (usize, usize, usize) {
        let mut rows_done = 0;
        let mut cols_done = 0;
        let mut unmapped = 0;
        for b in self.blocks.values_mut() {
            for r in b.plan.dead_rows().to_vec() {
                if b.remap.remap_row(r) {
                    b.plan.revive_row(r);
                    rows_done += 1;
                } else {
                    unmapped += 1;
                }
            }
            for c in b.plan.dead_cols().to_vec() {
                if b.remap.remap_col(c) {
                    b.plan.revive_col(c);
                    cols_done += 1;
                } else {
                    unmapped += 1;
                }
            }
        }
        if rows_done + cols_done > 0 {
            // Relocated lines land on spare cells that were never
            // programmed; their logical positions must be written fresh.
            self.invalidate_codes();
        }
        (rows_done, cols_done, unmapped)
    }

    // ----- internals -------------------------------------------------------

    /// Takes (and thereby consumes) the delta cache for `key`, or `None`
    /// when delta programming is off. The caller re-inserts the refreshed
    /// cache via [`HwContext::store_codes`].
    fn delta_cache(&mut self, key: u32) -> Option<BlockCodes> {
        if self.config.delta_writes {
            self.codes.remove(&key)
        } else {
            None
        }
    }

    /// Snapshots the codes just written for block `key` (no-op when delta
    /// programming is off).
    fn store_codes(&mut self, key: u32, rows: usize, cols: usize, codes: Vec<u64>) {
        if !self.config.delta_writes {
            return;
        }
        self.codes.insert(key, BlockCodes { rows, cols, codes });
    }

    /// Returns (drawing if necessary) the fault plan for block `key`. The
    /// plan seed mixes the configuration seed with the key only — never the
    /// attempt salt — so defects are a stable property of the physical
    /// block across re-solve attempts.
    fn plan_for(&mut self, key: u32, rows: usize, cols: usize) -> FaultPlan {
        if self.config.faults.is_none() {
            return FaultPlan::clean(rows, cols);
        }
        let faults = self.config.faults;
        let seed = self.config.seed
            ^ FAULT_STREAM_SALT
            ^ (u64::from(key) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let spares = self.config.spare_lines;
        let entry = self.blocks.entry(key).or_insert_with(|| BlockFaults {
            plan: FaultPlan::draw(&faults, rows, cols, seed),
            remap: LineRemap::new(spares, spares),
            reported: false,
        });
        // A long-lived (pooled) context may reprogram a block key at a new
        // shape when a different problem lands on the same array. That is
        // a re-allocation of silicon, not a rewrite: the old plan, its
        // repairs, and its reported-once latch all describe cells that no
        // longer exist, so the block's defect state is drawn afresh (the
        // shape is mixed into the seed to keep distinct allocations
        // independent).
        if entry.plan.rows() != rows || entry.plan.cols() != cols {
            let reseed = seed ^ (rows as u64).rotate_left(32) ^ cols as u64;
            *entry = BlockFaults {
                plan: FaultPlan::draw(&faults, rows, cols, reseed),
                remap: LineRemap::new(spares, spares),
                reported: false,
            };
        }
        entry.plan.clone()
    }

    /// Write–verify: on the first write of a defective block, compare the
    /// realized values against the target (the verify read) and queue a
    /// detection event. A dead line fails verify on every cell, so the
    /// detector sees dead lines exactly; the weak/hard split comes from the
    /// controller's extended-verify classification (modelled by the plan).
    fn verify_block(&mut self, key: u32, target: &[f64], realized: &[f64], cols: usize) {
        let Some(b) = self.blocks.get_mut(&key) else {
            return;
        };
        if b.reported || b.plan.is_clean() {
            return;
        }
        b.reported = true;
        let rows = target.len() / cols.max(1);
        // A healthy cell realizes factor · quantize(target): the band must
        // cover variation *and* write-code rounding or quantized-but-honest
        // cells read back as defects.
        let var = self.config.variation.max_fraction;
        let rel_band = var + self.wq.rel_step() * (1.0 + var) + 1e-9;
        let fmap = FaultMap::detect(rows, cols, target, realized, rel_band, 1e-12);
        let _ = fmap.len(); // detection runs the real verify path
        self.pending_events.push(RecoveryEvent::FaultsDetected {
            block: key,
            stuck_cells: b.plan.stuck_cells(),
            weak_cells: b.plan.weak_cells(),
            dead_rows: b.plan.dead_rows().len(),
            dead_cols: b.plan.dead_cols().len(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlp_crossbar::FaultModel;

    fn ctx(var_pct: f64) -> HwContext {
        HwContext::new(
            CrossbarConfig::paper_default()
                .with_variation(var_pct)
                .with_seed(7),
        )
    }

    fn faulty_ctx(faults: FaultModel, seed: u64) -> HwContext {
        HwContext::new(
            CrossbarConfig::paper_default()
                .with_faults(faults)
                .with_seed(seed),
        )
    }

    #[test]
    fn write_matrix_preserves_zeros_and_counts_nonzeros() {
        let mut c = ctx(20.0);
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]).unwrap();
        let r = c.write_matrix(0, &m, Phase::Setup);
        assert_eq!(r[(0, 1)], 0.0);
        assert_eq!(r[(1, 0)], 0.0);
        assert!(r[(0, 0)] > 0.0);
        assert_eq!(c.ledger().counts().setup_writes, 2);
    }

    #[test]
    fn write_matrix_respects_variation_band() {
        let mut c = ctx(10.0);
        let m = Matrix::from_fn(8, 8, |i, j| 1.0 + (i * 8 + j) as f64 * 0.1);
        let r = c.write_matrix(0, &m, Phase::Setup);
        // Variation plus 12-bit write-code rounding (2^-12 relative).
        let band = 0.10 + (1.0 + 0.10) / 4096.0;
        for i in 0..8 {
            for j in 0..8 {
                let t = m[(i, j)];
                assert!((r[(i, j)] - t).abs() <= band * t + 1e-12);
            }
        }
    }

    #[test]
    fn write_diag_charges_run_phase() {
        let mut c = ctx(0.0);
        let r = c.write_diag(0, &[1.0, 2.0, 3.0], Phase::Run);
        assert_eq!(r, vec![1.0, 2.0, 3.0]);
        assert_eq!(c.ledger().counts().update_writes, 3);
    }

    #[test]
    fn write_diag_clamps_negative_targets() {
        // The §3.4 constant-θ solver can momentarily produce negative state
        // values; the crossbar saturates them at zero rather than erroring.
        let mut c = ctx(0.0);
        let r = c.write_diag(0, &[-0.5, 1.0], Phase::Run);
        assert_eq!(r[0], 0.0);
    }

    #[test]
    fn converters_quantize() {
        let mut c = ctx(0.0);
        let v = vec![1.0, 0.333333333, -0.2];
        let q = c.dac(&v);
        assert_eq!(q[0], 1.0);
        assert!((q[1] - v[1]).abs() <= 0.5 / 127.0 + 1e-12);
        let q2 = c.adc(&q);
        assert_eq!(q2, q, "ADC of a DAC grid point is idempotent at equal bits");
    }

    #[test]
    fn reseed_changes_draws() {
        let m = Matrix::from_rows(&[&[1.0; 8]]).unwrap();
        let mut c1 = ctx(20.0);
        let r1 = c1.write_matrix(0, &m, Phase::Setup);
        let mut c2 = ctx(20.0);
        c2.reseed(1);
        let r2 = c2.write_matrix(0, &m, Phase::Setup);
        assert_ne!(r1, r2);
    }

    #[test]
    fn analog_charges_accumulate() {
        let mut c = ctx(0.0);
        c.charge_analog(true, 16, 16, 1e-3);
        assert_eq!(c.ledger().counts().solve_ops, 1);
        assert!(c.ledger().run_time_s() > 0.0);
    }

    #[test]
    fn tiles_follow_max_size() {
        let c = ctx(0.0);
        let max = c.config().max_size;
        assert_eq!(c.tiles_for(max), 1);
        assert_eq!(c.tiles_for(max + 1), 4);
        assert_eq!(c.tiles_for(3 * max), 9);
    }

    #[test]
    fn oversized_systems_charge_noc_transfers() {
        let mut c = ctx(0.0);
        let max = c.config().max_size;
        c.charge_analog(false, max, max, 1e-3);
        assert_eq!(
            c.ledger().counts().noc_transfers,
            0,
            "single tile needs no NoC"
        );
        c.charge_analog(false, 2 * max, 2 * max, 1e-3);
        assert_eq!(c.ledger().counts().noc_transfers, 4, "2×2 tile grid");
    }

    #[test]
    fn conductance_estimate_scales_with_content() {
        let c = ctx(0.0);
        let lo = c.conductance_estimate(100, 10.0, 10.0);
        let hi = c.conductance_estimate(100, 90.0, 10.0);
        assert!(hi > lo);
    }

    #[test]
    fn fault_plans_persist_across_attempts() {
        let faults = FaultModel::symmetric(0.05).unwrap();
        let mut c = faulty_ctx(faults, 3);
        let m = Matrix::from_fn(16, 16, |_, _| 1.0);
        let r1 = c.write_matrix(0, &m, Phase::Setup);
        assert!(c.saw_faults(), "5% over 256 cells must draw faults");
        c.begin_attempt(1);
        let r2 = c.write_matrix(0, &m, Phase::Setup);
        // Stuck cells realize identical values in both attempts.
        for i in 0..16 {
            for j in 0..16 {
                if r1[(i, j)] == 0.0 {
                    assert_eq!(r2[(i, j)], 0.0, "stuck-off cell moved at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn detection_reports_each_faulty_block_once() {
        let faults = FaultModel::symmetric(0.05).unwrap();
        let mut c = faulty_ctx(faults, 3);
        let m = Matrix::from_fn(16, 16, |_, _| 1.0);
        c.write_matrix(0, &m, Phase::Setup);
        c.write_matrix(0, &m, Phase::Run);
        c.write_diag(1, &[1.0; 64], Phase::Setup);
        let events = c.take_recovery_events();
        let detections = events
            .iter()
            .filter(|e| matches!(e, RecoveryEvent::FaultsDetected { .. }))
            .count();
        assert!(detections >= 1);
        assert!(detections <= 2, "at most one detection per block");
        assert!(c.take_recovery_events().is_empty(), "drained");
    }

    #[test]
    fn reprogram_clears_weak_cells_only() {
        let faults = FaultModel::symmetric(0.05)
            .unwrap()
            .with_weak_fraction(1.0)
            .unwrap();
        let mut c = faulty_ctx(faults, 5);
        let m = Matrix::from_fn(16, 16, |_, _| 1.0);
        let before = c.write_matrix(0, &m, Phase::Setup);
        assert!(before.as_slice().contains(&0.0));
        let (repaired, remaining) = c.reprogram_faulty();
        assert!(repaired > 0);
        assert_eq!(remaining, 0, "all faults weak");
        let after = c.write_matrix(0, &m, Phase::Run);
        assert!(
            after.as_slice().iter().all(|&v| v > 0.0),
            "repaired block writes cleanly"
        );
    }

    #[test]
    fn remap_revives_dead_lines_within_spare_budget() {
        let faults = FaultModel::none().with_dead_lines(0.15, 0.0).unwrap();
        let mut c = faulty_ctx(faults, 11);
        let m = Matrix::from_fn(16, 16, |_, _| 1.0);
        let before = c.write_matrix(0, &m, Phase::Setup);
        let dead_before: Vec<usize> = (0..16)
            .filter(|&i| (0..16).all(|j| before[(i, j)] == 0.0))
            .collect();
        assert!(!dead_before.is_empty(), "seed must draw a dead row");
        assert!(c.has_dead_lines());
        let (rows, _cols, _unmapped) = c.remap_dead_lines();
        assert!(rows > 0);
        let after = c.write_matrix(0, &m, Phase::Run);
        let dead_after = (0..16)
            .filter(|&i| (0..16).all(|j| after[(i, j)] == 0.0))
            .count();
        assert!(dead_after < dead_before.len(), "remap revived lines");
    }

    #[test]
    fn transient_upsets_strike_reads_at_the_configured_rate() {
        let faults = FaultModel::none().with_transients(0.2).unwrap();
        let mut c = faulty_ctx(faults, 13);
        let clean = vec![1.0; 64];
        let mut hit = 0;
        for _ in 0..50 {
            let out = c.adc(&clean);
            hit += out.iter().filter(|&&v| v != 1.0).count();
        }
        let rate = hit as f64 / (50.0 * 64.0);
        assert!((rate - 0.2).abs() < 0.05, "upset rate {rate}");
    }

    #[test]
    fn delta_skips_unchanged_codes() {
        let mut c = ctx(0.0);
        let m = Matrix::from_fn(8, 8, |i, j| 0.5 + (i * 8 + j) as f64 * 0.1);
        let first = c.write_matrix(0, &m, Phase::Setup);
        assert_eq!(c.ledger().counts().setup_writes, 64);
        let second = c.write_matrix(0, &m, Phase::Run);
        assert_eq!(
            c.ledger().counts().update_writes,
            0,
            "identical block re-program must be all skips"
        );
        assert_eq!(c.ledger().counts().skipped_writes, 64);
        assert_eq!(first.as_slice(), second.as_slice());
        // One changed cell writes exactly one cell.
        let mut m2 = m.clone();
        m2[(3, 3)] *= 2.0;
        c.write_matrix(0, &m2, Phase::Run);
        assert_eq!(c.ledger().counts().update_writes, 1);
    }

    #[test]
    fn delta_diag_skips_sub_lsb_changes() {
        let mut c = ctx(0.0);
        let base = vec![1.0, 2.0, 3.0, 4.0];
        c.write_diag(0, &base, Phase::Run);
        // Perturb every entry by far less than one write-code step.
        let nudged: Vec<f64> = base.iter().map(|v| v * (1.0 + 1e-6)).collect();
        let r = c.write_diag(0, &nudged, Phase::Run);
        assert_eq!(
            c.ledger().counts().update_writes,
            4,
            "second pass all skipped"
        );
        assert_eq!(c.ledger().counts().skipped_writes, 4);
        // Skipped cells resolve to the same realized value the original
        // write produced (the sub-LSB nudge rounds to the same code).
        for (got, want) in r.iter().zip(&base) {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn delta_off_matches_delta_on_bitwise_when_fault_free() {
        let m = Matrix::from_fn(12, 12, |i, j| {
            0.1 + ((i * 12 + j) as f64 * 0.731).sin().abs()
        });
        let diag: Vec<f64> = (0..12).map(|i| 0.2 + i as f64 * 0.31).collect();
        let run = |delta: bool| {
            let mut c = HwContext::new(
                CrossbarConfig::paper_default()
                    .with_seed(7)
                    .with_delta_writes(delta),
            );
            let a = c.write_matrix(0, &m, Phase::Setup);
            let b = c.write_matrix(0, &m, Phase::Run);
            let d1 = c.write_diag(1, &diag, Phase::Run);
            let d2 = c.write_diag(1, &diag, Phase::Run);
            (a, b, d1, d2)
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.0.as_slice(), off.0.as_slice());
        assert_eq!(on.1.as_slice(), off.1.as_slice());
        assert_eq!(on.2, off.2);
        assert_eq!(on.3, off.3);
    }

    #[test]
    fn reseed_invalidates_code_cache() {
        let mut c = ctx(0.0);
        let m = Matrix::from_fn(4, 4, |_, _| 1.0);
        c.write_matrix(0, &m, Phase::Setup);
        c.begin_attempt(1);
        c.write_matrix(0, &m, Phase::Setup);
        assert_eq!(
            c.ledger().counts().setup_writes,
            32,
            "redraw must re-program every cell"
        );
        c.write_matrix(0, &m, Phase::Run);
        assert_eq!(
            c.ledger().counts().update_writes,
            0,
            "cache rebuilt after redraw"
        );
        c.invalidate_codes();
        c.write_matrix(0, &m, Phase::Run);
        assert_eq!(c.ledger().counts().update_writes, 16, "manual invalidation");
    }

    #[test]
    fn begin_reuse_keeps_code_cache_and_fault_state() {
        let faults = FaultModel::symmetric(0.05).unwrap();
        let mut c = faulty_ctx(faults, 3);
        let m = Matrix::from_fn(16, 16, |_, _| 1.0);
        let first = c.write_matrix(0, &m, Phase::Setup);
        assert!(c.saw_faults());
        // Same-context repeat: every healthy cell is a delta skip.
        c.write_matrix(0, &m, Phase::Run);
        let per_repeat = c.ledger().counts().skipped_writes;
        assert!(per_repeat > 0);
        assert_eq!(c.ledger().counts().update_writes, 0);
        // Warm reuse keeps the code cache: the next repeat skips the same
        // cell set, and the fault plan still pins the same dead cells.
        c.begin_reuse(1);
        let r = c.write_matrix(0, &m, Phase::Run);
        assert_eq!(c.ledger().counts().skipped_writes, 2 * per_repeat);
        assert_eq!(c.ledger().counts().update_writes, 0);
        assert!(c.saw_faults(), "fault plans survive reuse");
        for i in 0..16 {
            for j in 0..16 {
                if first[(i, j)] == 0.0 {
                    assert_eq!(r[(i, j)], 0.0, "stuck-off cell moved at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn repair_and_remap_invalidate_code_cache() {
        let faults = FaultModel::symmetric(0.05)
            .unwrap()
            .with_weak_fraction(1.0)
            .unwrap();
        let mut c = faulty_ctx(faults, 5);
        let m = Matrix::from_fn(16, 16, |_, _| 1.0);
        c.write_matrix(0, &m, Phase::Setup);
        let (repaired, _) = c.reprogram_faulty();
        assert!(repaired > 0);
        c.write_matrix(0, &m, Phase::Run);
        // 10 extended-budget pulses per repaired cell, then a full
        // re-program of all 256 now-healthy cells (cache invalidated).
        assert_eq!(
            c.ledger().counts().update_writes as usize,
            10 * repaired + 256,
            "post-repair write re-programs everything incl. repaired cells"
        );
        assert_eq!(c.ledger().counts().skipped_writes, 0);
    }

    #[test]
    fn tiled_write_elides_planned_zero_tiles() {
        // 256×256 block-diagonal at tile 128: two live tiles, two dead.
        let m = Matrix::from_fn(256, 256, |i, j| {
            if (i < 128) == (j < 128) {
                1.0 + (i + j) as f64 * 1e-3
            } else {
                0.0
            }
        });
        let mut c = ctx(0.0);
        let t = c.write_matrix_tiled(0, &m, 128, Phase::Setup);
        assert!(t.elides());
        assert_eq!(t.occupancy().live_tiles(), 2);
        assert_eq!(t.occupancy().grid_tiles(), 4);
        let counts = c.ledger().counts();
        assert_eq!(counts.tiles_elided, 2);
        assert_eq!(counts.elided_writes, 2 * 128 * 128);
        assert_eq!(counts.setup_writes, 2 * 128 * 128);
    }

    #[test]
    fn tiled_write_matches_flat_write_bitwise_when_fault_free() {
        let m = Matrix::from_fn(256, 200, |i, j| {
            if (i < 128) == (j < 128) {
                0.2 + ((i * 7 + j * 3) % 53) as f64 * 0.01
            } else {
                0.0
            }
        });
        let mut flat = ctx(10.0);
        let r_flat = flat.write_matrix(0, &m, Phase::Setup);
        let mut tiled = ctx(10.0);
        let r_tiled = tiled.write_matrix_tiled(0, &m, 128, Phase::Setup);
        let bits = |s: &[f64]| s.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(r_flat.as_slice()),
            bits(r_tiled.realized().as_slice()),
            "fault-free elision must not change realized state"
        );
        // Same pulses charged: planned-zero cells never cost a write.
        assert_eq!(
            flat.ledger().counts().setup_writes,
            tiled.ledger().counts().setup_writes
        );
    }

    #[test]
    fn elision_keeps_faults_out_of_dead_tiles() {
        let m = Matrix::from_fn(
            256,
            256,
            |i, j| {
                if (i < 128) == (j < 128) {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let faults = FaultModel::symmetric(0.05).unwrap();
        let mut c = faulty_ctx(faults, 3);
        let t = c.write_matrix_tiled(0, &m, 128, Phase::Setup);
        assert!(c.saw_faults(), "5% over 64Ki cells must draw faults");
        let r = t.realized();
        for i in 0..256 {
            for j in 0..256 {
                if (i < 128) != (j < 128) {
                    assert_eq!(
                        r[(i, j)],
                        0.0,
                        "elided tile has no hardware to be stuck at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn charge_analog_tiled_scales_transfers_with_live_tiles() {
        let traffic = |live_tiles, grid_tiles| TileTraffic {
            live_tiles,
            grid_tiles,
            lines_per_tile: 128,
        };
        let mut c = ctx(0.0);
        c.charge_analog_tiled(false, 512, 512, 1e-3, traffic(8, 16));
        assert_eq!(c.ledger().counts().noc_transfers, 8, "live tiles ship");
        assert_eq!(c.ledger().counts().mvm_ops, 1);
        // Single-tile grids and fully dead operands need no fabric.
        let mut c1 = ctx(0.0);
        c1.charge_analog_tiled(false, 64, 64, 1e-3, traffic(1, 1));
        assert_eq!(c1.ledger().counts().noc_transfers, 0);
        let mut c0 = ctx(0.0);
        c0.charge_analog_tiled(false, 512, 512, 1e-3, traffic(0, 16));
        assert_eq!(c0.ledger().counts().noc_transfers, 0);
    }

    #[test]
    fn no_fault_config_has_no_block_state() {
        let mut c = ctx(10.0);
        let m = Matrix::from_fn(8, 8, |_, _| 1.0);
        c.write_matrix(0, &m, Phase::Setup);
        c.write_diag(1, &[1.0; 8], Phase::Run);
        assert!(!c.saw_faults());
        assert!(!c.has_dead_lines());
        assert_eq!(c.weak_faults(), 0);
        assert!(c.take_recovery_events().is_empty());
        assert_eq!(c.reprogram_faulty(), (0, 0));
        assert_eq!(c.remap_dead_lines(), (0, 0, 0));
    }
}
