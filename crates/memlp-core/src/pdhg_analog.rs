//! Crossbar-native PDHG: the first-order backend on analog hardware.
//!
//! Where Algorithm 1 rewrites the iterate-dependent diagonals of a Newton
//! system and performs one analog *solve* per iteration, PDHG needs only
//! one MVM with `A` and one with `Aᵀ` — operations the crossbar performs
//! in O(1) with **no per-iteration writes at all**: the §3.2 sign-split
//! blocks `A′`/`A″` are programmed once at setup and never touched again.
//! That makes the first-order backend the cheapest possible use of the
//! array (zero update-write energy, MVM-only run phase) and the only
//! analog path whose digital controller state stays O(n + m) — past the
//! dense-core allocation wall this is the path that still fits.
//!
//! **The transposed MVM costs no second array program.** The same
//! physical arrays that compute `A′x`/`A″p` are driven from the word-line
//! side to compute `A′ᵀy`/`A″ᵀy` — at the device level this is
//! [`memlp_crossbar::Crossbar::mvm_transposed`] and its NoC-tiled
//! counterpart [`TiledCrossbar::mvm_transposed`], which ship each tile's
//! bit-line read-back through the same fan-in fabric as the forward
//! product. Here the realized blocks returned by
//! [`HwContext::write_matrix`] model exactly that: one write, two drive
//! directions. The compensation columns fold the transpose of the
//! sign-split back together: `Aᵀy = A′ᵀy` with
//! `(Aᵀy)[comp_cols[r]] −= (A″ᵀy)[r]`.
//!
//! The iteration itself is [`memlp_solvers::pdhg::solve_with_operator`] —
//! bit-for-bit the same restarted, adaptively-weighted loop as the
//! digital path; only the operator differs. Retry, recovery-ladder, and
//! budget semantics mirror [`CrossbarPdipSolver`].
//!
//! [`CrossbarPdipSolver`]: crate::CrossbarPdipSolver
//! [`TiledCrossbar::mvm_transposed`]: memlp_noc::TiledCrossbar::mvm_transposed

use memlp_crossbar::{CrossbarConfig, Phase};
use memlp_linalg::{kernels, norm_est};
use memlp_lp::{Equilibration, LpProblem, LpStatus};
use memlp_solvers::budget::Budget;
use memlp_solvers::pdhg::{self, PdhgOperator, PdhgOptions, PdhgStats};

use crate::hw::{HwContext, TileTraffic};
use crate::recovery::{self, RecoveryEvent, RecoveryPolicy, RecoveryReport};
use crate::solver::CrossbarSolution;
use crate::tiles::{TiledMatrix, ANALOG_TILE_SIDE};
use crate::trace::{FactorStats, IterationRecord, SolverTrace, WriteStats};
use crate::transform::SignSplit;

/// Stable block keys for the PDHG arrays. Disjoint from the Newton-system
/// keys (0..=17) and the Algorithm 2 keys (0..=19) so a warm serving
/// context can host either solver family without fault-plan collisions.
mod key {
    pub const POS: u32 = 32;
    pub const NEG: u32 = 33;
}

/// Options for the crossbar PDHG solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarPdhgOptions {
    /// First-order loop options. Exit tolerances default looser than the
    /// digital baselines: the 8-bit analog I/O sets a noise floor well
    /// above 1e-8, exactly as for the crossbar PDIP solvers.
    pub pdhg: PdhgOptions,
    /// The §3.2 relaxed feasibility parameter `α`: a converged iterate
    /// must satisfy `A·x ⪯ α·b` on the *true* problem or the attempt is
    /// re-run with fresh variation. The default is wider than the PDIP
    /// solvers' because first-order iterates converge **onto** the
    /// boundary of the realized polytope — an interior-point iterate
    /// approaches from inside and keeps a natural margin, but a PDHG
    /// solution's active rows sit at `Ãx = b` exactly, so the true-`A`
    /// margin must absorb the whole realized-vs-true deviation (process
    /// variation plus the converter floor).
    pub alpha: f64,
    /// Re-solve attempts on failure (§4.3 double checking — each retry
    /// rewrites the arrays, redrawing variation).
    pub retries: usize,
    /// How far the solver may escalate when write–verify reports defects.
    pub recovery: RecoveryPolicy,
}

impl Default for CrossbarPdhgOptions {
    fn default() -> Self {
        CrossbarPdhgOptions {
            pdhg: PdhgOptions {
                eps_primal: 2e-2,
                // The dual tolerance sits above the others: every drive
                // quantizes the dual vector through the 8-bit DAC, and
                // that per-entry error enters `Aᵀy` with gain ~‖A‖ —
                // for unit-cost problems (cnorm ≈ 2, column sums ~4,
                // dual range ~6) the floor is ≈ 4·6/2⁹ ≈ 5e-2. Asking
                // for less leaves the dual iterate random-walking in a
                // quantization band it can never exit.
                eps_dual: 6e-2,
                eps_gap: 8e-3,
                max_iterations: 50_000,
                ..PdhgOptions::default()
            },
            alpha: 1.1,
            retries: 2,
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// The analog [`PdhgOperator`]: sign-split blocks programmed once, every
/// `apply`/`apply_transposed` a quantized crossbar drive against the
/// realized matrices, charged to the context's ledger.
struct AnalogSplitOperator<'hw> {
    hw: &'hw mut HwContext,
    /// Realized `A′` (m×n, ⪰ 0) with the occupancy of the planned split.
    pos: TiledMatrix,
    /// Realized `A″` (m×k, ⪰ 0); zero columns when `A ⪰ 0`.
    neg: TiledMatrix,
    /// Source column of each compensation column.
    comp_cols: Vec<usize>,
    /// Cells with hardware behind them (live tiles under elision), for
    /// settle-energy estimates.
    cells: usize,
    /// Tiles each MVM schedules across both planes (live under elision).
    live_tiles: usize,
    /// Fabric grid positions across both planes (hop geometry).
    grid_tiles: usize,
    mvms: u64,
}

impl<'hw> AnalogSplitOperator<'hw> {
    /// Programs the sign-split blocks (setup phase) on `hw`, tiled at the
    /// NoC sub-array granularity so planned-zero tiles are elided when the
    /// configuration asks for it.
    fn program(lp: &LpProblem, hw: &'hw mut HwContext) -> Self {
        let split = SignSplit::split(lp.a());
        let pos = hw.write_matrix_tiled(key::POS, &split.pos, ANALOG_TILE_SIDE, Phase::Setup);
        let neg = if split.num_compensations() > 0 {
            hw.write_matrix_tiled(key::NEG, &split.neg, ANALOG_TILE_SIDE, Phase::Setup)
        } else {
            TiledMatrix::new(
                &split.neg,
                split.neg.clone(),
                ANALOG_TILE_SIDE,
                hw.config().tile_elision,
            )
        };
        let cells = pos.active_cells() + neg.active_cells();
        let live_tiles = pos.scheduled_tiles() + neg.scheduled_tiles();
        let grid_tiles = pos.occupancy().grid_tiles() + neg.occupancy().grid_tiles();
        AnalogSplitOperator {
            hw,
            pos,
            neg,
            comp_cols: split.comp_cols,
            cells,
            live_tiles,
            grid_tiles,
            mvms: 0,
        }
    }

    fn charge(&mut self, inputs: usize, outputs: usize) {
        let g = self.hw.conductance_estimate(self.cells, 1.0, 1.0);
        self.hw.charge_analog_tiled(
            false,
            inputs,
            outputs,
            g,
            TileTraffic {
                live_tiles: self.live_tiles,
                grid_tiles: self.grid_tiles,
                lines_per_tile: ANALOG_TILE_SIDE,
            },
        );
        self.mvms += 1;
    }

    /// Deterministic power iteration `v ← AᵀAv` driven through the
    /// programmed arrays themselves.
    ///
    /// Variation skews the realized matrices, so the realized operator
    /// norm can exceed the ideal ‖A‖ that digital preprocessing measured
    /// — and PDHG's contraction needs `τσ‖A‖² ≤ 1 `for the operator it
    /// actually drives. Stepping from the ideal norm alone leaves the
    /// iteration without that margin on unlucky draws: it settles into a
    /// limit cycle with residuals parked just above tolerance. A handful
    /// of MVM pairs (charged to the ledger like any other drive)
    /// recovers the realized norm; `floor` — the digital estimate —
    /// guards the noisy low side and [`REALIZED_NORM_MARGIN`] covers
    /// truncation plus readout quantization on the high side.
    fn realized_norm(&mut self, floor: f64) -> f64 {
        let n = self.cols();
        let mut v = vec![1.0 / (n as f64).sqrt().max(1.0); n];
        let mut sigma = 0.0f64;
        for _ in 0..NORM_POWER_ITERS {
            let av = self.apply(&v);
            let atav = self.apply_transposed(&av);
            let norm = atav.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm <= 0.0 {
                break;
            }
            sigma = norm.sqrt();
            for (vi, ai) in v.iter_mut().zip(&atav) {
                *vi = ai / norm;
            }
        }
        (sigma * REALIZED_NORM_MARGIN).max(floor)
    }

    /// Noise-free products `Ãx` and `Ãᵀy` against the realized blocks —
    /// the controller's read-verify view of the programmed state, with
    /// no DAC/ADC quantization, no read noise, and no ledger charge
    /// (write-verify already read these conductances back).
    fn realized_products(&self, x: &[f64], y: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut ax = self.pos.matvec(x);
        let mut aty = self.pos.matvec_transposed(y);
        if !self.comp_cols.is_empty() {
            let p: Vec<f64> = self.comp_cols.iter().map(|&j| -x[j]).collect();
            let extra = self.neg.matvec(&p);
            for (axi, e) in ax.iter_mut().zip(&extra) {
                *axi += e;
            }
            let extra_t = self.neg.matvec_transposed(y);
            for (r, &j) in self.comp_cols.iter().enumerate() {
                aty[j] -= extra_t[r];
            }
        }
        (ax, aty)
    }

    /// Folds the compensation plane into a forward product: drives `A″`
    /// with `p = −xq[comp_cols]` and accumulates into `y`. The rail
    /// vector and the plane's read-back live in one thread-local pack
    /// buffer, so the per-MVM compensation costs no allocation.
    fn add_compensation_forward(&self, xq: &[f64], y: &mut [f64]) {
        let k = self.comp_cols.len();
        let m = self.neg.rows();
        kernels::with_pack_buffer(k + m, |buf| {
            let (p, extra) = buf.split_at_mut(k);
            for (pi, &j) in p.iter_mut().zip(&self.comp_cols) {
                *pi = -xq[j];
            }
            self.neg.matvec_into(p, extra);
            for (yi, e) in y.iter_mut().zip(extra.iter()) {
                *yi += e;
            }
        });
    }

    /// Transposed counterpart: subtracts `A″ᵀ·yq` from the source columns
    /// of `x`, through the same thread-local scratch.
    fn sub_compensation_transposed(&self, yq: &[f64], x: &mut [f64]) {
        let k = self.comp_cols.len();
        kernels::with_pack_buffer(k, |extra| {
            self.neg.matvec_transposed_into(yq, extra);
            for (r, &j) in self.comp_cols.iter().enumerate() {
                x[j] -= extra[r];
            }
        });
    }
}

/// Power-iteration rounds for the realized-norm estimate; `AᵀA` squares
/// the spectral gap, so a dozen rounds resolve `σ_max` to well under the
/// safety margin on LP constraint matrices.
const NORM_POWER_ITERS: usize = 12;

/// Head-room multiplied onto the realized-norm estimate: covers the
/// truncated power iteration plus ADC/DAC quantization of the probe
/// drives.
const REALIZED_NORM_MARGIN: f64 = 1.05;

impl PdhgOperator for AnalogSplitOperator<'_> {
    fn rows(&self) -> usize {
        self.pos.rows()
    }

    fn cols(&self) -> usize {
        self.pos.cols()
    }

    /// `A·x` on the array: bit lines driven with the DAC-quantized `x`
    /// (compensation rails carry `p = −x[comp_cols]`), word-line currents
    /// ADC-quantized on read-back.
    ///
    /// memlp-lint: analog_source
    fn apply(&mut self, x: &[f64]) -> Vec<f64> {
        let xq = self.hw.dac(x);
        let mut y = self.pos.matvec(&xq);
        if !self.comp_cols.is_empty() {
            self.add_compensation_forward(&xq, &mut y);
        }
        self.charge(self.cols(), self.rows());
        self.hw.adc(&y)
    }

    /// `Aᵀ·y` on the **same** arrays, word-line driven (the NoC tile
    /// transpose): no second array program exists or is needed. The
    /// compensation correction folds `A″ᵀy` back into the source columns.
    ///
    /// memlp-lint: analog_source
    fn apply_transposed(&mut self, y: &[f64]) -> Vec<f64> {
        let yq = self.hw.dac(y);
        let mut x = self.pos.matvec_transposed(&yq);
        if !self.comp_cols.is_empty() {
            self.sub_compensation_transposed(&yq, &mut x);
        }
        self.charge(self.rows(), self.cols());
        self.hw.adc(&x)
    }

    fn mvms(&self) -> u64 {
        self.mvms
    }
}

/// The crossbar-native PDHG solver: matrix-free first-order solves with
/// analog MVMs, sharing the retry/recovery/budget substrate with
/// [`CrossbarPdipSolver`](crate::CrossbarPdipSolver) and the iteration
/// loop with the digital [`memlp_solvers::PdhgSolver`].
///
/// # Example
///
/// ```
/// use memlp_core::{CrossbarPdhgOptions, CrossbarPdhgSolver};
/// use memlp_crossbar::CrossbarConfig;
/// use memlp_lp::{generator::RandomLp, LpStatus};
///
/// let lp = RandomLp::paper(12, 3).feasible();
/// let solver = CrossbarPdhgSolver::new(
///     CrossbarConfig::paper_default(),
///     CrossbarPdhgOptions::default(),
/// );
/// let result = solver.solve(&lp);
/// assert_eq!(result.solution.status, LpStatus::Optimal);
/// ```
#[derive(Debug, Clone)]
pub struct CrossbarPdhgSolver {
    config: CrossbarConfig,
    options: CrossbarPdhgOptions,
}

impl CrossbarPdhgSolver {
    /// Creates a solver over the given hardware configuration.
    pub fn new(config: CrossbarConfig, options: CrossbarPdhgOptions) -> Self {
        CrossbarPdhgSolver { config, options }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// The solver options.
    pub fn options(&self) -> &CrossbarPdhgOptions {
        &self.options
    }

    /// Solves `lp`, re-solving on failure up to the retry budget and
    /// escalating through the fault-recovery ladder between attempts.
    pub fn solve(&self, lp: &LpProblem) -> CrossbarSolution {
        self.solve_budgeted(lp, Budget::none())
    }

    /// [`Self::solve`] under an explicit iteration/deadline [`Budget`],
    /// polled once per PDHG iteration cumulatively across attempts. On
    /// expiry the best KKT iterate observed so far is returned with
    /// [`CrossbarSolution::degraded`] set.
    pub fn solve_budgeted(&self, lp: &LpProblem, budget: Budget<'_>) -> CrossbarSolution {
        let mut hw = HwContext::new(self.config);
        self.solve_inner(lp, &mut hw, budget, None, None)
    }

    /// Solves on an **existing** hardware context — the warm-pool entry
    /// point used by `memlp-serve`. Semantics mirror
    /// [`CrossbarPdipSolver::solve_on`](crate::CrossbarPdipSolver::solve_on):
    /// warm reuse keeps the variation draw and delta-write code caches (a
    /// repeat request's setup writes skip as delta no-ops), `warm` seeds
    /// the first attempt's iterate from a previous solution, and
    /// escalation retries redraw variation like a cold solve.
    pub fn solve_on(
        &self,
        lp: &LpProblem,
        hw: &mut HwContext,
        budget: Budget<'_>,
        warm: Option<(&[f64], &[f64])>,
        reuse_salt: u64,
    ) -> CrossbarSolution {
        self.solve_inner(lp, hw, budget, warm, Some(reuse_salt))
    }

    fn solve_inner(
        &self,
        lp: &LpProblem,
        hw: &mut HwContext,
        budget: Budget<'_>,
        warm: Option<(&[f64], &[f64])>,
        reuse_salt: Option<u64>,
    ) -> CrossbarSolution {
        let mut report = RecoveryReport::new(self.options.recovery);
        // Row equilibration (when enabled) happens *before* the arrays
        // are programmed: the crossbar maps every coefficient onto one
        // shared conductance range, so balancing row maxima is worth
        // conductance resolution on hardware, not just iteration count.
        // Duals are unscaled (and residuals rescored against the original
        // problem) on the way out; equilibration failure falls back to
        // the unscaled problem.
        let (wlp, eq): (LpProblem, Option<Equilibration>) = if self.options.pdhg.equilibrate {
            match memlp_lp::equilibrate(lp) {
                Ok((scaled, eq)) => (scaled, Some(eq)),
                Err(_) => (lp.clone(), None),
            }
        } else {
            (lp.clone(), None)
        };
        // Warm duals ride into the scaled space (`y_scaled = y·s`).
        let warm_scaled: Option<(Vec<f64>, Vec<f64>)> = warm.map(|(x0, y0)| {
            let ys = match &eq {
                Some(e) => pdhg::scale_duals(y0, &e.row_scales),
                None => y0.to_vec(),
            };
            (x0.to_vec(), ys)
        });
        // Digital preprocessing on the (scaled) true A gives the floor;
        // each attempt then refines it through the programmed arrays (see
        // `realized_norm`), because the variation-skewed operator the
        // loop drives can have a larger norm than the ideal matrix.
        let a = wlp.sparse_a();
        let est = norm_est::spectral_norm(a);
        let sigma_floor = est.safe_sigma(norm_est::upper_bound(a));
        let mut last = None;
        for attempt in 0..=self.options.retries {
            match reuse_salt {
                Some(salt) if attempt == 0 => hw.begin_reuse(salt),
                _ => hw.begin_attempt(attempt as u64),
            }
            let init = if attempt == 0 {
                warm_scaled
                    .as_ref()
                    .map(|(x0, y0)| (x0.as_slice(), y0.as_slice()))
            } else {
                None
            };
            let mut op = AnalogSplitOperator::program(&wlp, hw);
            let sigma = op.realized_norm(sigma_floor);
            let mut outcome =
                pdhg::solve_with_operator(&wlp, &mut op, sigma, &self.options.pdhg, budget, init);
            // The loop terminates on residuals estimated through the
            // array readout, and readout noise puts a floor under the
            // measured dual residual — a run that exhausts its iterations
            // may already hold a converged iterate it cannot see. The
            // arbiter is a noise-free check against the *realized* blocks
            // (converged-on-realized is what "optimal" means on analog
            // hardware; the α-test below still guards true-problem
            // feasibility, exactly as for the PDIP solvers).
            if outcome.cause.is_none() && outcome.solution.status == LpStatus::IterationLimit {
                let s = &mut outcome.solution;
                let (ax, aty) = op.realized_products(&s.x, &s.y);
                let (pr, dr, gap) = pdhg::kkt_with_products(&wlp, &s.x, &s.y, &ax, &aty);
                let o = &self.options.pdhg;
                if pr <= o.eps_primal && dr <= o.eps_dual && gap <= o.eps_gap {
                    s.status = LpStatus::Optimal;
                    s.primal_residual = pr;
                    s.dual_residual = dr;
                    s.duality_gap = gap;
                }
            }
            drop(op);
            // Back to the caller's space: unscale duals and rescore the
            // residual fields against the original problem (the digital
            // recomputation `solve_with_operator` itself performs, just
            // against `lp` instead of the scaled copy).
            if let Some(e) = &eq {
                outcome.solution.y = e.unscale_duals(&outcome.solution.y);
                pdhg::rescore(lp, &mut outcome.solution);
            }
            let trace = trace_from_stats(&outcome.stats);
            for e in hw.take_recovery_events() {
                report.push(e);
            }
            // Budget expiry ends the solve now, exactly as in the PDIP
            // retry ladder: best effort by the deadline, no escalation.
            if let Some(cause) = outcome.cause {
                return self.finish(outcome.solution, trace, hw, attempt, report, Some(cause));
            }
            let solution = outcome.solution;
            let hw_suspect = self.options.recovery.acts() && report.saw_faults();
            let failed = matches!(solution.status, LpStatus::NumericalFailure)
                || (matches!(
                    solution.status,
                    LpStatus::IterationLimit | LpStatus::Infeasible
                ) && hw_suspect)
                || (solution.status == LpStatus::IterationLimit && attempt < self.options.retries)
                // A converged run on suspect hardware gets the strict §3.2
                // α-check digitally: the analog KKT residuals describe the
                // realized (faulty) operator, not the true problem.
                || (solution.status == LpStatus::Optimal
                    && !lp.satisfies_relaxed_scaled(&solution.x, self.options.alpha));
            if !failed {
                return self.finish(solution, trace, hw, attempt, report, None);
            }
            last = Some((solution, trace, attempt));
            if attempt < self.options.retries {
                recovery::escalate_hardware(self.options.recovery, hw, &mut report);
                report.push(RecoveryEvent::VariationRedraw {
                    attempt: attempt + 1,
                });
            }
        }
        let (mut solution, trace, attempt) = last.unwrap_or_else(|| {
            (
                memlp_lp::LpSolution::failed(LpStatus::NumericalFailure, 0),
                SolverTrace::new(),
                0,
            )
        });
        // Retry budget exhausted. An α-violating "Optimal" is demoted
        // before the fallback decision (it was `failed` every attempt).
        if solution.status == LpStatus::Optimal
            && !lp.satisfies_relaxed_scaled(&solution.x, self.options.alpha)
        {
            solution.status = LpStatus::NumericalFailure;
        }
        // Digital fallback ladder (first-order rung, then dense PDIP) for
        // runs defective hardware left unresolved — same gate as the
        // crossbar PDIP solvers: fault-free failures keep their verdict.
        let unresolved = matches!(
            solution.status,
            LpStatus::NumericalFailure | LpStatus::IterationLimit | LpStatus::Infeasible
        );
        if unresolved && self.options.recovery.allows_digital() && report.saw_faults() {
            let (digital, events) = recovery::digital_fallback(lp, 250);
            for e in events {
                report.push(e);
            }
            solution = digital;
        }
        self.finish(solution, trace, hw, attempt, report, None)
    }

    fn finish(
        &self,
        solution: memlp_lp::LpSolution,
        mut trace: SolverTrace,
        hw: &mut HwContext,
        retries_used: usize,
        report: RecoveryReport,
        degraded: Option<memlp_solvers::budget::BudgetCause>,
    ) -> CrossbarSolution {
        trace.events = report.events.clone();
        trace.writes = WriteStats::from_ledger(hw.ledger());
        trace.factors = FactorStats::from_ledger(hw.ledger());
        CrossbarSolution {
            solution,
            ledger: *hw.ledger(),
            trace,
            retries_used,
            recovery: report,
            degraded,
        }
    }
}

/// Mirrors the PDHG checkpoint samples into the workspace's common trace
/// format: first-order methods have no barrier parameter or step length,
/// so `mu`/`theta` are 0 and the KKT residuals fill the residual fields.
fn trace_from_stats(stats: &PdhgStats) -> SolverTrace {
    let mut trace = SolverTrace::new();
    for s in &stats.samples {
        trace.push(IterationRecord {
            mu: 0.0,
            gap: s.gap,
            primal_residual: s.primal,
            dual_residual: s.dual,
            theta: 0.0,
        });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlp_lp::generator::RandomLp;
    use memlp_solvers::pdhg::PdhgSolver;
    use memlp_solvers::LpSolver;

    fn solver(var_pct: f64, seed: u64) -> CrossbarPdhgSolver {
        CrossbarPdhgSolver::new(
            CrossbarConfig::paper_default()
                .with_variation(var_pct)
                .with_seed(seed),
            CrossbarPdhgOptions::default(),
        )
    }

    #[test]
    fn solves_small_ideal() {
        let lp = RandomLp::paper(12, 1).feasible();
        let res = solver(0.0, 1).solve(&lp);
        assert_eq!(res.solution.status, LpStatus::Optimal, "{}", res.solution);
        let reference = PdhgSolver::default().solve(&lp);
        let rel = (res.solution.objective - reference.objective).abs()
            / (1.0 + reference.objective.abs());
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn analog_and_digital_agree_on_verdicts() {
        for seed in [3u64, 7, 21] {
            let lp = RandomLp::paper(16, seed).feasible();
            let analog = solver(5.0, seed).solve(&lp);
            let digital = PdhgSolver::default().solve(&lp);
            assert_eq!(analog.solution.status, digital.status, "seed {seed}");
        }
    }

    #[test]
    fn run_phase_is_write_free() {
        let lp = RandomLp::paper(12, 5).feasible();
        let res = solver(0.0, 2).solve(&lp);
        assert_eq!(res.solution.status, LpStatus::Optimal);
        let counts = res.ledger.counts();
        // The first-order backend programs at setup and never updates:
        // zero run-phase writes, MVMs dominating the operation mix.
        assert_eq!(counts.update_writes, 0, "PDHG must not rewrite cells");
        assert_eq!(counts.solve_ops, 0, "PDHG performs no analog solves");
        assert!(counts.mvm_ops >= 2, "forward + transposed MVMs expected");
        assert!(counts.setup_writes > 0);
    }

    #[test]
    fn budget_degrades_with_best_iterate() {
        use memlp_solvers::{Budget, BudgetCause};
        let lp = RandomLp::paper(16, 2).feasible();
        let s = solver(0.0, 3);
        let full = s.solve(&lp);
        assert!(full.degraded.is_none());
        let capped = s.solve_budgeted(&lp, Budget::none().with_max_iters(4));
        assert_eq!(capped.degraded, Some(BudgetCause::MaxIters));
        assert_eq!(capped.solution.status, LpStatus::IterationLimit);
        assert_eq!(capped.solution.x.len(), lp.num_vars());
    }

    #[test]
    fn solve_on_reuses_warm_context_and_state() {
        use memlp_solvers::Budget;
        let lp = RandomLp::paper(16, 5).feasible();
        let s = solver(5.0, 7);
        let mut hw = HwContext::new(*s.config());
        let cold = s.solve_on(&lp, &mut hw, Budget::none(), None, 0);
        assert_eq!(cold.solution.status, LpStatus::Optimal, "{}", cold.solution);
        let after_cold = cold.ledger.counts();
        let warm = s.solve_on(
            &lp,
            &mut hw,
            Budget::none(),
            Some((&cold.solution.x, &cold.solution.y)),
            1,
        );
        assert_eq!(warm.solution.status, LpStatus::Optimal, "{}", warm.solution);
        let after_warm = warm.ledger.counts();
        // Static blocks repeat byte-identically: every setup write of the
        // warm pass is skipped by delta programming.
        assert!(
            after_warm.skipped_writes > after_cold.skipped_writes,
            "warm repeat must skip unchanged cells: {} -> {}",
            after_cold.skipped_writes,
            after_warm.skipped_writes
        );
    }

    #[test]
    fn elision_is_bitwise_invisible_on_fault_free_domains() {
        use memlp_linalg::Matrix;
        // Block-sparse constraint matrix spanning a 2×2 tile grid at the
        // analog tile side, with the (1, 1) block planned dead.
        let m = 192;
        let n = 200;
        let a = Matrix::from_fn(m, n, |i, j| {
            let live = i < 128 || j < 128;
            if live {
                0.05 + ((i * 13 + j * 7) % 41) as f64 * 0.02
            } else {
                0.0
            }
        });
        let ones = vec![1.0; n];
        let b: Vec<f64> = a.matvec(&ones).iter().map(|v| v * 1.2 + 1.0).collect();
        let lp = memlp_lp::LpProblem::new(a, b, vec![1.0; n]).unwrap();
        let run = |elide: bool| {
            let cfg = CrossbarConfig::paper_default()
                .with_variation(5.0)
                .with_seed(9)
                .with_tile_elision(elide);
            let opts = CrossbarPdhgOptions {
                pdhg: PdhgOptions {
                    max_iterations: 600,
                    ..CrossbarPdhgOptions::default().pdhg
                },
                retries: 0,
                ..CrossbarPdhgOptions::default()
            };
            CrossbarPdhgSolver::new(cfg, opts).solve(&lp)
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.solution.status, off.solution.status);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&on.solution.x), bits(&off.solution.x));
        assert_eq!(bits(&on.solution.y), bits(&off.solution.y));
        // Only the cost model sees the elision.
        let (con, coff) = (on.ledger.counts(), off.ledger.counts());
        assert!(con.tiles_elided > 0, "dead tile must be elided");
        assert_eq!(coff.tiles_elided, 0);
        assert!(
            con.setup_writes < coff.setup_writes,
            "the tile sweep charges every fabricated cell, so eliding dead \
             tiles must shed setup writes: {} vs {}",
            con.setup_writes,
            coff.setup_writes
        );
        assert_eq!(
            con.setup_writes + con.elided_writes,
            coff.setup_writes + coff.elided_writes,
            "charged + elided must reconstruct the full-grid sweep"
        );
        assert!(
            con.noc_transfers < coff.noc_transfers,
            "live-tile scheduling must shed fabric traffic: {} vs {}",
            con.noc_transfers,
            coff.noc_transfers
        );
        assert!(on.ledger.run_time_s() < off.ledger.run_time_s());
    }

    #[test]
    fn trace_mirrors_checkpoints() {
        let lp = RandomLp::paper(12, 8).feasible();
        let res = solver(0.0, 11).solve(&lp);
        assert!(!res.trace.records.is_empty());
        let last = res.trace.records.last().unwrap();
        assert!(last.primal_residual <= 2e-2 + 1e-12);
        assert!(res.trace.records.iter().all(|r| r.mu == 0.0));
    }
}
