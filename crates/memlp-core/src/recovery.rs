//! Escalating fault recovery shared by Algorithm 1 and Algorithm 2.
//!
//! When write–verify detects hard defects the solvers climb a ladder of
//! increasingly expensive countermeasures, each rung recorded as a
//! [`RecoveryEvent`]:
//!
//! 1. **Re-program** — weak stuck cells (insufficient forming) are rewritten
//!    with an extended pulse budget; most stuck-at defects clear here.
//! 2. **Remap** — logical lines on dead word/bit lines are relocated onto
//!    the array's spare lines through the row/column decoder
//!    ([`memlp_crossbar::LineRemap`]).
//! 3. **Variation redraw** — the existing §4.3 double-checking scheme:
//!    re-write everything, redrawing Eqn 18 variation, and re-solve.
//! 4. **First-order digital fallback** — a matrix-free digital PDHG solve
//!    ([`memlp_solvers::PdhgSolver`]) at tight tolerance: O(nnz) working
//!    memory and MVM-only work make it the cheaper digital rung, and past
//!    the dense-core allocation wall it is the only one that fits.
//! 5. **Dense digital fallback** — a bounded digital iterative-refinement
//!    PDIP solve ([`memlp_solvers::NormalEqPdip`]) guarantees an answer
//!    (and the trusted infeasibility/unboundedness certificates) when the
//!    first-order rung does not converge, at digital latency/energy cost.
//!
//! The full ladder is the [`RecoveryPolicy::Full`] policy;
//! [`RecoveryPolicy::Hardware`] stops after rung 3 (analog-only recovery),
//! and [`RecoveryPolicy::Disabled`] reports faults without acting on them —
//! the ablation baseline.

use memlp_lp::{LpProblem, LpSolution, LpStatus};
use memlp_solvers::{LpSolver, NormalEqPdip, PdhgOptions, PdhgSolver, PdipOptions};

/// How far the solvers may escalate when faults are detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Detect and report faults, but take no countermeasures (baseline for
    /// fault-impact ablations).
    Disabled,
    /// Hardware-only recovery: re-program weak cells, remap dead lines,
    /// redraw variation. Never leaves the analog path.
    Hardware,
    /// Hardware recovery plus the bounded digital iterative-refinement
    /// fallback when the analog path cannot deliver an in-tolerance answer.
    #[default]
    Full,
}

impl RecoveryPolicy {
    /// `true` if any recovery action (beyond detection) is permitted.
    pub fn acts(&self) -> bool {
        *self != RecoveryPolicy::Disabled
    }

    /// `true` if the digital fallback rung is permitted.
    pub fn allows_digital(&self) -> bool {
        *self == RecoveryPolicy::Full
    }
}

/// One step of the recovery ladder, as it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// Write–verify flagged defects on a hardware block.
    FaultsDetected {
        /// Block key (the solver's stable identifier for the physical
        /// region; see `HwContext::write_matrix`).
        block: u32,
        /// Stuck cells detected on the block.
        stuck_cells: usize,
        /// Subset of stuck cells classified weak (repairable).
        weak_cells: usize,
        /// Dead word lines crossing the block.
        dead_rows: usize,
        /// Dead bit lines crossing the block.
        dead_cols: usize,
    },
    /// Rung 1: weak cells re-programmed with an extended pulse budget.
    Reprogrammed {
        /// Cells restored to programmability.
        repaired: usize,
        /// Hard stuck cells remaining after the pass.
        remaining: usize,
    },
    /// Rung 2: logical lines relocated onto spare physical lines.
    Remapped {
        /// Dead rows successfully remapped.
        rows: usize,
        /// Dead columns successfully remapped.
        cols: usize,
        /// Dead lines left unmapped (spare budget exhausted).
        unmapped: usize,
    },
    /// Rung 3: the §4.3 double-check — full re-write with fresh variation.
    VariationRedraw {
        /// Attempt number the redraw precedes (1-based).
        attempt: usize,
    },
    /// Rung 4: matrix-free digital PDHG ran as the cheap first digital
    /// rung; its result replaced the analog one only if it converged.
    FirstOrderFallback {
        /// Iterations the first-order solver spent.
        iterations: usize,
    },
    /// Rung 5: bounded digital iterative-refinement solve replaced the
    /// analog result.
    DigitalFallback {
        /// Iterations the digital solver spent.
        iterations: usize,
    },
}

/// Structured account of every recovery action a solve took, surfaced on
/// `CrossbarSolution` and mirrored into the solve trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryReport {
    /// Policy the solve ran under.
    pub policy: RecoveryPolicy,
    /// Events in the order they occurred.
    pub events: Vec<RecoveryEvent>,
}

impl RecoveryReport {
    /// An empty report under `policy`.
    pub fn new(policy: RecoveryPolicy) -> Self {
        RecoveryReport {
            policy,
            events: Vec::new(),
        }
    }

    /// Appends an event.
    pub fn push(&mut self, e: RecoveryEvent) {
        self.events.push(e);
    }

    /// Number of escalation *actions* taken (detection events excluded).
    pub fn escalations(&self) -> usize {
        self.events
            .iter()
            .filter(|e| !matches!(e, RecoveryEvent::FaultsDetected { .. }))
            .count()
    }

    /// `true` if any block reported defects.
    pub fn saw_faults(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, RecoveryEvent::FaultsDetected { .. }))
    }

    /// `true` if either digital fallback rung (first-order PDHG or dense
    /// iterative-refinement PDIP) ran.
    pub fn used_digital_fallback(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e,
                RecoveryEvent::DigitalFallback { .. } | RecoveryEvent::FirstOrderFallback { .. }
            )
        })
    }
}

/// Rungs 1–2 of the ladder, run between failed attempts when the policy
/// permits hardware countermeasures: re-program weak stuck cells, then
/// remap dead lines onto spares. Shared by both crossbar solvers.
pub(crate) fn escalate_hardware(
    policy: RecoveryPolicy,
    hw: &mut crate::hw::HwContext,
    report: &mut RecoveryReport,
) {
    if !policy.acts() {
        return;
    }
    if hw.weak_faults() > 0 {
        let (repaired, remaining) = hw.reprogram_faulty();
        report.push(RecoveryEvent::Reprogrammed {
            repaired,
            remaining,
        });
    }
    if hw.has_dead_lines() {
        let (rows, cols, unmapped) = hw.remap_dead_lines();
        report.push(RecoveryEvent::Remapped {
            rows,
            cols,
            unmapped,
        });
    }
}

/// Rungs 4–5: the digital fallback ladder. Tries the matrix-free
/// first-order solve (digital PDHG at tight tolerance) first — O(nnz)
/// memory and MVM-only work make it the cheaper rung, and past the
/// dense-core wall the only admissible one. A non-`Optimal` first-order
/// exit falls through to the bounded iterative-refinement PDIP, whose
/// infeasibility/unboundedness certificates are the trusted ones.
/// Returns the adopted solution plus the rung events in climb order.
pub(crate) fn digital_fallback(
    lp: &LpProblem,
    max_iterations: usize,
) -> (LpSolution, Vec<RecoveryEvent>) {
    let first_order = PdhgSolver::new(PdhgOptions {
        eps_primal: 1e-6,
        eps_dual: 1e-6,
        eps_gap: 1e-6,
        ..PdhgOptions::default()
    });
    let sol = first_order.solve(lp);
    let mut events = vec![RecoveryEvent::FirstOrderFallback {
        iterations: sol.iterations,
    }];
    if sol.status == LpStatus::Optimal {
        return (sol, events);
    }
    let solver = NormalEqPdip::new(PdipOptions {
        max_iterations,
        ..PdipOptions::default()
    });
    let sol = solver.solve(lp);
    events.push(RecoveryEvent::DigitalFallback {
        iterations: sol.iterations,
    });
    (sol, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlp_lp::{generator::RandomLp, LpStatus};

    #[test]
    fn policy_gates() {
        assert!(!RecoveryPolicy::Disabled.acts());
        assert!(RecoveryPolicy::Hardware.acts());
        assert!(RecoveryPolicy::Full.acts());
        assert!(!RecoveryPolicy::Hardware.allows_digital());
        assert!(RecoveryPolicy::Full.allows_digital());
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::Full);
    }

    #[test]
    fn report_counts_escalations_not_detections() {
        let mut r = RecoveryReport::new(RecoveryPolicy::Full);
        assert!(!r.saw_faults());
        r.push(RecoveryEvent::FaultsDetected {
            block: 0,
            stuck_cells: 3,
            weak_cells: 2,
            dead_rows: 1,
            dead_cols: 0,
        });
        r.push(RecoveryEvent::Reprogrammed {
            repaired: 2,
            remaining: 1,
        });
        r.push(RecoveryEvent::Remapped {
            rows: 1,
            cols: 0,
            unmapped: 0,
        });
        r.push(RecoveryEvent::VariationRedraw { attempt: 1 });
        r.push(RecoveryEvent::DigitalFallback { iterations: 17 });
        assert!(r.saw_faults());
        assert_eq!(r.escalations(), 4);
        assert!(r.used_digital_fallback());
    }

    #[test]
    fn digital_fallback_solves_a_feasible_lp() {
        let lp = RandomLp::paper(10, 3).feasible();
        let (sol, events) = digital_fallback(&lp, 200);
        assert_eq!(sol.status, LpStatus::Optimal);
        // A feasible LP is settled by the cheap first-order rung alone.
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            RecoveryEvent::FirstOrderFallback { iterations } if iterations > 0
        ));
    }

    #[test]
    fn digital_fallback_escalates_to_pdip_on_infeasible() {
        let lp = RandomLp::paper(10, 4).infeasible();
        let (sol, events) = digital_fallback(&lp, 200);
        assert_eq!(sol.status, LpStatus::Infeasible);
        // The first-order rung could not certify; the dense rung did.
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0],
            RecoveryEvent::FirstOrderFallback { .. }
        ));
        assert!(matches!(events[1], RecoveryEvent::DigitalFallback { .. }));
    }
}
