#![forbid(unsafe_code)]
//! The paper's contribution: memristor crossbar-based linear program
//! solvers using the primal–dual interior-point method.
//!
//! Cai, Ren, Soundarajan & Wang map PDIP onto memristor crossbars, which
//! multiply and solve in O(1) in the analog domain, reducing per-iteration
//! complexity from the software baselines' O(N³)/O(N²) to the O(N) cost of
//! rewriting the iterate-dependent diagonals (§3.5). This crate implements
//! both of the paper's solvers over the simulated hardware substrate of
//! [`memlp_crossbar`]:
//!
//! * [`CrossbarPdipSolver`] — **Algorithm 1**: the full Newton system of
//!   Eqn 14a (with the §3.2 negative-coefficient elimination producing the
//!   compensation variables `Δu`, `Δv`, `Δp`) is solved on one crossbar
//!   per iteration.
//! * [`LargeScaleSolver`] — **Algorithm 2** (§3.4): the Newton step is
//!   split into a *static* `(n+m+k)` system with small random `RU`/`RL`
//!   fill and a *diagonal* system, shrinking the required crossbar size;
//!   uses a constant step length and a re-solve-on-failure scheme.
//! * [`SignSplit`] — the §3.2 transform itself, reusable for mapping any
//!   mixed-sign operator onto non-negative crossbar hardware.
//!
//! Both solvers return a [`CrossbarSolution`] bundling the LP result with
//! the hardware [`memlp_crossbar::CostLedger`] (latency/energy estimates in
//! the style of the paper's §4.4), a per-iteration [`SolverTrace`], and a
//! [`RecoveryReport`] describing any fault detections and the recovery
//! rungs climbed (re-program → remap → variation redraw → digital
//! fallback; see [`RecoveryPolicy`]).
//!
//! # Example
//!
//! ```
//! use memlp_core::{CrossbarPdipSolver, CrossbarSolverOptions};
//! use memlp_crossbar::CrossbarConfig;
//! use memlp_lp::{generator::RandomLp, LpStatus};
//!
//! // A random feasible LP with m = 16 constraints, 10% process variation.
//! let lp = RandomLp::paper(16, 42).feasible();
//! let solver = CrossbarPdipSolver::new(
//!     CrossbarConfig::paper_default().with_variation(10.0),
//!     CrossbarSolverOptions::default(),
//! );
//! let result = solver.solve(&lp);
//! assert_eq!(result.solution.status, LpStatus::Optimal);
//! println!("estimated hardware run time: {:.3} ms", result.ledger.run_time_s() * 1e3);
//! ```

mod hw;
mod large_scale;
mod newton;
mod pdhg_analog;
mod recovery;
mod solver;
mod tiles;
mod trace;
mod transform;

pub use hw::HwContext;
pub use large_scale::{LargeScaleOptions, LargeScaleSolver};
pub use newton::{AugmentedDirections, AugmentedSystem, DENSE_CORE_LIMIT_BYTES};
pub use pdhg_analog::{CrossbarPdhgOptions, CrossbarPdhgSolver};
pub use recovery::{RecoveryEvent, RecoveryPolicy, RecoveryReport};
pub use solver::{CrossbarPdipSolver, CrossbarSolution, CrossbarSolverOptions};
pub use tiles::{TiledMatrix, ANALOG_TILE_SIDE};
pub use trace::{FactorStats, IterationRecord, SolverTrace, WriteStats};
pub use transform::SignSplit;

// Budget machinery, re-exported so callers holding a crossbar solver (the
// CLI, the serve daemon) don't need a direct memlp-solvers dependency for
// cooperative cancellation.
pub use memlp_solvers::budget::{Budget, BudgetCause, Deadline, IterationDeadline};
