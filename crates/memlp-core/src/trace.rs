//! Per-iteration convergence traces.
//!
//! The paper's latency/energy estimates are assembled from *simulated
//! iteration counts* (§4.4); the trace is how the benchmark harness gets at
//! them, and it doubles as a debugging aid for convergence studies. Fault
//! detections and recovery escalations are mirrored into the trace so a
//! single artifact tells the whole story of a solve.

/// One iteration's convergence snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Barrier parameter µ (Eqn 8).
    pub mu: f64,
    /// Relative duality gap at the start of the iteration.
    pub gap: f64,
    /// Relative primal residual (hardware-observed).
    pub primal_residual: f64,
    /// Relative dual residual (hardware-observed).
    pub dual_residual: f64,
    /// Step length θ taken (Eqn 11); 0 if the iteration exited early.
    pub theta: f64,
}

/// Write-sparsity and workspace-reuse counters for one solve, copied from
/// the cost ledger when the solve finishes. `cells_written +
/// cells_skipped` is what a full-reprogram run would have pulsed;
/// `rebuilds_avoided` counts core-matrix assemblies the digital controller
/// reused instead of rebuilding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteStats {
    /// Cells actually pulsed (setup plus run-phase updates).
    pub cells_written: u64,
    /// Write pulses skipped by delta programming.
    pub cells_skipped: u64,
    /// Core-matrix rebuilds avoided by workspace reuse.
    pub rebuilds_avoided: u64,
}

impl WriteStats {
    /// Snapshots the write counters from a cost ledger.
    pub fn from_ledger(ledger: &memlp_crossbar::CostLedger) -> Self {
        let c = ledger.counts();
        WriteStats {
            cells_written: c.setup_writes + c.update_writes,
            cells_skipped: c.skipped_writes,
            rebuilds_avoided: c.rebuilds_avoided,
        }
    }

    /// Write counters attributable to one request on a **shared** warm
    /// context: the ledger accumulates across a context's whole life, so a
    /// per-request snapshot is the difference between the ledger after the
    /// solve and the `before` stats captured as the request was admitted.
    /// (Saturating, so a reset context can never produce underflowed
    /// counts.)
    pub fn since(&self, before: &WriteStats) -> WriteStats {
        WriteStats {
            cells_written: self.cells_written.saturating_sub(before.cells_written),
            cells_skipped: self.cells_skipped.saturating_sub(before.cells_skipped),
            rebuilds_avoided: self
                .rebuilds_avoided
                .saturating_sub(before.rebuilds_avoided),
        }
    }

    /// Fraction of would-be write pulses that delta programming skipped
    /// (0 when nothing was written).
    pub fn skip_fraction(&self) -> f64 {
        let total = self.cells_written + self.cells_skipped;
        if total == 0 {
            0.0
        } else {
            self.cells_skipped as f64 / total as f64
        }
    }
}

/// Digital core-factorization counters for one solve, copied from the cost
/// ledger when the solve finishes. The flop total is the per-iteration
/// digital cost the sparse Newton path attacks; dividing by
/// `factorizations` gives the per-iteration figure the benches report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FactorStats {
    /// Core factorizations performed (≈ one per PDIP iteration).
    pub factorizations: u64,
    /// Floating-point operations across all factorizations (dense LU
    /// charges its `2/3·N³` estimate; sparse LU reports exact counts).
    pub flops: u64,
    /// Stored `|L|+|U|` factor entries across all factorizations.
    pub factor_nnz: u64,
}

impl FactorStats {
    /// Snapshots the factorization counters from a cost ledger.
    pub fn from_ledger(ledger: &memlp_crossbar::CostLedger) -> Self {
        let c = ledger.counts();
        FactorStats {
            factorizations: c.factorizations,
            flops: c.factor_flops,
            factor_nnz: c.factor_nnz,
        }
    }

    /// Mean flops per factorization (0 when none ran).
    pub fn flops_per_factorization(&self) -> f64 {
        if self.factorizations == 0 {
            0.0
        } else {
            self.flops as f64 / self.factorizations as f64
        }
    }
}

/// A solve attempt's full iteration history.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolverTrace {
    /// Records in iteration order.
    pub records: Vec<IterationRecord>,
    /// Fault detections and recovery escalations, in the order the solve
    /// climbed the ladder (see [`crate::RecoveryReport`]).
    pub events: Vec<crate::RecoveryEvent>,
    /// Write-sparsity counters for the whole solve (all attempts).
    pub writes: WriteStats,
    /// Digital factorization counters for the whole solve (all attempts).
    pub factors: FactorStats,
}

impl SolverTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        SolverTrace::default()
    }

    /// Appends a record.
    pub fn push(&mut self, r: IterationRecord) {
        self.records.push(r);
    }

    /// Number of recorded iterations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no iterations were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Geometric mean of the per-iteration gap reduction factor — a scalar
    /// summary of convergence speed.
    pub fn mean_gap_reduction(&self) -> Option<f64> {
        if self.records.len() < 2 {
            return None;
        }
        let first = self.records.first()?.gap;
        let last = self.records.last()?.gap;
        if first <= 0.0 || last <= 0.0 {
            return None;
        }
        Some((last / first).powf(1.0 / (self.records.len() - 1) as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(gap: f64) -> IterationRecord {
        IterationRecord {
            mu: 0.1,
            gap,
            primal_residual: 0.0,
            dual_residual: 0.0,
            theta: 1.0,
        }
    }

    #[test]
    fn push_and_len() {
        let mut t = SolverTrace::new();
        assert!(t.is_empty());
        t.push(rec(1.0));
        t.push(rec(0.5));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn gap_reduction_geometric_mean() {
        let mut t = SolverTrace::new();
        for k in 0..5 {
            t.push(rec(1.0 * 0.5f64.powi(k)));
        }
        let r = t.mean_gap_reduction().unwrap();
        assert!((r - 0.5).abs() < 1e-12, "reduction {r}");
    }

    #[test]
    fn write_stats_delta_is_saturating() {
        let before = WriteStats {
            cells_written: 10,
            cells_skipped: 5,
            rebuilds_avoided: 1,
        };
        let after = WriteStats {
            cells_written: 25,
            cells_skipped: 30,
            rebuilds_avoided: 1,
        };
        assert_eq!(
            after.since(&before),
            WriteStats {
                cells_written: 15,
                cells_skipped: 25,
                rebuilds_avoided: 0,
            }
        );
        // A reset context (counters behind the snapshot) clamps to zero.
        assert_eq!(before.since(&after), WriteStats::default());
    }

    #[test]
    fn gap_reduction_requires_two_records() {
        let mut t = SolverTrace::new();
        assert_eq!(t.mean_gap_reduction(), None);
        t.push(rec(1.0));
        assert_eq!(t.mean_gap_reduction(), None);
    }
}
