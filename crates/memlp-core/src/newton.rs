//! The augmented Newton system of Eqn 14a, realized block-by-block on
//! simulated crossbar hardware.
//!
//! Unknown ordering (columns of `M`):
//!
//! ```text
//! Δs = [ Δx (n) | Δy (m) | Δw (m) | Δz (n) | Δu (m) | Δv (n) | Δp (k) ]
//! ```
//!
//! with `k = kx + ky` compensation variables (`Δp = [Δp_x | Δp_y]`,
//! `Δp_x[r] = −Δx[cx_r]`, `Δp_y[r] = −Δy[cy_r]`). Row blocks of `M`:
//!
//! ```text
//! R1 (m):  A′·Δx            + Iw·Δw                    + A″·Δp_x   = ρ
//! R2 (n):          Aᵀ′·Δy                    + Iv·Δv   + Aᵀ″·Δp_y  = σ
//! R3 (n):  Z·Δx                     + X·Δz                         = µe−XZe
//! R4 (m):          W·Δy    + Y·Δw                                  = µe−YWe
//! R5 (m):                    I₁·Δw          + I₂·Δu               = 0
//! R6 (n):                             I₃·Δz          + I₄·Δv      = 0
//! R7 (k):  AI·Δx + ATI·Δy                              + Ip·Δp    = 0
//! ```
//!
//! Every symbol above is the **realized** (variation-perturbed) block. The
//! analog array solves this entire system in O(1); the simulator recovers
//! the identical solution by exact block elimination down to an `(n+m)`
//! dense core (DESIGN.md §4) — pure algebra, no approximation.

use memlp_crossbar::Phase;
use memlp_linalg::{LuFactors, Matrix, SparseLu, SparseMatrix};
use memlp_lp::LpProblem;
use memlp_solvers::pdip::{CoreSolveError, PdipState, SolvePath, StepDirections};

use crate::hw::HwContext;
use crate::transform::SignSplit;

/// Stable block keys identifying the physical array regions of the
/// augmented system (fault plans attach to these; see `HwContext`).
mod key {
    pub const AP: u32 = 0;
    pub const AN: u32 = 1;
    pub const ATP: u32 = 2;
    pub const ATN: u32 = 3;
    pub const IW: u32 = 4;
    pub const IV: u32 = 5;
    pub const I1: u32 = 6;
    pub const I2: u32 = 7;
    pub const I3: u32 = 8;
    pub const I4: u32 = 9;
    pub const IPX: u32 = 10;
    pub const IPY: u32 = 11;
    pub const SELX: u32 = 12;
    pub const SELY: u32 = 13;
    pub const ZD: u32 = 14;
    pub const XD: u32 = 15;
    pub const WD: u32 = 16;
    pub const YD: u32 = 17;
}

/// Allocation guard for the dense core path: the `(n+m)²` base buffer and
/// its per-iteration working copy each stay below this many bytes, or the
/// dense factorization refuses with [`CoreSolveError::CoreTooLarge`]
/// instead of attempting the allocation. 2 GiB admits cores up to
/// `n + m ≈ 16 000` — comfortably past every dense-path domain this
/// workspace ships — while refusing the ~35 GB core of assignment@512
/// (`n = 256² = 65 536`), whose sparse core fits in a few hundred MB.
pub const DENSE_CORE_LIMIT_BYTES: u64 = 2 * 1024 * 1024 * 1024;

/// Bytes the dense `(dim)²` core buffer would need.
fn dense_core_bytes(dim: usize) -> u64 {
    8 * dim as u64 * dim as u64
}

/// The realized augmented system: static blocks written once, diagonal
/// blocks rewritten every iteration.
#[derive(Debug, Clone)]
pub struct AugmentedSystem {
    n: usize,
    m: usize,
    /// Sign split of `A` (columns with negatives → `Δp_x`).
    split_a: SignSplit,
    /// Sign split of `Aᵀ` (rows of `A` with negatives → `Δp_y`).
    split_at: SignSplit,
    // --- realized static blocks ---
    ap: Matrix,
    an: Matrix,
    atp: Matrix,
    atn: Matrix,
    iw: Vec<f64>,
    iv: Vec<f64>,
    i1: Vec<f64>,
    i2: Vec<f64>,
    i3: Vec<f64>,
    i4: Vec<f64>,
    ipx: Vec<f64>,
    ipy: Vec<f64>,
    selx: Vec<f64>,
    sely: Vec<f64>,
    // --- realized per-iteration diagonals ---
    zd: Vec<f64>,
    xd: Vec<f64>,
    wd: Vec<f64>,
    yd: Vec<f64>,
    /// Effective `A` blocks with the Δp elimination folded in, cached so the
    /// per-iteration solve skips the O(m·k) column corrections. Rebuilt when
    /// the static blocks are (re)programmed; under ageing the `sel/ip`
    /// ratios are drift-invariant, so these scale by the same drift factor
    /// as the raw blocks.
    ax_eff: Matrix,
    ay_eff: Matrix,
    /// The `(n+m)²` core with the **static** blocks (`ax_eff`, `ay_eff`)
    /// pre-placed and the diagonal coupling blocks zeroed. Built **lazily**
    /// on the first dense core solve after a (re)programming — never for a
    /// sparse-only run, and never past [`DENSE_CORE_LIMIT_BYTES`] — then
    /// each per-iteration solve copies it and overwrites only the two
    /// diagonal blocks instead of reassembling the matrix from its blocks.
    core_base: Matrix,
    /// Reduce-and-solve scratch buffers, reused across iterations.
    scratch: SolveScratch,
    /// Total cell count (for settle-energy estimates).
    cells: usize,
    /// Which digital factorization realizes the core solve (the analog
    /// physics — quantization, charging — is identical either way).
    path: SolvePath,
    /// Fill ratio of the problem's `A`, captured at programming time for
    /// the [`SolvePath::Auto`] decision.
    density: f64,
    /// Sparse core (CSR pattern, cached diagonal slots, reusable symbolic
    /// analysis), built lazily on the first sparse solve and invalidated
    /// whenever the static blocks are re-realized.
    sparse_core: Option<SparseCore>,
}

/// The row-permuted sparse core `K' = [[diag(d2), Ay_eff], [Ax_eff,
/// diag(−d1)]]` — rows `[R2; R1]` of the dense core, so every diagonal
/// entry is structurally present (`d2`/`−d1` are products of strictly
/// positive iterate components) and the static-pivot [`SparseLu`] can
/// eliminate straight down the diagonal. Unknown order is unchanged
/// (`[Δx | Δy]`), so the solution vector reads exactly like the dense
/// core's. The off-diagonal blocks change only when the static blocks are
/// re-realized (the whole core is rebuilt then); the `2(n+m)` diagonal
/// entries are rewritten through cached value slots each iteration, and the
/// symbolic analysis is reused across every iteration of the solve.
#[derive(Debug, Clone)]
struct SparseCore {
    k: SparseMatrix,
    /// CSR value slots of the `d2[j]` diagonal entries (rows `0..n`).
    d2_slots: Vec<usize>,
    /// CSR value slots of the `−d1[i]` diagonal entries (rows `n..n+m`).
    d1_slots: Vec<usize>,
    lu: SparseLu,
}

/// Reusable allocations for [`AugmentedSystem::solve`]: the reduced
/// right-hand sides, coupling diagonals, and the `(n+m)²` core matrix.
#[derive(Debug, Clone, Default)]
struct SolveScratch {
    r1p: Vec<f64>,
    r2p: Vec<f64>,
    /// `−Iw·W/Y` — the Δy coupling, stored pre-negated for the core.
    neg_d1: Vec<f64>,
    d2: Vec<f64>,
    k: Matrix,
    /// LU pivot/permutation buffer, recycled across factorizations.
    piv: Vec<usize>,
    rhs: Vec<f64>,
    full: Vec<f64>,
}

/// Solution of the augmented system: the four PDIP directions plus the
/// consistency variables (useful for invariant tests).
#[derive(Debug, Clone)]
pub struct AugmentedDirections {
    /// The PDIP step directions.
    pub dirs: StepDirections,
    /// Δu (should equal −Δw up to hardware noise).
    pub du: Vec<f64>,
    /// Δv (should equal −Δz up to hardware noise).
    pub dv: Vec<f64>,
    /// Δp (should equal −Δx/−Δy at the compensated indices).
    pub dp: Vec<f64>,
}

impl AugmentedSystem {
    /// Number of compensation variables `k = kx + ky`.
    pub fn num_compensations(&self) -> usize {
        self.ipx.len() + self.ipy.len()
    }

    /// Total dimension of `M` (`3n + 3m + k`).
    pub fn dim(&self) -> usize {
        3 * self.n + 3 * self.m + self.num_compensations()
    }

    /// Programs the static blocks of `M` for problem `lp` (setup phase) and
    /// writes the initial diagonals (run phase).
    pub fn program(lp: &LpProblem, state: &PdipState, hw: &mut HwContext) -> AugmentedSystem {
        let at = lp.a().transpose();
        AugmentedSystem::program_with_at(lp, &at, state, hw)
    }

    /// [`Self::program`] with a caller-supplied `Aᵀ`, so retry loops that
    /// re-program the array for the same problem hoist the transpose out of
    /// the loop instead of recomputing it per attempt.
    pub fn program_with_at(
        lp: &LpProblem,
        at: &Matrix,
        state: &PdipState,
        hw: &mut HwContext,
    ) -> AugmentedSystem {
        let n = lp.num_vars();
        let m = lp.num_constraints();
        let split_a = SignSplit::split(lp.a());
        let split_at = SignSplit::split(at);
        let kx = split_a.num_compensations();
        let ky = split_at.num_compensations();

        let ap = hw.write_matrix(key::AP, &split_a.pos, Phase::Setup);
        let an = hw.write_matrix(key::AN, &split_a.neg, Phase::Setup);
        let atp = hw.write_matrix(key::ATP, &split_at.pos, Phase::Setup);
        let atn = hw.write_matrix(key::ATN, &split_at.neg, Phase::Setup);
        let iw = hw.write_diag(key::IW, &vec![1.0; m], Phase::Setup);
        let iv = hw.write_diag(key::IV, &vec![1.0; n], Phase::Setup);
        let i1 = hw.write_diag(key::I1, &vec![1.0; m], Phase::Setup);
        let i2 = hw.write_diag(key::I2, &vec![1.0; m], Phase::Setup);
        let i3 = hw.write_diag(key::I3, &vec![1.0; n], Phase::Setup);
        let i4 = hw.write_diag(key::I4, &vec![1.0; n], Phase::Setup);
        let ipx = hw.write_diag(key::IPX, &vec![1.0; kx], Phase::Setup);
        let ipy = hw.write_diag(key::IPY, &vec![1.0; ky], Phase::Setup);
        let selx = hw.write_diag(key::SELX, &vec![1.0; kx], Phase::Setup);
        let sely = hw.write_diag(key::SELY, &vec![1.0; ky], Phase::Setup);

        let cells = m * n * 2 + m * kx + n * ky + 4 * (n + m) + 2 * (kx + ky);
        let mut sys = AugmentedSystem {
            n,
            m,
            split_a,
            split_at,
            ap,
            an,
            atp,
            atn,
            iw,
            iv,
            i1,
            i2,
            i3,
            i4,
            ipx,
            ipy,
            selx,
            sely,
            zd: Vec::new(),
            xd: Vec::new(),
            wd: Vec::new(),
            yd: Vec::new(),
            ax_eff: Matrix::default(),
            ay_eff: Matrix::default(),
            core_base: Matrix::default(),
            scratch: SolveScratch::default(),
            cells,
            path: SolvePath::Auto,
            density: lp.density(),
            sparse_core: None,
        };
        sys.rebuild_effective();
        sys.update_diagonals(state, hw);
        sys
    }

    /// Rebuilds the cached effective `A` blocks (`A′` with the Δp column
    /// corrections folded in) from the current realized statics. Rows whose
    /// `Ip` entry realized as zero are skipped — [`Self::solve`] rejects
    /// such systems before the cache is ever used.
    fn rebuild_effective(&mut self) {
        let (n, m) = (self.n, self.m);
        self.ax_eff = self.ap.clone();
        for (rr, &j) in self.split_a.comp_cols.iter().enumerate() {
            if self.ipx[rr] == 0.0 {
                continue;
            }
            let f = self.selx[rr] / self.ipx[rr];
            for i in 0..m {
                self.ax_eff[(i, j)] -= self.an[(i, rr)] * f;
            }
        }
        self.ay_eff = self.atp.clone();
        for (rr, &j) in self.split_at.comp_cols.iter().enumerate() {
            if self.ipy[rr] == 0.0 {
                continue;
            }
            let f = self.sely[rr] / self.ipy[rr];
            for i in 0..n {
                self.ay_eff[(i, j)] -= self.atn[(i, rr)] * f;
            }
        }
        // The realized off-diagonal values (and possibly the realized
        // pattern, under faults/repairs) just changed; both cached cores
        // must be rebuilt from the new statics. The dense base is rebuilt
        // lazily by the next dense solve — eagerly allocating it here would
        // commit `8(n+m)²` bytes even for runs the sparse path serves
        // entirely (the assignment@512 wall).
        self.core_base = Matrix::default();
        self.sparse_core = None;
    }

    /// Selects the digital factorization path for the core solve
    /// ([`SolvePath::Auto`] resolves against the programmed problem's fill
    /// ratio). The analog behaviour — quantization, energy, iterate counts —
    /// is path-independent; only the controller's factorization changes.
    pub fn set_solve_path(&mut self, path: SolvePath) {
        self.path = path;
    }

    /// Rewrites the `X`, `Y`, `Z`, `W` diagonals for the current iterate —
    /// the paper's O(N) per-iteration coefficient updates (2(n+m) ≈ 2.7·m
    /// writes when n = m/3).
    pub fn update_diagonals(&mut self, state: &PdipState, hw: &mut HwContext) {
        self.zd = hw.write_diag(key::ZD, &state.z, Phase::Run);
        self.xd = hw.write_diag(key::XD, &state.x, Phase::Run);
        self.wd = hw.write_diag(key::WD, &state.w, Phase::Run);
        self.yd = hw.write_diag(key::YD, &state.y, Phase::Run);
    }

    /// Ages the **static** blocks by the drift factor for `dt` seconds of
    /// hardware time (the per-iteration diagonals are rewritten every
    /// iteration, so only the write-once blocks accumulate retention loss).
    pub fn age(&mut self, dt_s: f64, hw: &HwContext) {
        let f = hw.config().drift.factor(dt_s);
        if f >= 1.0 {
            return;
        }
        // The cached effective blocks scale by the same factor: they are
        // built from `A′ − A″·diag(sel/ip)` and the sel/ip ratio is
        // invariant under uniform drift.
        for m in [
            &mut self.ap,
            &mut self.an,
            &mut self.atp,
            &mut self.atn,
            &mut self.ax_eff,
            &mut self.ay_eff,
            &mut self.core_base,
        ] {
            m.scale_mut(f);
        }
        // The sparse core's static entries drift by the same factor; its
        // diagonal slots are rewritten from scratch every solve, so scaling
        // them too is harmless.
        if let Some(sc) = self.sparse_core.as_mut() {
            for v in sc.k.values_mut() {
                *v *= f;
            }
        }
        for d in [
            &mut self.iw,
            &mut self.iv,
            &mut self.i1,
            &mut self.i2,
            &mut self.i3,
            &mut self.i4,
            &mut self.ipx,
            &mut self.ipy,
            &mut self.selx,
            &mut self.sely,
        ] {
            memlp_linalg::ops::scale(f, d);
        }
    }

    /// Re-programs all static blocks from the pristine targets (run-phase
    /// writes) — the periodic-refresh mitigation for drift.
    ///
    /// With drift active the cells have physically decayed away from the
    /// codes the delta cache remembers, so the cache is invalidated first
    /// and every cell is genuinely rewritten. On drift-free hardware the
    /// cells still hold their programmed codes, so delta programming
    /// legitimately skips the identical rewrites.
    pub fn refresh_static(&mut self, hw: &mut HwContext) {
        if !hw.config().drift.is_none() {
            hw.invalidate_codes();
        }
        let kx = self.ipx.len();
        let ky = self.ipy.len();
        self.ap = hw.write_matrix(key::AP, &self.split_a.pos, Phase::Run);
        self.an = hw.write_matrix(key::AN, &self.split_a.neg, Phase::Run);
        self.atp = hw.write_matrix(key::ATP, &self.split_at.pos, Phase::Run);
        self.atn = hw.write_matrix(key::ATN, &self.split_at.neg, Phase::Run);
        let m = self.m;
        let n = self.n;
        self.iw = hw.write_diag(key::IW, &vec![1.0; m], Phase::Run);
        self.iv = hw.write_diag(key::IV, &vec![1.0; n], Phase::Run);
        self.i1 = hw.write_diag(key::I1, &vec![1.0; m], Phase::Run);
        self.i2 = hw.write_diag(key::I2, &vec![1.0; m], Phase::Run);
        self.i3 = hw.write_diag(key::I3, &vec![1.0; n], Phase::Run);
        self.i4 = hw.write_diag(key::I4, &vec![1.0; n], Phase::Run);
        self.ipx = hw.write_diag(key::IPX, &vec![1.0; kx], Phase::Run);
        self.ipy = hw.write_diag(key::IPY, &vec![1.0; ky], Phase::Run);
        self.selx = hw.write_diag(key::SELX, &vec![1.0; kx], Phase::Run);
        self.sely = hw.write_diag(key::SELY, &vec![1.0; ky], Phase::Run);
        self.rebuild_effective();
    }

    /// The full `s` vector `[x, y, w, z, u, v, p]` the controller drives
    /// into the array for the Eqn 15b right-hand-side MVM (`u = −w`,
    /// `v = −z`, `p` = negated compensated components).
    pub fn s_vector(&self, state: &PdipState) -> Vec<f64> {
        let mut s = Vec::with_capacity(self.dim());
        s.extend_from_slice(&state.x);
        s.extend_from_slice(&state.y);
        s.extend_from_slice(&state.w);
        s.extend_from_slice(&state.z);
        s.extend(state.w.iter().map(|v| -v));
        s.extend(state.z.iter().map(|v| -v));
        s.extend(self.split_a.compensation_values(&state.x));
        s.extend(self.split_at.compensation_values(&state.y));
        s
    }

    /// The analog MVM `M̃·s` (Eqn 15b), with DAC-quantized input and
    /// ADC-quantized output, charged to the ledger.
    ///
    /// memlp-lint: analog_source
    pub fn mvm(&self, s: &[f64], hw: &mut HwContext) -> Vec<f64> {
        assert_eq!(s.len(), self.dim(), "s vector must span the full system");
        let (n, m) = (self.n, self.m);
        let kx = self.ipx.len();
        let ky = self.ipy.len();
        let sq = hw.dac_blocks(s, &[n, m, m, n, m, n, kx + ky]);
        let x = &sq[..n];
        let y = &sq[n..n + m];
        let w = &sq[n + m..n + 2 * m];
        let z = &sq[n + 2 * m..2 * n + 2 * m];
        let u = &sq[2 * n + 2 * m..2 * n + 3 * m];
        let v = &sq[2 * n + 3 * m..3 * n + 3 * m];
        let p = &sq[3 * n + 3 * m..];
        let (px, py) = p.split_at(kx);

        let mut out = Vec::with_capacity(self.dim());
        // R1: A′x + Iw·w + A″·p_x.
        let mut r1 = self.ap.matvec(x);
        for (r, (ww, c)) in r1.iter_mut().zip(w.iter().zip(&self.iw)) {
            *r += ww * c;
        }
        if kx > 0 {
            let extra = self.an.matvec(px);
            for (r, e) in r1.iter_mut().zip(&extra) {
                *r += e;
            }
        }
        out.extend(r1);
        // R2: Aᵀ′y + Iv·v + Aᵀ″·p_y.
        let mut r2 = self.atp.matvec(y);
        for (r, (vv, c)) in r2.iter_mut().zip(v.iter().zip(&self.iv)) {
            *r += vv * c;
        }
        if !py.is_empty() {
            let extra = self.atn.matvec(py);
            for (r, e) in r2.iter_mut().zip(&extra) {
                *r += e;
            }
        }
        out.extend(r2);
        // R3: Z·x + X·z.
        out.extend((0..n).map(|j| self.zd[j] * x[j] + self.xd[j] * z[j]));
        // R4: W·y + Y·w.
        out.extend((0..m).map(|i| self.wd[i] * y[i] + self.yd[i] * w[i]));
        // R5: I₁·w + I₂·u.
        out.extend((0..m).map(|i| self.i1[i] * w[i] + self.i2[i] * u[i]));
        // R6: I₃·z + I₄·v.
        out.extend((0..n).map(|j| self.i3[j] * z[j] + self.i4[j] * v[j]));
        // R7: selector·(x or y) + Ip·p.
        out.extend(
            self.split_a
                .comp_cols
                .iter()
                .enumerate()
                .map(|(r, &j)| self.selx[r] * x[j] + self.ipx[r] * px[r]),
        );
        out.extend(
            self.split_at
                .comp_cols
                .iter()
                .enumerate()
                .map(|(r, &j)| self.sely[r] * y[j] + self.ipy[r] * py[r]),
        );

        let g = hw.conductance_estimate(self.cells, 1.0, 1.0);
        hw.charge_analog(false, self.dim(), self.dim(), g);
        let kx = self.ipx.len();
        let ky = self.ipy.len();
        hw.adc_blocks(&out, &[m, n, n, m, m, n, kx + ky])
    }

    /// The analog solve `M̃·Δs = r` (DAC-quantized `r`, ADC-quantized
    /// `Δs`), computed by exact block elimination of the realized system.
    ///
    /// # Errors
    ///
    /// [`CoreSolveError::Singular`] when the realized system is singular —
    /// the §4.3 variation-induced failure mode the caller handles by
    /// re-solving. [`CoreSolveError::CoreTooLarge`] when the dense
    /// factorization was required (an explicit [`SolvePath::Dense`], or a
    /// sparse breakdown with no feasible dense fallback) but the core
    /// exceeds [`DENSE_CORE_LIMIT_BYTES`]; under [`SolvePath::Auto`] an
    /// oversized core reroutes to the sparse path instead.
    ///
    /// memlp-lint: analog_source
    pub fn solve(
        &mut self,
        r: &[f64],
        hw: &mut HwContext,
    ) -> Result<AugmentedDirections, CoreSolveError> {
        assert_eq!(r.len(), self.dim(), "rhs must span the full system");
        let (n, m) = (self.n, self.m);
        let kx = self.ipx.len();
        let ky = self.ipy.len();
        let rq = hw.dac_blocks(r, &[m, n, n, m, m, n, kx + ky]);
        let r1 = &rq[..m];
        let r2 = &rq[m..m + n];
        let r3 = &rq[m + n..m + 2 * n];
        let r4 = &rq[m + 2 * n..2 * m + 2 * n];
        let r5 = &rq[2 * m + 2 * n..3 * m + 2 * n];
        let r6 = &rq[3 * m + 2 * n..3 * m + 3 * n];
        let r7 = &rq[3 * m + 3 * n..];
        let (r7x, r7y) = r7.split_at(kx);

        // Diagonals must be invertible for the elimination.
        for d in self
            .xd
            .iter()
            .chain(&self.yd)
            .chain(&self.i2)
            .chain(&self.i4)
            .chain(&self.ipx)
            .chain(&self.ipy)
        {
            if *d == 0.0 {
                return Err(CoreSolveError::Singular);
            }
        }

        // The effective A-blocks (Δp elimination) are cached on the struct —
        // see `rebuild_effective` — so the per-iteration work starts at the
        // rhs reductions, filling the reusable scratch buffers.

        // r1' = r1 − Iw·(r4/Y) − A″·(r7x/Ipx); Δw = (r4 − W·Δy)/Y.
        self.scratch.r1p.clear();
        for i in 0..m {
            self.scratch
                .r1p
                .push(r1[i] - self.iw[i] * r4[i] / self.yd[i]);
        }
        if kx > 0 {
            let t: Vec<f64> = (0..kx).map(|rr| r7x[rr] / self.ipx[rr]).collect();
            let corr = self.an.matvec(&t);
            for (v, c) in self.scratch.r1p.iter_mut().zip(&corr) {
                *v -= c;
            }
        }
        // Δy coefficient in R1: −diag(Iw·W/Y), stored negated.
        self.scratch.neg_d1.clear();
        for i in 0..m {
            self.scratch
                .neg_d1
                .push(-(self.iw[i] * self.wd[i] / self.yd[i]));
        }

        // R2 reduction: Δv = (r6 − I₃·Δz)/I₄, Δz = (r3 − Z·Δx)/X.
        // Iv·Δv = Iv/I₄·r6 − (Iv·I₃)/(I₄·X)·r3 + (Iv·I₃·Z)/(I₄·X)·Δx.
        self.scratch.r2p.clear();
        for j in 0..n {
            let f = self.iv[j] / self.i4[j];
            self.scratch
                .r2p
                .push(r2[j] - f * r6[j] + f * self.i3[j] * r3[j] / self.xd[j]);
        }
        if ky > 0 {
            let t: Vec<f64> = (0..ky).map(|rr| r7y[rr] / self.ipy[rr]).collect();
            let corr = self.atn.matvec(&t);
            for (v, c) in self.scratch.r2p.iter_mut().zip(&corr) {
                *v -= c;
            }
        }
        // Δx coefficient in R2: +diag(Iv·I₃·Z/(I₄·X)).
        self.scratch.d2.clear();
        for j in 0..n {
            self.scratch
                .d2
                .push(self.iv[j] * self.i3[j] * self.zd[j] / (self.i4[j] * self.xd[j]));
        }

        // The (m+n) core — rows R1/R2 of the reduced system, unknowns
        // [Δx | Δy]. The digital controller factors it either sparse (CSR
        // core with the symbolic analysis and diagonal value slots reused
        // across iterations) or dense (cached static base plus two diagonal
        // writes). A sparse breakdown — the static-pivot elimination
        // meeting a realized-singular pivot — falls back to the dense
        // factorization for the iteration, so path selection can never make
        // a solvable realized system fail. The dense buffers are gated by
        // [`DENSE_CORE_LIMIT_BYTES`]: an oversized core under `Auto` (or
        // `Sparse`-with-fallback) reroutes to the sparse path instead of
        // attempting the allocation, and an explicit `Dense` reports
        // `CoreTooLarge` to the caller.
        let dim = n + m;
        let dense_fits = dense_core_bytes(dim) <= DENSE_CORE_LIMIT_BYTES;
        let too_large = || CoreSolveError::CoreTooLarge {
            dim,
            bytes: dense_core_bytes(dim),
            limit: DENSE_CORE_LIMIT_BYTES,
        };
        if self.path == SolvePath::Dense && !dense_fits {
            return Err(too_large());
        }
        let sparse = if self.path.use_sparse(self.density) || !dense_fits {
            self.solve_core_sparse(hw)
        } else {
            None
        };
        let core = match sparse {
            Some(c) => c,
            None if dense_fits => self.solve_core_dense(hw).ok_or(CoreSolveError::Singular)?,
            None => return Err(too_large()),
        };
        let dx = core[..n].to_vec();
        let dy = core[n..].to_vec();

        // Back-substitution.
        let dz: Vec<f64> = (0..n)
            .map(|j| (r3[j] - self.zd[j] * dx[j]) / self.xd[j])
            .collect();
        let dw: Vec<f64> = (0..m)
            .map(|i| (r4[i] - self.wd[i] * dy[i]) / self.yd[i])
            .collect();
        let du: Vec<f64> = (0..m)
            .map(|i| (r5[i] - self.i1[i] * dw[i]) / self.i2[i])
            .collect();
        let dv: Vec<f64> = (0..n)
            .map(|j| (r6[j] - self.i3[j] * dz[j]) / self.i4[j])
            .collect();
        let mut dp = Vec::with_capacity(kx + ky);
        for (rr, &j) in self.split_a.comp_cols.iter().enumerate() {
            dp.push((r7x[rr] - self.selx[rr] * dx[j]) / self.ipx[rr]);
        }
        for (rr, &j) in self.split_at.comp_cols.iter().enumerate() {
            dp.push((r7y[rr] - self.sely[rr] * dy[j]) / self.ipy[rr]);
        }

        // One ADC pass over the full Δs read-out.
        self.scratch.full.clear();
        self.scratch.full.extend_from_slice(&dx);
        self.scratch.full.extend_from_slice(&dy);
        self.scratch.full.extend_from_slice(&dw);
        self.scratch.full.extend_from_slice(&dz);
        self.scratch.full.extend_from_slice(&du);
        self.scratch.full.extend_from_slice(&dv);
        self.scratch.full.extend_from_slice(&dp);
        if !self.scratch.full.iter().all(|v| v.is_finite()) {
            return Err(CoreSolveError::Singular);
        }
        let fullq = hw.adc_blocks(&self.scratch.full, &[n, m, m, n, m, n, kx + ky]);
        let g = hw.conductance_estimate(self.cells, 1.0, 1.0);
        hw.charge_analog(true, self.dim(), self.dim(), g);

        let dx = fullq[..n].to_vec();
        let dy = fullq[n..n + m].to_vec();
        let dw = fullq[n + m..n + 2 * m].to_vec();
        let dz = fullq[n + 2 * m..2 * n + 2 * m].to_vec();
        let du = fullq[2 * n + 2 * m..2 * n + 3 * m].to_vec();
        let dv = fullq[2 * n + 3 * m..3 * n + 3 * m].to_vec();
        let dp = fullq[3 * n + 3 * m..].to_vec();
        Ok(AugmentedDirections {
            dirs: StepDirections { dx, dy, dw, dz },
            du,
            dv,
            dp,
        })
    }

    /// Dense core solve: flat-copy the cached static base, overwrite the
    /// two coupling diagonals, LU-factor with the recycled buffers. The
    /// rhs order matches the base's row order `[R1; R2]`.
    fn solve_core_dense(&mut self, hw: &mut HwContext) -> Option<Vec<f64>> {
        let (n, m) = (self.n, self.m);
        let dim = n + m;
        if self.core_base.rows() != dim {
            // Lazy (re)build of the static base — see `rebuild_effective`.
            // The caller has already checked `DENSE_CORE_LIMIT_BYTES`.
            let mut base = Matrix::zeros(dim, dim);
            base.set_block(0, 0, &self.ax_eff);
            base.set_block(m, n, &self.ay_eff);
            self.core_base = base;
        }
        if self.scratch.k.rows() != dim {
            self.scratch.k = Matrix::zeros(dim, dim);
        }
        self.scratch
            .k
            .as_mut_slice()
            .copy_from_slice(self.core_base.as_slice());
        self.scratch.k.set_diag_block(0, n, &self.scratch.neg_d1);
        self.scratch.k.set_diag_block(m, 0, &self.scratch.d2);
        hw.note_rebuild_avoided();
        self.scratch.rhs.clear();
        self.scratch.rhs.extend_from_slice(&self.scratch.r1p);
        self.scratch.rhs.extend_from_slice(&self.scratch.r2p);

        // Factor the core in place, then hand its buffers back to the
        // scratch so the (n+m)² matrix and the pivot vector are reused
        // next iteration.
        let core_mat = std::mem::take(&mut self.scratch.k);
        let piv = std::mem::take(&mut self.scratch.piv);
        let lu = match LuFactors::factor_reusing(core_mat, piv) {
            Ok(lu) => lu,
            Err(_) => return None,
        };
        let d = dim as u64;
        hw.note_factorization(2 * d * d * d / 3, d * d);
        let core = lu.solve(&self.scratch.rhs);
        let (k, piv) = lu.into_parts();
        self.scratch.k = k;
        self.scratch.piv = piv;
        core.ok()
    }

    /// Sparse core solve: write the coupling diagonals into their cached
    /// CSR value slots, refactor over the reused symbolic analysis, and
    /// solve with two refinement rounds (compensating the static-pivot
    /// factorization's lower raw accuracy so both paths agree through the
    /// shared ADC quantization). The row-permuted core takes its rhs as
    /// `[R2; R1]`; the solution order `[Δx | Δy]` is the dense core's.
    /// `None` sends the iteration to the dense fallback.
    fn solve_core_sparse(&mut self, hw: &mut HwContext) -> Option<Vec<f64>> {
        if self.sparse_core.is_none() {
            self.sparse_core = self.build_sparse_core();
        }
        let sc = self.sparse_core.as_mut()?;
        let vals = sc.k.values_mut();
        for (slot, v) in sc.d2_slots.iter().zip(&self.scratch.d2) {
            vals[*slot] = *v;
        }
        for (slot, v) in sc.d1_slots.iter().zip(&self.scratch.neg_d1) {
            vals[*slot] = *v;
        }
        sc.lu.refactor(&sc.k).ok()?;
        hw.note_factorization(sc.lu.flops(), sc.lu.factor_nnz() as u64);
        hw.note_rebuild_avoided();
        self.scratch.rhs.clear();
        self.scratch.rhs.extend_from_slice(&self.scratch.r2p);
        self.scratch.rhs.extend_from_slice(&self.scratch.r1p);
        let sol = sc.lu.refine(&sc.k, &self.scratch.rhs, 2).ok()?;
        if !sol.iter().all(|v| v.is_finite()) {
            return None;
        }
        Some(sol)
    }

    /// Assembles the sparse core from the realized effective blocks.
    /// Explicit unit placeholders reserve the coupling-diagonal slots (the
    /// realized diagonals are strictly positive products of iterate
    /// components, so the target pattern always contains them);
    /// off-diagonal entries come from the realized `ax_eff`/`ay_eff`
    /// non-zeros, faithfully dropping cells that realized as zero (a
    /// stuck-off cell is a zero in the dense core too). The fill-reducing
    /// symbolic analysis runs once per (re)programming.
    fn build_sparse_core(&self) -> Option<SparseCore> {
        let (n, m) = (self.n, self.m);
        let mut trips: Vec<(usize, usize, f64)> = Vec::new();
        for j in 0..n {
            trips.push((j, j, 1.0));
            for i in 0..m {
                let v = self.ay_eff[(j, i)];
                if v != 0.0 {
                    trips.push((j, n + i, v));
                }
            }
        }
        for i in 0..m {
            for j in 0..n {
                let v = self.ax_eff[(i, j)];
                if v != 0.0 {
                    trips.push((n + i, j, v));
                }
            }
            trips.push((n + i, n + i, -1.0));
        }
        let k = SparseMatrix::from_triplets(n + m, n + m, &trips).ok()?;
        let d2_slots = (0..n)
            .map(|j| k.entry_index(j, j))
            .collect::<Option<Vec<_>>>()?;
        let d1_slots = (0..m)
            .map(|i| k.entry_index(n + i, n + i))
            .collect::<Option<Vec<_>>>()?;
        let lu = SparseLu::analyze(&k).ok()?;
        Some(SparseCore {
            k,
            d2_slots,
            d1_slots,
            lu,
        })
    }

    /// The constant part of Eqn 15a's right-hand side:
    /// `[b, c, µe, µe, 0, 0, 0]`.
    pub fn rhs_constant(&self, lp: &LpProblem, mu: f64) -> Vec<f64> {
        let mut r = Vec::with_capacity(self.dim());
        r.extend_from_slice(lp.b());
        r.extend_from_slice(lp.c());
        r.extend(std::iter::repeat_n(mu, self.n));
        r.extend(std::iter::repeat_n(mu, self.m));
        r.extend(std::iter::repeat_n(
            0.0,
            self.m + self.n + self.num_compensations(),
        ));
        r
    }

    /// Assembles Eqn 15a's `r` from the constant part and the Eqn 15b MVM
    /// (rows R3/R4 of `M·s` equal `2XZe`/`2YWe`, so they are halved — the
    /// paper's "dividing-by-2 procedure").
    pub fn assemble_rhs(&self, constant: &[f64], ms: &[f64]) -> Vec<f64> {
        let (n, m) = (self.n, self.m);
        let mut r = Vec::with_capacity(self.dim());
        for (idx, (cst, prod)) in constant.iter().zip(ms).enumerate() {
            // Rows R3 (n entries) and R4 (m entries) sit at [m+n, 2m+2n).
            let halved = idx >= m + n && idx < 2 * (m + n);
            let p = if halved { 0.5 * prod } else { *prod };
            r.push(cst - p);
        }
        r
    }

    /// Residual views into an assembled `r`: (primal ρ, dual σ).
    pub fn residual_views<'a>(&self, r: &'a [f64]) -> (&'a [f64], &'a [f64]) {
        (&r[..self.m], &r[self.m..self.m + self.n])
    }
}
