//! Negative-coefficient elimination (paper §3.2, Eqns 13–14).
//!
//! Memristances are non-negative, so a matrix with negative entries cannot
//! be written onto a crossbar directly. The paper's transform introduces,
//! for each *column* `j` of `A` containing at least one negative entry, a
//! compensation variable `x_c = −x_j`; the negative entries of column `j`
//! move (as absolute values) into a new column multiplying `x_c`, and a
//! consistency row `x_j + x_c = 0` keeps the system square (Eqn 13).
//!
//! [`SignSplit`] captures the decomposition `A = A′ − A″·S` where `A′ ⪰ 0`
//! holds the non-negative part, `A″ ⪰ 0` holds the absolute values of the
//! negative entries (one column per compensated source column), and `S` is
//! the 0/1 selector picking the compensated columns.

use memlp_linalg::Matrix;

/// The §3.2 sign decomposition of a matrix.
///
/// For any `x`: `A·x = pos·x − neg·x[comp_cols]` (see [`SignSplit::split`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SignSplit {
    /// `A′`: the matrix with negative entries replaced by zero (m×n, ⪰ 0).
    pub pos: Matrix,
    /// `A″`: absolute values of the negative entries, one column per entry
    /// of `comp_cols` (m×k, ⪰ 0). Empty (m×0 ≡ 0 columns) when `A ⪰ 0`.
    pub neg: Matrix,
    /// Source column of each compensation column: `comp_cols[r] = j` means
    /// compensation variable `r` equals `−x_j`.
    pub comp_cols: Vec<usize>,
}

impl SignSplit {
    /// Splits `a` into its crossbar-mappable parts.
    pub fn split(a: &Matrix) -> SignSplit {
        let m = a.rows();
        let n = a.cols();
        let comp_cols: Vec<usize> = (0..n)
            .filter(|&j| (0..m).any(|i| a[(i, j)] < 0.0))
            .collect();
        let mut pos = Matrix::zeros(m, n);
        let mut neg = Matrix::zeros(m, comp_cols.len());
        for i in 0..m {
            for j in 0..n {
                let v = a[(i, j)];
                if v >= 0.0 {
                    pos[(i, j)] = v;
                }
            }
        }
        for (r, &j) in comp_cols.iter().enumerate() {
            for i in 0..m {
                let v = a[(i, j)];
                if v < 0.0 {
                    neg[(i, r)] = -v;
                }
            }
        }
        SignSplit {
            pos,
            neg,
            comp_cols,
        }
    }

    /// Number of compensation variables `k` this split introduces.
    pub fn num_compensations(&self) -> usize {
        self.comp_cols.len()
    }

    /// Reconstructs the original matrix (`A = A′ − A″·S`); used by tests
    /// and the digital-side feasibility checks.
    pub fn reconstruct(&self) -> Matrix {
        let mut a = self.pos.clone();
        for (r, &j) in self.comp_cols.iter().enumerate() {
            for i in 0..a.rows() {
                a[(i, j)] -= self.neg[(i, r)];
            }
        }
        a
    }

    /// Applies the original operator: `A·x` computed from the split parts —
    /// the identity the augmented crossbar system relies on
    /// (`A′·x + A″·p = A·x` with `p = −x[comp_cols]`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.pos.cols()`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.pos.matvec(x);
        if !self.comp_cols.is_empty() {
            let p: Vec<f64> = self.comp_cols.iter().map(|&j| -x[j]).collect();
            let yn = self.neg.matvec(&p);
            for (yi, ni) in y.iter_mut().zip(&yn) {
                *yi += ni;
            }
        }
        y
    }

    /// The compensation values `p = −x[comp_cols]` for a given `x`.
    pub fn compensation_values(&self, x: &[f64]) -> Vec<f64> {
        self.comp_cols.iter().map(|&j| -x[j]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed() -> Matrix {
        Matrix::from_rows(&[&[1.0, -2.0, 0.0], &[-0.5, 3.0, 1.0], &[2.0, 0.0, -4.0]]).unwrap()
    }

    #[test]
    fn split_parts_are_nonnegative() {
        let s = SignSplit::split(&mixed());
        assert!(s.pos.is_nonnegative());
        assert!(s.neg.is_nonnegative());
    }

    #[test]
    fn comp_cols_are_the_columns_with_negatives() {
        let s = SignSplit::split(&mixed());
        assert_eq!(s.comp_cols, vec![0, 1, 2]);
        let nonneg = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 3.0]]).unwrap();
        assert_eq!(SignSplit::split(&nonneg).num_compensations(), 0);
    }

    #[test]
    fn reconstruct_roundtrips() {
        let a = mixed();
        assert_eq!(SignSplit::split(&a).reconstruct(), a);
    }

    #[test]
    fn apply_matches_direct_matvec() {
        let a = mixed();
        let s = SignSplit::split(&a);
        let x = [1.0, -2.0, 0.5];
        let direct = a.matvec(&x);
        let split = s.apply(&x);
        for (d, sp) in direct.iter().zip(&split) {
            assert!((d - sp).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_on_nonnegative_matrix_is_plain_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 3.0]]).unwrap();
        let s = SignSplit::split(&a);
        assert_eq!(s.num_compensations(), 0);
        assert_eq!(s.apply(&[1.0, 1.0]), a.matvec(&[1.0, 1.0]));
    }

    #[test]
    fn compensation_values_negate_selected() {
        let s = SignSplit::split(&mixed());
        let p = s.compensation_values(&[1.0, 2.0, 3.0]);
        assert_eq!(p, vec![-1.0, -2.0, -3.0]);
    }

    #[test]
    fn single_negative_entry_single_compensation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, -0.25]]).unwrap();
        let s = SignSplit::split(&a);
        assert_eq!(s.comp_cols, vec![1]);
        assert_eq!(s.neg[(1, 0)], 0.25);
        assert_eq!(s.neg[(0, 0)], 0.0);
        assert_eq!(s.pos[(1, 1)], 0.0);
    }

    #[test]
    fn eqn13_identity_holds_columnwise() {
        // The augmented system identity: A′x + A″p = Ax with p = −x_sel.
        let a = mixed();
        let s = SignSplit::split(&a);
        let x = [0.3, 0.7, -1.1];
        let p = s.compensation_values(&x);
        let mut lhs = s.pos.matvec(&x);
        let contrib = s.neg.matvec(&p);
        for (l, c) in lhs.iter_mut().zip(&contrib) {
            *l += c;
        }
        let rhs = a.matvec(&x);
        for (l, r) in lhs.iter().zip(&rhs) {
            assert!((l - r).abs() < 1e-12);
        }
    }
}
