use memlp_crossbar::{CrossbarConfig, Phase};
use memlp_linalg::{ops, parallel, LuFactors, Matrix};
use memlp_lp::{LpProblem, LpSolution, LpStatus};
use memlp_solvers::budget::{Budget, BudgetCause};
use memlp_solvers::pdip::{CoreSolveError, PdipOptions, PdipState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::hw::{HwContext, TileTraffic};
use crate::recovery::{self, RecoveryEvent, RecoveryPolicy, RecoveryReport};
use crate::tiles::{TiledMatrix, ANALOG_TILE_SIDE};
use crate::trace::{IterationRecord, SolverTrace, WriteStats};
use crate::transform::SignSplit;

/// Stable block keys: each physical crossbar region the solver programs gets
/// one, so fault plans persist per region across attempts (see
/// [`HwContext::write_matrix`]).
mod key {
    /// Solve realization (with fill), in programming order.
    pub const AP_S: u32 = 0;
    pub const AN_S: u32 = 1;
    pub const ATP_S: u32 = 2;
    pub const ATN_S: u32 = 3;
    pub const RU_S: u32 = 4;
    pub const RL_S: u32 = 5;
    pub const SELX: u32 = 6;
    pub const SELY: u32 = 7;
    pub const IPX: u32 = 8;
    pub const IPY: u32 = 9;
    /// MVM realization (fill-free, Eqn 17a).
    pub const AP_M: u32 = 10;
    pub const AN_M: u32 = 11;
    pub const ATP_M: u32 = 12;
    pub const ATN_M: u32 = 13;
    pub const SELX_M: u32 = 14;
    pub const SELY_M: u32 = 15;
    pub const IPX_M: u32 = 16;
    pub const IPY_M: u32 = 17;
    /// Per-iteration diagonal crossbar M2.
    pub const XD: u32 = 18;
    pub const YD: u32 = 19;
}

/// Options for the large-scale solver (Algorithm 2, §3.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LargeScaleOptions {
    /// Outer-loop options (tolerances, iteration cap, divergence bound).
    pub pdip: PdipOptions,
    /// The base step length θ (§3.4: "θ … were found to be better to be
    /// constant to guarantee convergence"). See [`LargeScaleOptions::theta_decay`].
    pub theta: f64,
    /// Step-length decay half-life in iterations (0 disables decay and
    /// keeps the paper's strictly constant θ). A slow decay
    /// `θ_k = θ / (1 + k/decay)` damps the limit-cycle oscillation the
    /// constant-step split iteration otherwise settles into.
    pub theta_decay: usize,
    /// Magnitude of the `RU`/`RL` fill relative to the mean |A| coefficient
    /// — the "very small" values that make Eqn 16c non-singular.
    pub fill_scale: f64,
    /// The §3.2 relaxed feasibility parameter α for the final check.
    pub alpha: f64,
    /// Re-solve attempts (the §4.3 double-checking scheme).
    pub retries: usize,
    /// Iterations without improvement before declaring a noise-floor stall.
    pub stall_window: usize,
    /// Largest relative score accepted as converged at a stall.
    pub accept_floor: f64,
    /// Relative primal-residual level at (or above) which a stalled run is
    /// classified as infeasible: a planted contradiction pins the residual
    /// at the contradiction gap, far above the solver's noise floor.
    pub infeasible_floor: f64,
    /// Row-equilibrate the problem before mapping it onto the crossbar.
    /// The converters quantize relative to the *global* signal maximum, so
    /// constraints with small coefficients drown in other rows' noise
    /// unless rows are normalized; dual variables are un-scaled digitally
    /// on the way out.
    pub equilibrate: bool,
    /// Gain κ on the dual residual-feedback term: the `Δy` read-out from
    /// the `[ρ, 0]` solve carries the unresolved primal residual
    /// `r⊥ = ρ − A·Δx` (scaled by 1/λ); it is re-scaled by `−κ·λ` in the
    /// summing-amplifier stage and added to the min-norm dual step. The
    /// sign flip corrects the positive-only fill's anti-Newton polarity
    /// (crossbars cannot store negative λ); without this term the primal
    /// residual floors at the least-squares residual of `A`.
    pub dual_feedback: f64,
    /// How far the solver may escalate when write–verify reports defects
    /// (see [`RecoveryPolicy`]).
    pub recovery: RecoveryPolicy,
}

impl Default for LargeScaleOptions {
    fn default() -> Self {
        LargeScaleOptions {
            pdip: PdipOptions {
                eps_primal: 8e-3,
                eps_dual: 8e-3,
                eps_gap: 4e-3,
                max_iterations: 400,
                ..PdipOptions::default()
            },
            theta: 0.30,
            theta_decay: 30,
            fill_scale: 0.05,
            // The large-scale solver's residual floor is coarser than
            // Algorithm 1's (as is its accuracy in the paper), so its
            // "close but greater than 1" α is looser.
            alpha: 1.10,
            retries: 3,
            stall_window: 40,
            // The split iteration stalls at a higher residual floor than
            // Algorithm 1 (the paper likewise reports coarser accuracy for
            // the large-scale solver: 0.8–8.5% vs 0.2–9.9%); the αb
            // post-check remains the hard guard on what is accepted.
            accept_floor: 0.25,
            infeasible_floor: 0.30,
            equilibrate: false,
            dual_feedback: 1.0,
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// **Algorithm 2** — the memristor crossbar linear program solver for
/// large-scale operations (paper §3.4).
///
/// Instead of one `≈4(n+m)`-sized crossbar system per iteration, the Newton
/// step is split into:
///
/// 1. a **static** `(n+m+k)` system (Eqn 16c/16d) for `(Δx, Δy)` — `A` and
///    `Aᵀ` blocks with small random `RU`/`RL` fill to remove the
///    singularity of `diag(A, Aᵀ)`, programmed once; its right-hand side is
///    produced on a fill-free copy per Eqn 17a;
/// 2. a **diagonal** `(n+m)` system (Eqn 16b) for `(Δz, Δw)` — the only
///    per-iteration coefficient updates (O(N) writes of `X`, `Y`).
///
/// Steps use a constant θ; convergence failures re-solve with fresh
/// variation. The matrices a single crossbar must hold shrink from
/// `≈4(n+m)` to `≈(n+m+k)`, which is the scalability win the paper claims.
#[derive(Debug, Clone)]
pub struct LargeScaleSolver {
    config: CrossbarConfig,
    options: LargeScaleOptions,
}

/// Realized hardware state for one Algorithm-2 attempt.
struct LargeScaleSystem {
    n: usize,
    m: usize,
    split_a: SignSplit,
    split_at: SignSplit,
    // Solve realization (with fill), reduced to the (n+m) core and factored
    // once — the system is static across iterations.
    core_lu: LuFactors,
    // Effective corrections for Δp back-substitution.
    ipx: Vec<f64>,
    ipy: Vec<f64>,
    an_solve: TiledMatrix,
    atn_solve: TiledMatrix,
    // MVM realization (without fill) per Eqn 17a, carried with the
    // occupancy index of its planned coefficients so the fill-free MVMs
    // schedule (and the cost model charges) live tiles only.
    ap_mvm: TiledMatrix,
    an_mvm: TiledMatrix,
    atp_mvm: TiledMatrix,
    atn_mvm: TiledMatrix,
    selx_mvm: Vec<f64>,
    sely_mvm: Vec<f64>,
    ipx_mvm: Vec<f64>,
    ipy_mvm: Vec<f64>,
    // Per-iteration diagonal realization of M2 = diag(X, Y).
    xd: Vec<f64>,
    yd: Vec<f64>,
    cells: usize,
    /// Cells with hardware behind them in the MVM realization (live tiles
    /// under elision), for its settle-energy estimate.
    mvm_cells: usize,
    /// Tiles each fill-free MVM schedules across the four planes.
    mvm_live_tiles: usize,
    /// Fabric grid positions across the four MVM planes (hop geometry).
    mvm_grid_tiles: usize,
    /// Nominal λ the controller targeted for the RU/RL fill.
    fill_nominal: f64,
    /// Residual-feedback gain κ (from the solver options).
    dual_feedback: f64,
}

impl LargeScaleSolver {
    /// Creates a solver over the given hardware configuration.
    pub fn new(config: CrossbarConfig, options: LargeScaleOptions) -> Self {
        LargeScaleSolver { config, options }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// Solves `lp` with the retry scheme. Failed attempts are kept and the
    /// best-scoring one (smallest relative residual/gap) is what the final
    /// classification sees once the retry budget is spent.
    pub fn solve(&self, lp: &LpProblem) -> crate::CrossbarSolution {
        self.solve_budgeted(lp, Budget::none())
    }

    /// [`Self::solve`] under an explicit iteration/deadline [`Budget`],
    /// polled once per split iteration cumulatively across retry attempts.
    /// Expiry returns the best iterate seen so far with
    /// [`crate::CrossbarSolution::degraded`] set; with [`Budget::none()`]
    /// this is bitwise identical to [`Self::solve`].
    pub fn solve_budgeted(&self, lp: &LpProblem, budget: Budget<'_>) -> crate::CrossbarSolution {
        let mut report = RecoveryReport::new(self.options.recovery);
        let bnorm = 1.0 + ops::inf_norm(lp.b());
        let cnorm = 1.0 + ops::inf_norm(lp.c());
        let score_of = |sol: &LpSolution| -> f64 {
            if sol.x.is_empty() {
                return f64::INFINITY;
            }
            let pr = sol.primal_residual / bnorm;
            let dr = sol.dual_residual / cnorm;
            let gap = sol.duality_gap / (1.0 + sol.objective.abs());
            pr.max(dr).max(gap)
        };
        let mut best: Option<(f64, LpSolution, SolverTrace, usize)> = None;
        // The equilibrated problem and its Aᵀ are attempt-invariant
        // (equilibration is deterministic); hoist them out of the retry
        // loop so each attempt only redraws hardware variation.
        let (wlp, eq) = if self.options.equilibrate {
            // Equilibration failing (overflow on a subnormal row maximum)
            // only loses conditioning, never correctness: fall back to the
            // unscaled problem.
            match memlp_lp::equilibrate(lp) {
                Ok((scaled, eq)) => (scaled, Some(eq)),
                Err(_) => (lp.clone(), None),
            }
        } else {
            (lp.clone(), None)
        };
        let at = wlp.a().transpose();
        // The hardware context persists across attempts: fault plans belong
        // to the physical array, while each `begin_attempt` redraws the
        // Eqn 18 variation (the §4.3 double check).
        let mut hw = HwContext::new(self.config);
        let mut spent = 0usize;
        for attempt in 0..=self.options.retries {
            hw.begin_attempt(0x1A26_0000 + attempt as u64);
            let outcome = self.attempt(
                lp,
                &wlp,
                &eq,
                &at,
                &mut hw,
                attempt as u64,
                budget,
                &mut spent,
            );
            for e in hw.take_recovery_events() {
                report.push(e);
            }
            // See the Algorithm-1 solver: Infeasible from hardware with
            // write–verify-confirmed defects is the fault talking, not a
            // certificate — keep climbing the ladder.
            let hw_suspect = self.options.recovery.acts() && report.saw_faults();
            match outcome {
                Ok((solution, mut trace, Some(cause))) => {
                    // Budget expiry ends the solve now: return the best
                    // iterate available, skipping retry escalation and the
                    // digital fallback the caller no longer has time for.
                    trace.events = report.events.clone();
                    trace.writes = WriteStats::from_ledger(hw.ledger());
                    return crate::CrossbarSolution {
                        solution,
                        ledger: *hw.ledger(),
                        trace,
                        retries_used: attempt,
                        recovery: report,
                        degraded: Some(cause),
                    };
                }
                Ok((mut solution, mut trace, None)) => {
                    let failed = matches!(solution.status, LpStatus::NumericalFailure)
                        || (matches!(
                            solution.status,
                            LpStatus::IterationLimit | LpStatus::Infeasible
                        ) && hw_suspect)
                        || (solution.status == LpStatus::IterationLimit
                            && attempt < self.options.retries)
                        // Strict §3.2 α-recheck for fault-suspect Optimal
                        // verdicts (see the Algorithm-1 solver).
                        || (solution.status == LpStatus::Optimal
                            && hw_suspect
                            && !lp.satisfies_relaxed_scaled(&solution.x, self.options.alpha));
                    if !failed {
                        self.classify_exhausted(lp, &mut solution);
                        trace.events = report.events.clone();
                        trace.writes = WriteStats::from_ledger(hw.ledger());
                        return crate::CrossbarSolution {
                            solution,
                            ledger: *hw.ledger(),
                            trace,
                            retries_used: attempt,
                            recovery: report,
                            degraded: None,
                        };
                    }
                    let score = score_of(&solution);
                    if best.as_ref().map(|(s, ..)| score < *s).unwrap_or(true) {
                        best = Some((score, solution, trace, attempt));
                    }
                }
                Err(()) => {
                    if best.is_none() {
                        best = Some((
                            f64::INFINITY,
                            LpSolution::failed(LpStatus::NumericalFailure, 0),
                            SolverTrace::new(),
                            attempt,
                        ));
                    }
                }
            }
            if attempt < self.options.retries {
                recovery::escalate_hardware(self.options.recovery, &mut hw, &mut report);
                report.push(RecoveryEvent::VariationRedraw {
                    attempt: attempt + 1,
                });
            }
        }
        // The retry loop always runs at least once; if the invariant ever
        // breaks, report a numerical failure instead of panicking mid-solve.
        let (_, mut solution, mut trace, attempt) = best.unwrap_or_else(|| {
            (
                f64::INFINITY,
                LpSolution::failed(LpStatus::NumericalFailure, 0),
                SolverTrace::new(),
                0,
            )
        });
        self.classify_exhausted(lp, &mut solution);
        // Rung 4: defective hardware that exhausted the analog ladder hands
        // the problem to the bounded digital solve (fault-free failures keep
        // their analog verdict). Fault-era Infeasible verdicts are
        // re-checked too — a genuine contradiction still reports Infeasible
        // from the digital certificate.
        // (An α-failing `Optimal` — one that spent every attempt failing
        // the strict recheck above — qualifies for fallback too; an
        // α-passing one promoted by `classify_exhausted` keeps its analog
        // answer.)
        let unresolved = matches!(
            solution.status,
            LpStatus::NumericalFailure | LpStatus::IterationLimit | LpStatus::Infeasible
        ) || (solution.status == LpStatus::Optimal
            && !lp.satisfies_relaxed_scaled(&solution.x, self.options.alpha));
        if unresolved && self.options.recovery.allows_digital() && report.saw_faults() {
            let (digital, events) =
                recovery::digital_fallback(lp, self.options.pdip.max_iterations);
            for e in events {
                report.push(e);
            }
            solution = digital;
        }
        trace.events = report.events.clone();
        trace.writes = WriteStats::from_ledger(hw.ledger());
        crate::CrossbarSolution {
            solution,
            ledger: *hw.ledger(),
            trace,
            retries_used: attempt,
            recovery: report,
            degraded: None,
        }
    }

    /// Cheap admission check mirroring
    /// [`crate::CrossbarPdipSolver::preflight`]: the Eqn 16c core is a
    /// dense `(n+m)²` factorization, so an instance whose core would blow
    /// the [`crate::DENSE_CORE_LIMIT_BYTES`] allocation guard is refused up
    /// front instead of attempting the allocation.
    pub fn preflight(&self, lp: &LpProblem) -> Result<(), CoreSolveError> {
        let dim = lp.num_vars() + lp.num_constraints();
        let bytes = 8 * (dim as u64) * (dim as u64);
        if bytes > crate::DENSE_CORE_LIMIT_BYTES {
            return Err(CoreSolveError::CoreTooLarge {
                dim,
                bytes,
                limit: crate::DENSE_CORE_LIMIT_BYTES,
            });
        }
        Ok(())
    }

    /// Solves a batch of problems concurrently (one independent solver pass
    /// per problem, results in input order). `jobs = 0` resolves the worker
    /// count from `MEMLP_THREADS` / available parallelism. Each problem
    /// simulates on its own deterministic [`HwContext`], so batching never
    /// changes results relative to sequential [`Self::solve`] calls.
    ///
    /// As in [`CrossbarPdipSolver::solve_batch`], parallelism applies
    /// across batch items only — inner kernels run serial per worker to
    /// avoid oversubscription on the small per-solve matrices.
    ///
    /// [`CrossbarPdipSolver::solve_batch`]: crate::CrossbarPdipSolver::solve_batch
    pub fn solve_batch(
        &self,
        lps: &[LpProblem],
        jobs: usize,
    ) -> Vec<Result<crate::CrossbarSolution, CoreSolveError>> {
        let jobs = if jobs == 0 {
            parallel::Threads::resolve().get()
        } else {
            jobs
        };
        parallel::run_indexed(jobs, lps.len(), |i| {
            parallel::with_threads(1, || {
                self.preflight(&lps[i])?;
                Ok(self.solve(&lps[i]))
            })
        })
    }

    /// Per §3.2, once the retry budget is spent a run whose residual is
    /// still pinned at the infeasibility level — or whose iterate fails the
    /// relaxed `A·x ⪯ α·b` check grossly — is the infeasibility verdict
    /// (variation is redrawn each retry, so a feasible problem would almost
    /// surely have passed at least once).
    fn classify_exhausted(&self, lp: &LpProblem, solution: &mut LpSolution) {
        if matches!(
            solution.status,
            LpStatus::NumericalFailure | LpStatus::IterationLimit
        ) && !solution.x.is_empty()
        {
            let bnorm = 1.0 + ops::inf_norm(lp.b());
            let cnorm = 1.0 + ops::inf_norm(lp.c());
            let pr = solution.primal_residual / bnorm;
            let dr = solution.dual_residual / cnorm;
            let gap = solution.duality_gap / (1.0 + solution.objective.abs());
            let score = pr.max(dr).max(gap);
            if pr >= self.options.infeasible_floor
                && !lp.satisfies_relaxed_scaled(&solution.x, self.options.alpha)
            {
                solution.status = LpStatus::Infeasible;
            } else if score <= self.options.accept_floor
                && {
                    let dual: f64 = lp.b().iter().zip(&solution.y).map(|(b, y)| b * y).sum();
                    (solution.objective - dual).abs() / (1.0 + solution.objective.abs()) <= 0.5
                }
                && lp.satisfies_relaxed_scaled(&solution.x, self.options.alpha)
            {
                // Fall back to the coarse acceptance level once the retry
                // budget is spent: the tighter small-problem floor was
                // aspirational, not a correctness bound.
                solution.status = LpStatus::Optimal;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &self,
        lp: &LpProblem,
        wlp: &LpProblem,
        eq: &Option<memlp_lp::Equilibration>,
        at: &Matrix,
        hw: &mut HwContext,
        salt: u64,
        budget: Budget<'_>,
        spent: &mut usize,
    ) -> Result<(LpSolution, SolverTrace, Option<BudgetCause>), ()> {
        let opts = &self.options.pdip;
        // Hardware sees the equilibrated problem (`wlp`, with `at = wlp.Aᵀ`
        // precomputed by the caller); acceptance checks and the reported
        // solution always refer to the original `lp` (x is shared;
        // duals/slacks are un-scaled via `finish`).
        let finish = |mut state: PdipState,
                      status: LpStatus,
                      iter: usize,
                      trace: SolverTrace,
                      cause: Option<BudgetCause>| {
            if let Some(eq) = eq {
                state.y = eq.unscale_duals(&state.y);
                for (w, s) in state.w.iter_mut().zip(&eq.row_scales) {
                    *w *= s;
                }
            }
            Ok((state.into_solution(lp, status, iter), trace, cause))
        };
        let mut state = PdipState::new(wlp, opts);
        let mut trace = SolverTrace::new();
        let mut sys = LargeScaleSystem::program(
            wlp,
            at,
            &state,
            self.options.fill_scale,
            self.options.dual_feedback,
            hw,
            salt,
        )
        .ok_or(())?;

        let bnorm = 1.0 + ops::inf_norm(wlp.b());
        let cnorm = 1.0 + ops::inf_norm(wlp.c());
        let base_theta = self.options.theta;
        // Small systems have genuinely lower noise floors (fewer summed
        // noise terms per output line), so the stall-acceptance level
        // tightens below ~40 state variables.
        let accept_floor = if lp.num_vars() + lp.num_constraints() < 40 {
            0.4 * self.options.accept_floor
        } else {
            self.options.accept_floor
        };
        let mut best_state = state.clone();
        let mut best_score = f64::INFINITY;
        let mut best_iter = 0usize;
        // Tail averaging: the constant-θ iteration orbits the solution
        // rather than landing on it; the running mean of the orbit is a
        // far better iterate. Purely digital (the controller keeps sums).
        let mut tail = TailAverage::new(lp.num_vars(), lp.num_constraints());

        for iter in 0..opts.max_iterations {
            // Cooperative cancellation, as in the Algorithm-1 solver: one
            // budget poll per split iteration, cumulative across attempts.
            if let Some(cause) = budget.check(*spent) {
                let chosen = if best_score.is_finite() {
                    best_state
                } else {
                    state
                };
                return finish(chosen, LpStatus::IterationLimit, iter, trace, Some(cause));
            }
            *spent += 1;
            if !(ops::all_finite(&state.x) && ops::all_finite(&state.y)) {
                return finish(state, LpStatus::NumericalFailure, iter, trace, None);
            }
            if ops::inf_norm(&state.y) > opts.divergence_bound {
                return finish(state, LpStatus::Infeasible, iter, trace, None);
            }
            if ops::inf_norm(&state.x) > opts.divergence_bound {
                return finish(state, LpStatus::Unbounded, iter, trace, None);
            }

            let theta = if self.options.theta_decay == 0 {
                base_theta
            } else {
                base_theta / (1.0 + iter as f64 / self.options.theta_decay as f64)
            };

            // --- System 1: r1 via the fill-free MVM (Eqn 17a).
            let mu = state.mu(opts.delta);
            let r1 = sys.rhs1(wlp, &state, hw);
            let (rho, sigma) = (&r1[..sys.m], &r1[sys.m..sys.m + sys.n]);
            let pr = ops::inf_norm(rho) / bnorm;
            let dr = ops::inf_norm(sigma) / cnorm;
            let gap = state.duality_gap() / (1.0 + wlp.objective(&state.x).abs());
            trace.push(IterationRecord {
                mu,
                gap,
                primal_residual: pr,
                dual_residual: dr,
                theta,
            });
            if pr <= opts.eps_primal && dr <= opts.eps_dual && gap <= opts.eps_gap {
                let status = if lp.satisfies_relaxed_scaled(&state.x, self.options.alpha) {
                    LpStatus::Optimal
                } else {
                    LpStatus::NumericalFailure
                };
                return finish(state, status, iter, trace, None);
            }
            let score = pr.max(dr).max(gap);
            if score < 0.95 * best_score {
                best_score = score;
                best_state = state.clone();
                best_iter = iter;
            } else {
                tail.accumulate(&state);
                if iter - best_iter >= self.options.stall_window {
                    // Noise-floor stall: prefer the orbit average when it
                    // is (digitally verified) more primal-feasible, then
                    // classify via the §3.2 relaxed check.
                    let candidate = tail
                        .mean()
                        .filter(|avg| {
                            let avg_pr = ops::inf_norm(&avg.primal_residual(wlp)) / bnorm;
                            avg_pr < best_score
                        })
                        .unwrap_or_else(|| best_state.clone());
                    let cand_pr = ops::inf_norm(&candidate.primal_residual(wlp)) / bnorm;
                    let cand_score = best_score.min(cand_pr);
                    // A corrupted dual pair can show a small zᵀx + yᵀw
                    // while the primal and dual objectives disagree badly.
                    // A *catastrophic* disagreement blocks acceptance (the
                    // duals of the split iteration are legitimately sloppy,
                    // so only gross mismatch is disqualifying).
                    let cobj = wlp.objective(&candidate.x);
                    let cdual: f64 = wlp.b().iter().zip(&candidate.y).map(|(b, y)| b * y).sum();
                    let obj_gap = (cobj - cdual).abs() / (1.0 + cobj.abs());
                    // Classification by stall level: the solver's noise
                    // floor sits well below accept_floor; a residual pinned
                    // at infeasible_floor or above is a contradiction gap,
                    // not noise. The band in between is ambiguous — retry
                    // with fresh variation (§4.3 double checking).
                    let status = if cand_score <= accept_floor && obj_gap <= 0.5 {
                        LpStatus::Optimal
                    } else if cand_score >= self.options.infeasible_floor {
                        LpStatus::Infeasible
                    } else {
                        LpStatus::NumericalFailure
                    };
                    return finish(candidate, status, iter, trace, None);
                }
            }

            // --- Solve system 1 (static crossbar). The ADC reference is
            // set a decade above the current iterate magnitude; weakly
            // determined step components saturate there.
            let clip = 10.0 * (1.0 + ops::inf_norm(&state.x).max(ops::inf_norm(&state.y)));
            if iter > 0 {
                // System 1 is static: every iteration after the first
                // reuses the factorization from programming time instead
                // of rebuilding and refactoring the core.
                hw.note_rebuild_avoided();
            }
            let Some((dx, dy)) = sys.solve1(&r1, clip, hw) else {
                return finish(state, LpStatus::NumericalFailure, iter, trace, None);
            };

            // --- Update s1 = (x, y) with constant θ, capped at the
            // positivity boundary (the paper's uncapped constant step
            // diverges whenever an iterate crosses zero; see DESIGN.md §9).
            let theta1 =
                positivity_cap(theta, &state.x, &dx).min(positivity_cap(theta, &state.y, &dy));
            for (v, d) in state.x.iter_mut().zip(&dx) {
                *v = (*v + theta1 * d).max(1e-9);
            }
            for (v, d) in state.y.iter_mut().zip(&dy) {
                *v = (*v + theta1 * d).max(1e-9);
            }

            // --- System 2: update M2 diagonals (the O(N) writes), derive
            //     r2 (Eqn 17b), solve the diagonal system (Eqn 16b).
            sys.update_diagonals(&state, hw);
            let clip2 = 10.0 * (1.0 + ops::inf_norm(&state.z).max(ops::inf_norm(&state.w)));
            let (dz, dw) = sys.solve2(&state, mu, clip2, hw).ok_or(())?;
            let theta2 =
                positivity_cap(theta, &state.z, &dz).min(positivity_cap(theta, &state.w, &dw));
            for (v, d) in state.z.iter_mut().zip(&dz) {
                *v = (*v + theta2 * d).max(1e-9);
            }
            for (v, d) in state.w.iter_mut().zip(&dw) {
                *v = (*v + theta2 * d).max(1e-9);
            }
        }

        let status = match () {
            _ if ops::inf_norm(&state.y) > opts.divergence_bound => LpStatus::Infeasible,
            _ if ops::inf_norm(&state.x) > opts.divergence_bound => LpStatus::Unbounded,
            _ => LpStatus::IterationLimit,
        };
        let iters = opts.max_iterations;
        finish(state, status, iters, trace, None)
    }
}

/// Running mean of the iterate orbit (digital controller state).
struct TailAverage {
    x: Vec<f64>,
    y: Vec<f64>,
    w: Vec<f64>,
    z: Vec<f64>,
    count: usize,
}

impl TailAverage {
    fn new(n: usize, m: usize) -> Self {
        TailAverage {
            x: vec![0.0; n],
            y: vec![0.0; m],
            w: vec![0.0; m],
            z: vec![0.0; n],
            count: 0,
        }
    }

    fn accumulate(&mut self, s: &PdipState) {
        for (a, v) in self.x.iter_mut().zip(&s.x) {
            *a += v;
        }
        for (a, v) in self.y.iter_mut().zip(&s.y) {
            *a += v;
        }
        for (a, v) in self.w.iter_mut().zip(&s.w) {
            *a += v;
        }
        for (a, v) in self.z.iter_mut().zip(&s.z) {
            *a += v;
        }
        self.count += 1;
    }

    fn mean(&self) -> Option<PdipState> {
        if self.count == 0 {
            return None;
        }
        let k = self.count as f64;
        Some(PdipState {
            x: self.x.iter().map(|v| v / k).collect(),
            y: self.y.iter().map(|v| v / k).collect(),
            w: self.w.iter().map(|v| v / k).collect(),
            z: self.z.iter().map(|v| v / k).collect(),
        })
    }
}

/// Caps a constant step length at 90% of the positivity boundary:
/// `min(θ, 0.9 / max_i(−d_i / v_i))`.
fn positivity_cap(theta: f64, v: &[f64], d: &[f64]) -> f64 {
    let mut max_ratio = 0.0f64;
    for (vi, di) in v.iter().zip(d) {
        if *di < 0.0 {
            max_ratio = max_ratio.max(-di / vi.max(f64::MIN_POSITIVE));
        }
    }
    if max_ratio <= 0.0 {
        theta
    } else {
        theta.min(0.9 / max_ratio)
    }
}

impl LargeScaleSystem {
    fn program(
        lp: &LpProblem,
        at: &Matrix,
        state: &PdipState,
        fill_scale: f64,
        dual_feedback: f64,
        hw: &mut HwContext,
        salt: u64,
    ) -> Option<LargeScaleSystem> {
        let n = lp.num_vars();
        let m = lp.num_constraints();
        let split_a = SignSplit::split(lp.a());
        let split_at = SignSplit::split(at);
        let kx = split_a.num_compensations();
        let ky = split_at.num_compensations();

        // RU (m×m) and RL (n×n) fill: λ on the diagonal, jittered slightly
        // per cell. A diagonal fill makes Eqn 16c the classic *regularized
        // saddle system* [[A, λI], [λI, Aᵀ]]: solving it against [ρ, 0]
        // yields the least-squares primal step in its Δx component, and
        // against [0, σ] the minimum-norm dual step in its Δy component —
        // both bounded for small λ, unlike a dense random fill whose weakly
        // determined directions explode (see DESIGN.md §9).
        let mean_abs = lp.a().as_slice().iter().map(|v| v.abs()).sum::<f64>()
            / (lp.a().as_slice().len() as f64).max(1.0);
        let fill = fill_scale * mean_abs.max(f64::MIN_POSITIVE);
        let mut frng = StdRng::seed_from_u64(0xF111_0000 ^ salt);
        let ru: Vec<f64> = (0..m)
            .map(|_| frng.random_range(0.75 * fill..1.25 * fill))
            .collect();
        let rl: Vec<f64> = (0..n)
            .map(|_| frng.random_range(0.75 * fill..1.25 * fill))
            .collect();

        // --- Solve realization (with fill). Matrix blocks go through the
        //     occupancy-indexed write path so planned-zero tiles of
        //     block-structured operands are never programmed.
        let ap_s = hw.write_matrix_tiled(key::AP_S, &split_a.pos, ANALOG_TILE_SIDE, Phase::Setup);
        let an_s = hw.write_matrix_tiled(key::AN_S, &split_a.neg, ANALOG_TILE_SIDE, Phase::Setup);
        let atp_s =
            hw.write_matrix_tiled(key::ATP_S, &split_at.pos, ANALOG_TILE_SIDE, Phase::Setup);
        let atn_s =
            hw.write_matrix_tiled(key::ATN_S, &split_at.neg, ANALOG_TILE_SIDE, Phase::Setup);
        let ru_s = hw.write_diag(key::RU_S, &ru, Phase::Setup);
        let rl_s = hw.write_diag(key::RL_S, &rl, Phase::Setup);
        let selx = hw.write_diag(key::SELX, &vec![1.0; kx], Phase::Setup);
        let sely = hw.write_diag(key::SELY, &vec![1.0; ky], Phase::Setup);
        let ipx = hw.write_diag(key::IPX, &vec![1.0; kx], Phase::Setup);
        let ipy = hw.write_diag(key::IPY, &vec![1.0; ky], Phase::Setup);
        if ipx.iter().chain(&ipy).any(|v| *v == 0.0) {
            return None;
        }

        // Eliminate Δp: effective A blocks get column corrections.
        let mut ax_eff = ap_s.realized().clone();
        for (r, &j) in split_a.comp_cols.iter().enumerate() {
            let f = selx[r] / ipx[r];
            for i in 0..m {
                ax_eff[(i, j)] -= an_s.realized()[(i, r)] * f;
            }
        }
        let mut ay_eff = atp_s.realized().clone();
        for (r, &j) in split_at.comp_cols.iter().enumerate() {
            let f = sely[r] / ipy[r];
            for i in 0..n {
                ay_eff[(i, j)] -= atn_s.realized()[(i, r)] * f;
            }
        }
        // Core (m+n) system: [A_eff λI; λI Aᵀ_eff], factored once.
        let dim = n + m;
        let mut k = Matrix::zeros(dim, dim);
        k.set_block(0, 0, &ax_eff);
        k.set_diag_block(0, n, &ru_s);
        k.set_diag_block(m, 0, &rl_s);
        k.set_block(m, n, &ay_eff);
        let core_lu = LuFactors::factor(k).ok()?;

        // --- MVM realization (fill-free, Eqn 17a) — independently written,
        //     so it carries its own variation draws.
        let ap_mvm = hw.write_matrix_tiled(key::AP_M, &split_a.pos, ANALOG_TILE_SIDE, Phase::Setup);
        let an_mvm = hw.write_matrix_tiled(key::AN_M, &split_a.neg, ANALOG_TILE_SIDE, Phase::Setup);
        let atp_mvm =
            hw.write_matrix_tiled(key::ATP_M, &split_at.pos, ANALOG_TILE_SIDE, Phase::Setup);
        let atn_mvm =
            hw.write_matrix_tiled(key::ATN_M, &split_at.neg, ANALOG_TILE_SIDE, Phase::Setup);
        let selx_mvm = hw.write_diag(key::SELX_M, &vec![1.0; kx], Phase::Setup);
        let sely_mvm = hw.write_diag(key::SELY_M, &vec![1.0; ky], Phase::Setup);
        let ipx_mvm = hw.write_diag(key::IPX_M, &vec![1.0; kx], Phase::Setup);
        let ipy_mvm = hw.write_diag(key::IPY_M, &vec![1.0; ky], Phase::Setup);

        let cells = 2 * (m * n * 2 + m * kx + n * ky) + m * m + n * n + 2 * (kx + ky);
        let mvm_blocks = [&ap_mvm, &an_mvm, &atp_mvm, &atn_mvm];
        let mvm_cells = mvm_blocks.iter().map(|t| t.active_cells()).sum::<usize>() + 2 * (kx + ky);
        let mvm_live_tiles = mvm_blocks.iter().map(|t| t.scheduled_tiles()).sum();
        let mvm_grid_tiles = mvm_blocks.iter().map(|t| t.occupancy().grid_tiles()).sum();
        let mut sys = LargeScaleSystem {
            n,
            m,
            split_a,
            split_at,
            core_lu,
            ipx,
            ipy,
            an_solve: an_s,
            atn_solve: atn_s,
            ap_mvm,
            an_mvm,
            atp_mvm,
            atn_mvm,
            selx_mvm,
            sely_mvm,
            ipx_mvm,
            ipy_mvm,
            xd: Vec::new(),
            yd: Vec::new(),
            cells,
            mvm_cells,
            mvm_live_tiles,
            mvm_grid_tiles,
            fill_nominal: fill,
            dual_feedback,
        };
        sys.update_diagonals(state, hw);
        Some(sys)
    }

    /// O(N) per-iteration updates: rewrite `X` and `Y` on the diagonal
    /// crossbar `M2`.
    fn update_diagonals(&mut self, state: &PdipState, hw: &mut HwContext) {
        self.xd = hw.write_diag(key::XD, &state.x, Phase::Run);
        self.yd = hw.write_diag(key::YD, &state.y, Phase::Run);
    }

    /// Eqn 17a: `r1 = [b − w, c + z, 0] − M̂·[x, y, p]` using the
    /// fill-free MVM realization.
    fn rhs1(&self, lp: &LpProblem, state: &PdipState, hw: &mut HwContext) -> Vec<f64> {
        let (n, m) = (self.n, self.m);
        let kx = self.ipx_mvm.len();
        let ky = self.ipy_mvm.len();
        let mut s = Vec::with_capacity(n + m + kx + ky);
        s.extend_from_slice(&state.x);
        s.extend_from_slice(&state.y);
        s.extend(self.split_a.compensation_values(&state.x));
        s.extend(self.split_at.compensation_values(&state.y));
        let sq = hw.dac_blocks(&s, &[n, m, kx + ky]);
        let x = &sq[..n];
        let y = &sq[n..n + m];
        let (px, py) = sq[n + m..].split_at(kx);

        let mut out = Vec::with_capacity(n + m + kx + ky);
        // Row 1: A′x + A″p_x ≈ A·x.
        let mut row1 = self.ap_mvm.matvec(x);
        if kx > 0 {
            let e = self.an_mvm.matvec(px);
            for (r, v) in row1.iter_mut().zip(&e) {
                *r += v;
            }
        }
        out.extend(row1);
        // Row 2: Aᵀ′y + Aᵀ″p_y ≈ Aᵀ·y.
        let mut row2 = self.atp_mvm.matvec(y);
        if ky > 0 {
            let e = self.atn_mvm.matvec(py);
            for (r, v) in row2.iter_mut().zip(&e) {
                *r += v;
            }
        }
        out.extend(row2);
        // Row 3 (consistency rows): sel·(x|y) + Ip·p ≈ 0.
        out.extend(
            self.split_a
                .comp_cols
                .iter()
                .enumerate()
                .map(|(r, &j)| self.selx_mvm[r] * x[j] + self.ipx_mvm[r] * px[r]),
        );
        out.extend(
            self.split_at
                .comp_cols
                .iter()
                .enumerate()
                .map(|(r, &j)| self.sely_mvm[r] * y[j] + self.ipy_mvm[r] * py[r]),
        );
        let g = hw.conductance_estimate(self.mvm_cells, 1.0, 1.0);
        hw.charge_analog_tiled(
            false,
            sq.len(),
            out.len(),
            g,
            TileTraffic {
                live_tiles: self.mvm_live_tiles,
                grid_tiles: self.mvm_grid_tiles,
                lines_per_tile: ANALOG_TILE_SIDE,
            },
        );
        let ms = hw.adc_blocks(&out, &[m, n, kx + ky]);

        // Constant part: [b − w, c + z, 0] (summing amplifiers).
        let mut r = Vec::with_capacity(ms.len());
        for ((&bi, &wi), &mi) in lp.b().iter().zip(&state.w).zip(&ms) {
            r.push(bi - wi - mi);
        }
        for ((&cj, &zj), &mj) in lp.c().iter().zip(&state.z).zip(&ms[m..]) {
            r.push(cj + zj - mj);
        }
        for &mt in &ms[m + n..] {
            r.push(0.0 - mt);
        }
        r
    }

    /// Solves system 1 (Eqn 16c/16d) on the static crossbar; returns
    /// `(Δx, Δy)`.
    /// Solves system 1 as two analog solves against the same static
    /// crossbar: the right-hand side `[ρ, 0]` yields the least-squares
    /// primal step in its `Δx` lines, and `[0, σ]` the minimum-norm dual
    /// step in its `Δy` lines (the complementary lines carry the
    /// `residual/λ` component and are simply not read out). See the
    /// fill-construction comment in [`LargeScaleSystem::program`].
    fn solve1(&self, r1: &[f64], clip: f64, hw: &mut HwContext) -> Option<(Vec<f64>, Vec<f64>)> {
        let (n, m) = (self.n, self.m);
        let kx = self.ipx.len();
        let rq = hw.dac_blocks(r1, &[m, n, kx + self.ipy.len()]);
        let ra = &rq[..m];
        let rb = &rq[m..m + n];
        let (r7x, r7y) = rq[m + n..].split_at(kx);

        // Fold the Δp elimination corrections into each block.
        let mut top = ra.to_vec();
        if kx > 0 {
            let t: Vec<f64> = (0..kx).map(|r| r7x[r] / self.ipx[r]).collect();
            let corr = self.an_solve.matvec(&t);
            for (v, c) in top.iter_mut().zip(&corr) {
                *v -= c;
            }
        }
        let mut bot = rb.to_vec();
        if !r7y.is_empty() {
            let t: Vec<f64> = (0..r7y.len()).map(|r| r7y[r] / self.ipy[r]).collect();
            let corr = self.atn_solve.matvec(&t);
            for (v, c) in bot.iter_mut().zip(&corr) {
                *v -= c;
            }
        }

        let g = hw.conductance_estimate(self.cells / 2, 1.0, 1.0);

        // Solve 1: rhs [ρ, 0] → read the Δx lines, plus the Δy lines
        // (they carry r⊥/λ, the unresolved primal residual).
        let mut rhs_a = top;
        rhs_a.resize(n + m, 0.0);
        let sol_a = self.core_lu.solve(&rhs_a).ok()?;
        if !ops::all_finite(&sol_a) {
            return None;
        }
        let dx = hw.adc_clipped(&sol_a[..n], clip);
        let dy_feedback_raw = hw.adc_clipped(&sol_a[n..], clip / self.fill_nominal.max(1e-9));
        hw.charge_analog(true, n + m, n + m, g);

        // Solve 2: rhs [0, σ] → read the Δy lines (min-norm dual step).
        let mut rhs_b = vec![0.0; m];
        rhs_b.extend(bot);
        let sol_b = self.core_lu.solve(&rhs_b).ok()?;
        if !ops::all_finite(&sol_b) {
            return None;
        }
        let dy_minnorm = hw.adc_clipped(&sol_b[n..], clip);
        hw.charge_analog(true, n + m, m, g);

        // Combine in the summing-amplifier stage: re-scale the feedback by
        // −κ·λ (flipping the positive-fill polarity back to Newton's) and
        // add the min-norm step.
        let gain = -self.dual_feedback * self.fill_nominal;
        let dy: Vec<f64> = dy_minnorm
            .iter()
            .zip(&dy_feedback_raw)
            .map(|(mn, fb)| mn + gain * fb)
            .collect();
        Some((dx, dy))
    }

    /// System 2 (Eqns 16b/17b): derive `r2` on the diagonal crossbar and
    /// solve it — `Δz = r_z / X`, `Δw = r_w / Y`.
    fn solve2(
        &self,
        state: &PdipState,
        mu: f64,
        clip: f64,
        hw: &mut HwContext,
    ) -> Option<(Vec<f64>, Vec<f64>)> {
        let (n, m) = (self.n, self.m);
        // MVM: M2·[z, w] = [X·z, Y·w].
        let mut s = Vec::with_capacity(n + m);
        s.extend_from_slice(&state.z);
        s.extend_from_slice(&state.w);
        let sq = hw.dac_blocks(&s, &[n, m]);
        let mut prod = Vec::with_capacity(n + m);
        prod.extend((0..n).map(|j| self.xd[j] * sq[j]));
        prod.extend((0..m).map(|i| self.yd[i] * sq[n + i]));
        let g = hw.conductance_estimate(n + m, 1.0, 1.0);
        hw.charge_analog(false, n + m, n + m, g);
        let prodq = hw.adc_blocks(&prod, &[n, m]);

        // r2 = [µ, µ] − M2·[z, w]; then the diagonal solve.
        let r2: Vec<f64> = prodq.iter().map(|p| mu - p).collect();
        let r2q = hw.dac_blocks(&r2, &[n, m]);
        let mut out = Vec::with_capacity(n + m);
        for (&xdj, &rj) in self.xd.iter().zip(&r2q) {
            if xdj == 0.0 {
                return None;
            }
            out.push(rj / xdj);
        }
        for (&ydi, &ri) in self.yd.iter().zip(&r2q[n..]) {
            if ydi == 0.0 {
                return None;
            }
            out.push(ri / ydi);
        }
        if !ops::all_finite(&out) {
            return None;
        }
        let outq = hw.adc_clipped(&out, clip);
        hw.charge_analog(true, n + m, n + m, g);
        Some((outq[..n].to_vec(), outq[n..].to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlp_lp::generator::RandomLp;
    use memlp_solvers::{LpSolver, NormalEqPdip};

    fn solver(var_pct: f64, seed: u64) -> LargeScaleSolver {
        LargeScaleSolver::new(
            CrossbarConfig::paper_default()
                .with_variation(var_pct)
                .with_seed(seed),
            LargeScaleOptions::default(),
        )
    }

    #[test]
    fn solves_small_ideal() {
        let lp = RandomLp::paper(24, 31).feasible();
        let res = solver(0.0, 1).solve(&lp);
        assert_eq!(res.solution.status, LpStatus::Optimal, "{}", res.solution);
        let reference = NormalEqPdip::default().solve(&lp);
        let rel = (res.solution.objective - reference.objective).abs()
            / (1.0 + reference.objective.abs());
        // The paper reports 0.8-8.5% inaccuracy for the large-scale solver.
        assert!(rel < 0.10, "relative error {rel}");
    }

    #[test]
    fn solves_under_variation() {
        let lp = RandomLp::paper(24, 33).feasible();
        let res = solver(10.0, 3).solve(&lp);
        assert_eq!(res.solution.status, LpStatus::Optimal, "{}", res.solution);
        let reference = NormalEqPdip::default().solve(&lp);
        let rel = (res.solution.objective - reference.objective).abs()
            / (1.0 + reference.objective.abs());
        assert!(rel < 0.15, "relative error {rel}");
    }

    #[test]
    fn detects_infeasible() {
        for seed in [35, 36, 37] {
            let lp = RandomLp::paper(24, seed).infeasible();
            let res = solver(0.0, seed).solve(&lp);
            assert_eq!(
                res.solution.status,
                LpStatus::Infeasible,
                "seed {seed}: {}",
                res.solution
            );
        }
    }

    #[test]
    fn equilibrated_path_solves_and_unscales_duals() {
        let lp = RandomLp::paper(48, 41).feasible();
        let reference = NormalEqPdip::default().solve(&lp);
        let opts = LargeScaleOptions {
            equilibrate: true,
            ..LargeScaleOptions::default()
        };
        let res =
            LargeScaleSolver::new(CrossbarConfig::paper_default().with_seed(2), opts).solve(&lp);
        assert_eq!(res.solution.status, LpStatus::Optimal, "{}", res.solution);
        let rel = (res.solution.objective - reference.objective).abs()
            / (1.0 + reference.objective.abs());
        assert!(rel < 0.12, "relative error {rel}");
        // Duals must come back in the ORIGINAL row scaling: weak duality
        // against the original b (generous tolerance for analog noise).
        let dual_obj: f64 = lp.b().iter().zip(&res.solution.y).map(|(b, y)| b * y).sum();
        assert!(
            dual_obj >= res.solution.objective - 0.5 * (1.0 + res.solution.objective.abs()),
            "dual {dual_obj} vs primal {} — unscaling broken?",
            res.solution.objective
        );
    }

    #[test]
    fn tile_elision_is_bitwise_invisible_to_the_split_solver() {
        // Dense random planes have no dead tiles, so elision must change
        // nothing at all — not the iterates, not the write counts.
        let lp = RandomLp::paper(24, 33).feasible();
        let run = |elide: bool| {
            LargeScaleSolver::new(
                CrossbarConfig::paper_default()
                    .with_variation(10.0)
                    .with_seed(3)
                    .with_tile_elision(elide),
                LargeScaleOptions::default(),
            )
            .solve(&lp)
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.solution.status, off.solution.status);
        assert_eq!(on.solution.x, off.solution.x, "primal must not see elision");
        assert_eq!(on.solution.y, off.solution.y, "duals must not see elision");
        assert_eq!(
            on.ledger.counts().setup_writes,
            off.ledger.counts().setup_writes
        );
        assert_eq!(
            on.ledger.counts().tiles_elided,
            0,
            "dense: nothing to elide"
        );
    }

    #[test]
    fn per_iteration_updates_are_n_plus_m() {
        let lp = RandomLp::paper(24, 37).feasible();
        let res = solver(0.0, 7).solve(&lp);
        let counts = res.ledger.counts();
        let n = lp.num_vars();
        let m = lp.num_constraints();
        let iters = res.solution.iterations as u64;
        // One (n+m) diagonal rewrite at programming plus one per iteration.
        // Written + skipped equals the wholesale total; delta programming
        // decides the split per cell.
        assert_eq!(
            counts.update_writes + counts.skipped_writes,
            (n + m) as u64 * (iters + 1)
        );
    }

    #[test]
    fn static_system_means_no_matrix_rewrites() {
        let lp = RandomLp::paper(16, 39).feasible();
        let res = solver(0.0, 9).solve(&lp);
        // All matrix-block writes happen during setup.
        assert!(res.ledger.counts().setup_writes > 0);
        assert!(res.ledger.setup_time_s() > 0.0);
    }
}
