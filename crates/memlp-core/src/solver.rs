use memlp_crossbar::{CostLedger, CrossbarConfig};
use memlp_linalg::{ops, parallel, Matrix};
use memlp_lp::{LpProblem, LpSolution, LpStatus};
use memlp_solvers::budget::{Budget, BudgetCause};
use memlp_solvers::pdip::{CoreSolveError, PdipOptions, PdipState, SolvePath};

use crate::hw::HwContext;
use crate::newton::{AugmentedSystem, DENSE_CORE_LIMIT_BYTES};
use crate::recovery::{self, RecoveryEvent, RecoveryPolicy, RecoveryReport};
use crate::trace::{FactorStats, IterationRecord, SolverTrace, WriteStats};

/// Options specific to the crossbar solvers, wrapping [`PdipOptions`] with
/// the paper's hardware-level policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarSolverOptions {
    /// Outer-loop PDIP options. Exit tolerances default looser than the
    /// software baselines: the 8-bit analog I/O sets a noise floor well
    /// above 1e-8.
    pub pdip: PdipOptions,
    /// The §3.2 relaxed feasibility parameter `α` (slightly above 1): the
    /// final solution must satisfy `A·x ⪯ α·b`.
    pub alpha: f64,
    /// Re-solve attempts on numerical failure (the §4.3 "double checking
    /// scheme" — each retry rewrites the array, redrawing variation).
    pub retries: usize,
    /// Iterations without best-score improvement before declaring a stall.
    /// Quantized analog I/O imposes a noise floor on the observable
    /// residuals; once progress stops, more iterations only burn energy.
    pub stall_window: usize,
    /// Largest relative residual/gap score accepted as "converged at the
    /// hardware noise floor" when a stall is declared.
    pub accept_floor: f64,
    /// Relative primal-residual level at (or above) which a stalled run is
    /// classified as infeasible (a contradiction gap, not noise).
    pub infeasible_floor: f64,
    /// Re-program the static blocks every `refresh_every` iterations
    /// (0 = never) — the mitigation for conductance drift
    /// ([`memlp_device::DriftModel`]); the rewrites are charged to the
    /// run phase like any other update.
    pub refresh_every: usize,
    /// How far the solver may escalate when write–verify reports defects
    /// (see [`RecoveryPolicy`]).
    pub recovery: RecoveryPolicy,
}

impl Default for CrossbarSolverOptions {
    fn default() -> Self {
        CrossbarSolverOptions {
            // Exit tolerances sit just above the 20%-variation noise floor,
            // so ideal hardware converges quickly and variation stretches
            // the iteration count toward the same target — the behaviour
            // behind the paper's latency-vs-variation trend (Fig 6a). The
            // stall detector below remains the backstop for runs whose
            // floor is above these tolerances.
            pdip: PdipOptions {
                eps_primal: 2e-2,
                eps_dual: 2e-2,
                eps_gap: 8e-3,
                max_iterations: 250,
                ..PdipOptions::default()
            },
            alpha: 1.05,
            retries: 2,
            stall_window: 25,
            accept_floor: 8e-2,
            infeasible_floor: 0.30,
            refresh_every: 0,
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// Result of a crossbar solve: the LP solution plus hardware accounting.
#[derive(Debug, Clone)]
pub struct CrossbarSolution {
    /// The solver-agnostic solution record.
    pub solution: LpSolution,
    /// Hardware latency/energy/operation ledger (all retries merged).
    pub ledger: CostLedger,
    /// Per-iteration convergence trace of the final attempt.
    pub trace: SolverTrace,
    /// Re-solve attempts that were needed (0 = first attempt succeeded).
    pub retries_used: usize,
    /// Structured account of fault detections and every recovery rung the
    /// solve climbed (empty on defect-free hardware).
    pub recovery: RecoveryReport,
    /// `Some(cause)` when an explicit [`Budget`] expired mid-solve: the
    /// solution then carries the **best feasible iterate observed so far**
    /// under [`LpStatus::IterationLimit`] instead of a converged optimum —
    /// graceful degradation rather than an open-ended hang. `None` for
    /// unbudgeted solves and for budgeted solves that finished in time.
    pub degraded: Option<BudgetCause>,
}

/// **Algorithm 1** — the memristor crossbar-based linear program solver.
///
/// Each PDIP iteration (paper §3.2):
/// 1. update the `X/Y/Z/W` diagonals of the crossbar matrix `M` —
///    O(N) coefficient writes;
/// 2. derive `r` on the crossbar: one analog MVM (Eqn 15b) subtracted from
///    the constant vector (summing amplifiers), rows 3–4 halved;
/// 3. solve `M·Δs = r` — one O(1) analog solve;
/// 4. step `s ← s + θ·Δs` (Eqn 10–11) and update `µ` (Eqn 8).
///
/// Exit on the §3.1 conditions, with the §3.2 `A·x ⪯ α·b` post-check and
/// re-solve-on-failure. All hardware activity is charged to the returned
/// [`CostLedger`].
///
/// # Example
///
/// ```
/// use memlp_core::{CrossbarPdipSolver, CrossbarSolverOptions};
/// use memlp_crossbar::CrossbarConfig;
/// use memlp_lp::{generator::RandomLp, LpStatus};
///
/// let lp = RandomLp::paper(12, 3).feasible();
/// let solver = CrossbarPdipSolver::new(
///     CrossbarConfig::paper_default().with_variation(10.0),
///     CrossbarSolverOptions::default(),
/// );
/// let result = solver.solve(&lp);
/// assert_eq!(result.solution.status, LpStatus::Optimal);
/// ```
#[derive(Debug, Clone)]
pub struct CrossbarPdipSolver {
    config: CrossbarConfig,
    options: CrossbarSolverOptions,
}

impl CrossbarPdipSolver {
    /// Creates a solver over the given hardware configuration.
    pub fn new(config: CrossbarConfig, options: CrossbarSolverOptions) -> Self {
        CrossbarPdipSolver { config, options }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// Solves `lp`, re-solving on numerical failure up to the configured
    /// retry budget and escalating through the fault-recovery ladder
    /// between attempts (see [`RecoveryPolicy`]).
    pub fn solve(&self, lp: &LpProblem) -> CrossbarSolution {
        self.solve_budgeted(lp, Budget::none())
    }

    /// [`Self::solve`] under an explicit iteration/deadline [`Budget`].
    ///
    /// The budget is polled once per Newton iteration, cumulatively across
    /// retry attempts. When it expires the solve stops cooperatively and
    /// returns the best iterate observed so far with
    /// [`CrossbarSolution::degraded`] set — no retry escalation and no
    /// digital fallback are attempted past the deadline. With
    /// [`Budget::none()`] this is bitwise identical to [`Self::solve`].
    pub fn solve_budgeted(&self, lp: &LpProblem, budget: Budget<'_>) -> CrossbarSolution {
        let mut hw = HwContext::new(self.config);
        self.solve_inner(lp, &mut hw, budget, None, None)
    }

    /// Solves `lp` on an **existing** hardware context — the warm-pool entry
    /// point used by `memlp-serve`.
    ///
    /// Unlike [`Self::solve`], which provisions a fresh array per call, this
    /// restarts transient noise via [`HwContext::begin_reuse`] (salted with
    /// `reuse_salt`, e.g. a per-context solve counter) while keeping the
    /// array's variation draw, delta-write code caches, and fault state —
    /// so a repeat solve of the same problem family skips unchanged cell
    /// writes. Escalation retries still redraw variation via
    /// [`HwContext::begin_attempt`], exactly as a cold solve would.
    ///
    /// `warm` optionally seeds the interior-point iteration from a previous
    /// solution's `(x, y)` pair (see [`PdipState::warm_start`]); it applies
    /// to the first attempt only — escalation retries restart centrally so
    /// a bad warm point can never mask a hardware fault.
    pub fn solve_on(
        &self,
        lp: &LpProblem,
        hw: &mut HwContext,
        budget: Budget<'_>,
        warm: Option<(&[f64], &[f64])>,
        reuse_salt: u64,
    ) -> CrossbarSolution {
        self.solve_inner(lp, hw, budget, warm, Some(reuse_salt))
    }

    fn solve_inner(
        &self,
        lp: &LpProblem,
        hw: &mut HwContext,
        budget: Budget<'_>,
        warm: Option<(&[f64], &[f64])>,
        reuse_salt: Option<u64>,
    ) -> CrossbarSolution {
        let mut report = RecoveryReport::new(self.options.recovery);
        let mut last = None;
        // Aᵀ is attempt-invariant; hoist it out of the retry loop. The
        // hardware context is hoisted too: fault plans are properties of the
        // physical array and must persist across §4.3 re-solve attempts
        // (only the Eqn 18 variation redraws).
        let at = lp.a().transpose();
        let mut spent = 0usize;
        for attempt in 0..=self.options.retries {
            match reuse_salt {
                // Warm reuse applies to the first attempt only; escalation
                // retries redraw variation like any cold re-solve.
                Some(salt) if attempt == 0 => hw.begin_reuse(salt),
                _ => hw.begin_attempt(attempt as u64),
            }
            let init = if attempt == 0 { warm } else { None };
            let (solution, mut trace, cause) = self.attempt(lp, &at, hw, budget, &mut spent, init);
            for e in hw.take_recovery_events() {
                report.push(e);
            }
            // Budget expiry ends the solve *now*: the caller asked for the
            // best answer available by the deadline, not for the recovery
            // ladder to keep burning iterations it no longer has.
            if let Some(cause) = cause {
                trace.events = report.events.clone();
                trace.writes = WriteStats::from_ledger(hw.ledger());
                trace.factors = FactorStats::from_ledger(hw.ledger());
                return CrossbarSolution {
                    solution,
                    ledger: *hw.ledger(),
                    trace,
                    retries_used: attempt,
                    recovery: report,
                    degraded: Some(cause),
                };
            }
            // An Infeasible verdict from hardware that write–verify has
            // flagged as defective is not trustworthy: a dead line erases a
            // constraint row, and the residual the controller observes is
            // the fault, not a certificate. Keep climbing the ladder.
            let hw_suspect = self.options.recovery.acts() && report.saw_faults();
            let failed = matches!(solution.status, LpStatus::NumericalFailure)
                || (matches!(
                    solution.status,
                    LpStatus::IterationLimit | LpStatus::Infeasible
                ) && hw_suspect)
                || (solution.status == LpStatus::IterationLimit && attempt < self.options.retries)
                // A stall-path "Optimal" on defective hardware gets the
                // strict (not stall-relaxed) §3.2 α-check digitally: a
                // dead line hides exactly the constraint its row carried.
                || (solution.status == LpStatus::Optimal
                    && hw_suspect
                    && !lp.satisfies_relaxed_scaled(&solution.x, self.options.alpha));
            if !failed {
                trace.events = report.events.clone();
                trace.writes = WriteStats::from_ledger(hw.ledger());
                trace.factors = FactorStats::from_ledger(hw.ledger());
                return CrossbarSolution {
                    solution,
                    ledger: *hw.ledger(),
                    trace,
                    retries_used: attempt,
                    recovery: report,
                    degraded: None,
                };
            }
            last = Some((solution, trace, attempt));
            if attempt < self.options.retries {
                recovery::escalate_hardware(self.options.recovery, hw, &mut report);
                // Rung 3 — the §4.3 double check: the next attempt rewrites
                // everything with freshly drawn variation.
                report.push(RecoveryEvent::VariationRedraw {
                    attempt: attempt + 1,
                });
            }
        }
        // The retry loop always runs at least once; if the invariant ever
        // breaks, report a numerical failure instead of panicking mid-solve.
        let (mut solution, mut trace, attempt) = last.unwrap_or_else(|| {
            (
                LpSolution::failed(LpStatus::NumericalFailure, 0),
                SolverTrace::new(),
                0,
            )
        });
        // Retry budget exhausted: a residual pinned at the infeasibility
        // level that also fails the §3.2 relaxed check is the verdict.
        if matches!(
            solution.status,
            LpStatus::NumericalFailure | LpStatus::IterationLimit
        ) && !solution.x.is_empty()
        {
            // Both signals together: the residual never left the
            // contradiction zone (half the stall-path floor suffices here
            // because the α-check must *also* fail) and the iterate
            // grossly violates A·x ⪯ α·b.
            let bnorm = 1.0 + ops::inf_norm(lp.b());
            if solution.primal_residual / bnorm >= 0.5 * self.options.infeasible_floor
                && !lp.satisfies_relaxed_scaled(&solution.x, self.options.alpha)
            {
                solution.status = LpStatus::Infeasible;
            }
        }
        // Rung 4 — a run that defective hardware left unresolved falls back
        // to the bounded digital solve (fault-free failures keep their
        // analog verdict: the fallback is a fault countermeasure, not a
        // general safety net). Fault-era Infeasible verdicts are re-checked
        // too — the digital solve re-derives the certificate from the true
        // problem, so a genuine contradiction still reports Infeasible.
        // (An α-failing `Optimal` — one that spent every attempt failing
        // the strict recheck above — qualifies for fallback too.)
        let unresolved = matches!(
            solution.status,
            LpStatus::NumericalFailure | LpStatus::IterationLimit | LpStatus::Infeasible
        ) || (solution.status == LpStatus::Optimal
            && !lp.satisfies_relaxed_scaled(&solution.x, self.options.alpha));
        if unresolved && self.options.recovery.allows_digital() && report.saw_faults() {
            let (digital, events) =
                recovery::digital_fallback(lp, self.options.pdip.max_iterations);
            for e in events {
                report.push(e);
            }
            solution = digital;
        }
        trace.events = report.events.clone();
        trace.writes = WriteStats::from_ledger(hw.ledger());
        trace.factors = FactorStats::from_ledger(hw.ledger());
        CrossbarSolution {
            solution,
            ledger: *hw.ledger(),
            trace,
            retries_used: attempt,
            recovery: report,
            degraded: None,
        }
    }

    /// Cheap admission check a batch or service front-end can run **before**
    /// committing hardware attempts: an explicit [`SolvePath::Dense`] whose
    /// `(n+m)²` core would blow the [`DENSE_CORE_LIMIT_BYTES`] allocation
    /// guard is refused up front with [`CoreSolveError::CoreTooLarge`]
    /// instead of burning a full retry ladder to learn the same thing.
    /// (`Auto`/`Sparse` paths reroute around the guard, so they pass.)
    pub fn preflight(&self, lp: &LpProblem) -> Result<(), CoreSolveError> {
        if self.options.pdip.path == SolvePath::Dense {
            let dim = lp.num_vars() + lp.num_constraints();
            let bytes = 8 * (dim as u64) * (dim as u64);
            if bytes > DENSE_CORE_LIMIT_BYTES {
                return Err(CoreSolveError::CoreTooLarge {
                    dim,
                    bytes,
                    limit: DENSE_CORE_LIMIT_BYTES,
                });
            }
        }
        Ok(())
    }

    /// Solves a batch of problems concurrently, one independent solver pass
    /// per problem, returning per-item results in input order.
    ///
    /// Admission is per item: a poisoned instance (e.g. one whose explicit
    /// dense core trips [`CoreSolveError::CoreTooLarge`], see
    /// [`Self::preflight`]) yields an `Err` in *its* slot while every
    /// sibling still solves and returns normally — the serve worker relies
    /// on this to shed one bad job without failing the batch.
    ///
    /// `jobs = 0` resolves the worker count from the environment
    /// (`MEMLP_THREADS`, then available parallelism). Each problem is an
    /// isolated simulation with its own [`HwContext`] and deterministic
    /// seeds, so batch results are identical to per-problem [`Self::solve`]
    /// calls at any worker count.
    ///
    /// Parallelism is applied *across* batch items only: each worker runs
    /// its solves with the inner kernels pinned serial. The per-solve
    /// matrices are far too small to amortize nested thread fan-out, and
    /// oversubscribing (jobs × kernel threads) used to make `threads=2`
    /// slower than `threads=1`.
    pub fn solve_batch(
        &self,
        lps: &[LpProblem],
        jobs: usize,
    ) -> Vec<Result<CrossbarSolution, CoreSolveError>> {
        let jobs = if jobs == 0 {
            parallel::Threads::resolve().get()
        } else {
            jobs
        };
        parallel::run_indexed(jobs, lps.len(), |i| {
            parallel::with_threads(1, || {
                self.preflight(&lps[i])?;
                Ok(self.solve(&lps[i]))
            })
        })
    }

    /// One full solve attempt on freshly written hardware.
    fn attempt(
        &self,
        lp: &LpProblem,
        at: &Matrix,
        hw: &mut HwContext,
        budget: Budget<'_>,
        spent: &mut usize,
        init: Option<(&[f64], &[f64])>,
    ) -> (LpSolution, SolverTrace, Option<BudgetCause>) {
        let opts = &self.options.pdip;
        // A warm start clamps the previous iterate strictly inside the
        // positive orthant; the floor keeps the first complementarity
        // products well-scaled even when the seed solution had active
        // (near-zero) coordinates.
        let mut state = match init {
            Some((x0, y0)) => PdipState::warm_start(lp, x0, y0, opts.warm_start_floor),
            None => PdipState::new(lp, opts),
        };
        let mut trace = SolverTrace::new();
        let mut system = AugmentedSystem::program_with_at(lp, at, &state, hw);
        system.set_solve_path(opts.path);

        let bnorm = 1.0 + ops::inf_norm(lp.b());
        let cnorm = 1.0 + ops::inf_norm(lp.c());
        // Best-iterate tracking: quantized I/O gives the residuals a noise
        // floor, so the controller keeps the best observed iterate and
        // stops once progress stalls.
        let mut best_state = state.clone();
        let mut best_score = f64::INFINITY;
        let mut best_iter = 0usize;
        // Hardware clock at the previous ageing point (drift bookkeeping).
        let mut iter_clock = hw.ledger().run_time_s();

        for iter in 0..opts.max_iterations {
            // Cooperative cancellation: the budget is polled once per
            // Newton iteration (`spent` accumulates across retry attempts).
            // Expiry surrenders the best iterate seen so far — degradation,
            // not failure — so a deadline can never hang a request.
            if let Some(cause) = budget.check(*spent) {
                let best = if best_score.is_finite() {
                    best_state
                } else {
                    state
                };
                return (
                    best.into_solution(lp, LpStatus::IterationLimit, iter),
                    trace,
                    Some(cause),
                );
            }
            *spent += 1;
            // Divergence / NaN checks are digital (the controller tracks s).
            if !(ops::all_finite(&state.x) && ops::all_finite(&state.y)) {
                return (
                    state.into_solution(lp, LpStatus::NumericalFailure, iter),
                    trace,
                    None,
                );
            }
            if ops::inf_norm(&state.y) > opts.divergence_bound {
                return (
                    state.into_solution(lp, LpStatus::Infeasible, iter),
                    trace,
                    None,
                );
            }
            if ops::inf_norm(&state.x) > opts.divergence_bound {
                return (
                    state.into_solution(lp, LpStatus::Unbounded, iter),
                    trace,
                    None,
                );
            }

            // (1) O(N) coefficient updates; static blocks age by the
            // hardware time the previous iteration consumed, and are
            // refreshed on the configured cadence.
            if iter > 0 {
                system.update_diagonals(&state, hw);
                let dt = hw.ledger().run_time_s() - iter_clock;
                system.age(dt, hw);
                iter_clock = hw.ledger().run_time_s();
                if self.options.refresh_every > 0 && iter % self.options.refresh_every == 0 {
                    system.refresh_static(hw);
                }
            }

            // (2) r from the crossbar MVM (Eqn 15a/15b).
            let mu = state.mu(opts.delta);
            let s = system.s_vector(&state);
            let ms = system.mvm(&s, hw);
            let constant = system.rhs_constant(lp, mu);
            let r = system.assemble_rhs(&constant, &ms);

            // Convergence tests on the hardware-observed residuals.
            let (rho, sigma) = system.residual_views(&r);
            let pr = ops::inf_norm(rho) / bnorm;
            let dr = ops::inf_norm(sigma) / cnorm;
            let gap = state.duality_gap() / (1.0 + lp.objective(&state.x).abs());
            trace.push(IterationRecord {
                mu,
                gap,
                primal_residual: pr,
                dual_residual: dr,
                theta: 0.0,
            });
            if pr <= opts.eps_primal && dr <= opts.eps_dual && gap <= opts.eps_gap {
                let mut status = self.final_status(lp, &state);
                // On confirmed-defective hardware the observed residuals
                // describe the realized (faulty) system, so back the exit
                // with a digital primal–dual agreement check on the true
                // problem — catches feasible-but-suboptimal convergence on
                // an array whose dead line dropped a binding constraint.
                if status == LpStatus::Optimal && hw.saw_faults() {
                    let dual_obj: f64 = lp.b().iter().zip(&state.y).map(|(b, y)| b * y).sum();
                    let primal_obj = lp.objective(&state.x);
                    if (primal_obj - dual_obj).abs() / (1.0 + primal_obj.abs())
                        > self.options.accept_floor
                    {
                        status = LpStatus::NumericalFailure;
                    }
                }
                return (state.into_solution(lp, status, iter), trace, None);
            }
            let score = pr.max(dr).max(gap);
            if score < 0.95 * best_score {
                best_score = score;
                best_state = state.clone();
                best_iter = iter;
            } else if iter - best_iter >= self.options.stall_window {
                // Progress has hit the analog noise floor; classify by the
                // stall level (see LargeScaleOptions::infeasible_floor).
                // Acceptance still passes the §3.2 constraint check, at the
                // slack the floor implies (observed residual ≤ floor·scale
                // plus read-out noise ⇒ α = 1 + 2·floor).
                let alpha_stall = 1.0 + 2.0 * self.options.accept_floor;
                // Primal–dual objective agreement closes the loophole where
                // a feasible iterate with corrupted duals sails through the
                // residual score (cf. the Algorithm-2 gate).
                let dual_obj: f64 = lp.b().iter().zip(&best_state.y).map(|(b, y)| b * y).sum();
                let primal_obj = lp.objective(&best_state.x);
                let obj_gap = (primal_obj - dual_obj).abs() / (1.0 + primal_obj.abs());
                // Confirmed defects halve the acceptable primal–dual
                // disagreement: a dead line can leave a feasible but
                // markedly suboptimal iterate whose corrupted duals agree
                // just well enough for the stock gate.
                let gap_cap = if hw.saw_faults() {
                    self.options.accept_floor
                } else {
                    2.0 * self.options.accept_floor
                };
                let status = if best_score <= self.options.accept_floor {
                    if lp.satisfies_relaxed_scaled(&best_state.x, alpha_stall) && obj_gap <= gap_cap
                    {
                        LpStatus::Optimal
                    } else {
                        LpStatus::NumericalFailure
                    }
                } else if best_score >= self.options.infeasible_floor {
                    LpStatus::Infeasible
                } else {
                    LpStatus::NumericalFailure
                };
                return (best_state.into_solution(lp, status, iter), trace, None);
            }

            // (3) analog solve for the step directions. A singular realized
            // system ends the attempt; classify by the residual level (an
            // infeasible run drives the complementarity diagonals into a
            // structurally singular corner long before the iterates
            // formally diverge). A `CoreTooLarge` refusal is routed the
            // same way: under `Auto` it only surfaces when the sparse path
            // also broke down, which is the singular-corner signature.
            let Ok(aug) = system.solve(&r, hw) else {
                // Require a dozen iterations of history so a transient
                // early singularity on a feasible problem is retried
                // rather than misread as a certificate.
                let status = if iter >= 12 && best_score >= self.options.infeasible_floor {
                    LpStatus::Infeasible
                } else {
                    LpStatus::NumericalFailure
                };
                return (state.into_solution(lp, status, iter), trace, None);
            };

            // (4) damped update.
            let theta = state.step_length(&aug.dirs, opts.step_safety);
            if let Some(last) = trace.records.last_mut() {
                last.theta = theta;
            }
            state.apply_step(&aug.dirs, theta);
        }

        let status = match () {
            _ if ops::inf_norm(&state.y) > opts.divergence_bound => LpStatus::Infeasible,
            _ if ops::inf_norm(&state.x) > opts.divergence_bound => LpStatus::Unbounded,
            _ => LpStatus::IterationLimit,
        };
        (
            state.into_solution(lp, status, opts.max_iterations),
            trace,
            None,
        )
    }

    /// The §3.2 post-check: a "converged" solution that violates
    /// `A·x ⪯ α·b` is not trusted (process variation corrupted the
    /// constraints); report it as a numerical failure so the retry loop
    /// re-solves with fresh variation.
    fn final_status(&self, lp: &LpProblem, state: &PdipState) -> LpStatus {
        if lp.satisfies_relaxed_scaled(&state.x, self.options.alpha) {
            LpStatus::Optimal
        } else {
            LpStatus::NumericalFailure
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memlp_lp::generator::RandomLp;
    use memlp_solvers::{LpSolver, NormalEqPdip};

    fn solver(var_pct: f64, seed: u64) -> CrossbarPdipSolver {
        CrossbarPdipSolver::new(
            CrossbarConfig::paper_default()
                .with_variation(var_pct)
                .with_seed(seed),
            CrossbarSolverOptions::default(),
        )
    }

    #[test]
    fn solves_small_ideal() {
        let lp = RandomLp::paper(12, 1).feasible();
        let res = solver(0.0, 1).solve(&lp);
        assert_eq!(res.solution.status, LpStatus::Optimal, "{}", res.solution);
        let reference = NormalEqPdip::default().solve(&lp);
        let rel = (res.solution.objective - reference.objective).abs()
            / (1.0 + reference.objective.abs());
        assert!(rel < 0.02, "relative error {rel}");
    }

    #[test]
    fn solves_under_variation() {
        for var in [5.0, 10.0, 20.0] {
            let lp = RandomLp::paper(24, 2).feasible();
            let res = solver(var, 3).solve(&lp);
            assert_eq!(
                res.solution.status,
                LpStatus::Optimal,
                "var {var}%: {}",
                res.solution
            );
            let reference = NormalEqPdip::default().solve(&lp);
            let rel = (res.solution.objective - reference.objective).abs()
                / (1.0 + reference.objective.abs());
            assert!(rel < 0.15, "var {var}%: relative error {rel}");
        }
    }

    #[test]
    fn detects_infeasible() {
        for seed in [5, 6, 7] {
            let lp = RandomLp::paper(24, seed).infeasible();
            let res = solver(0.0, seed + 2).solve(&lp);
            assert_eq!(
                res.solution.status,
                LpStatus::Infeasible,
                "seed {seed}: {}",
                res.solution
            );
        }
    }

    #[test]
    fn ledger_reflects_the_papers_cost_structure() {
        let lp = RandomLp::paper(24, 4).feasible();
        let res = solver(0.0, 9).solve(&lp);
        let counts = res.ledger.counts();
        let n = lp.num_vars();
        let m = lp.num_constraints();
        let iters = res.solution.iterations as u64;
        // 2(n+m) diagonal updates per iteration: one at programming time
        // plus one per loop iteration (the update precedes the exit check).
        // Delta programming may skip pulses whose 8-bit code is unchanged;
        // written + skipped is the paper's wholesale total.
        assert_eq!(
            counts.update_writes + counts.skipped_writes,
            2 * (n + m) as u64 * (iters + 1)
        );
        // One MVM + one solve per iteration (allow the final iteration to
        // exit before its solve).
        assert!(counts.solve_ops >= iters.saturating_sub(1) && counts.solve_ops <= iters + 1);
        assert!(counts.mvm_ops >= counts.solve_ops);
        assert!(res.ledger.run_time_s() > 0.0);
        assert!(res.ledger.setup_time_s() > 0.0);
    }

    #[test]
    fn trace_records_convergence() {
        let lp = RandomLp::paper(12, 8).feasible();
        let res = solver(0.0, 11).solve(&lp);
        assert!(!res.trace.records.is_empty());
        let first_gap = res.trace.records.first().unwrap().gap;
        let last_gap = res.trace.records.last().unwrap().gap;
        assert!(
            last_gap < first_gap,
            "gap should shrink: {first_gap} → {last_gap}"
        );
    }

    #[test]
    fn retry_counter_reported() {
        let lp = RandomLp::paper(12, 13).feasible();
        let res = solver(0.0, 17).solve(&lp);
        assert_eq!(
            res.retries_used, 0,
            "ideal hardware should not need retries"
        );
    }

    #[test]
    fn budget_degrades_with_best_iterate() {
        use memlp_solvers::{Budget, BudgetCause, IterationDeadline};
        let lp = RandomLp::paper(24, 2).feasible();
        let s = solver(0.0, 3);
        let full = s.solve(&lp);
        assert!(full.degraded.is_none());
        // A tiny iteration cap degrades instead of hanging or failing: the
        // best iterate so far comes back under IterationLimit.
        let capped = s.solve_budgeted(&lp, Budget::none().with_max_iters(3));
        assert_eq!(capped.degraded, Some(BudgetCause::MaxIters));
        assert_eq!(capped.solution.status, LpStatus::IterationLimit);
        assert_eq!(capped.solution.x.len(), lp.num_vars());
        assert!(capped.solution.iterations <= 3);
        // A deterministic deadline reports its own cause.
        let dl = IterationDeadline::new(5);
        let timed = s.solve_budgeted(&lp, Budget::none().with_deadline(&dl));
        assert_eq!(timed.degraded, Some(BudgetCause::DeadlineExceeded));
        // An ample budget is bitwise identical to the unbudgeted solve.
        let ample = s.solve_budgeted(&lp, Budget::none().with_max_iters(100_000));
        assert!(ample.degraded.is_none());
        assert_eq!(ample.solution.status, full.solution.status);
        assert_eq!(ample.solution.x, full.solution.x);
        assert_eq!(ample.solution.objective, full.solution.objective);
    }

    #[test]
    fn solve_on_reuses_warm_context_and_state() {
        use memlp_solvers::Budget;
        let lp = RandomLp::paper(16, 5).feasible();
        let s = solver(5.0, 7);
        let mut hw = HwContext::new(*s.config());
        let cold = s.solve_on(&lp, &mut hw, Budget::none(), None, 0);
        assert_eq!(cold.solution.status, LpStatus::Optimal, "{}", cold.solution);
        let after_cold = cold.ledger.counts();
        // Same problem family on the same warm context: the delta-write
        // cache short-circuits repeated cell programming, and the previous
        // solution warm-starts the interior-point iteration.
        let warm = s.solve_on(
            &lp,
            &mut hw,
            Budget::none(),
            Some((&cold.solution.x, &cold.solution.y)),
            1,
        );
        assert_eq!(warm.solution.status, LpStatus::Optimal, "{}", warm.solution);
        let after_warm = warm.ledger.counts();
        assert!(
            after_warm.skipped_writes > after_cold.skipped_writes,
            "warm repeat must skip unchanged cells: {} -> {}",
            after_cold.skipped_writes,
            after_warm.skipped_writes
        );
        let rel = (warm.solution.objective - cold.solution.objective).abs()
            / (1.0 + cold.solution.objective.abs());
        assert!(rel < 0.05, "warm objective drifted: {rel}");
    }

    #[test]
    fn batch_surfaces_per_item_errors() {
        use memlp_lp::domains::{assignment_lp, AssignmentProblem};
        use memlp_solvers::pdip::SolvePath;
        let good = RandomLp::paper(12, 1).feasible();
        let big = assignment_lp(&AssignmentProblem::random(128, 7)).expect("valid instance");
        let opts = CrossbarSolverOptions {
            pdip: PdipOptions {
                path: SolvePath::Dense,
                ..CrossbarSolverOptions::default().pdip
            },
            ..CrossbarSolverOptions::default()
        };
        let s = CrossbarPdipSolver::new(CrossbarConfig::paper_default().with_seed(3), opts);
        // The poisoned middle item errors in its own slot; siblings solve.
        let out = s.solve_batch(&[good.clone(), big, good], 2);
        assert_eq!(out.len(), 3);
        assert!(matches!(out[1], Err(CoreSolveError::CoreTooLarge { .. })));
        for i in [0usize, 2] {
            let res = out[i].as_ref().expect("sibling must still solve");
            assert_eq!(res.solution.status, LpStatus::Optimal, "item {i}");
        }
    }

    #[test]
    fn nonnegative_problem_needs_no_compensation() {
        let g = memlp_lp::generator::RandomLp {
            neg_fraction: 0.0,
            ..memlp_lp::generator::RandomLp::paper(12, 19)
        };
        let lp = g.feasible();
        let res = solver(0.0, 21).solve(&lp);
        assert_eq!(res.solution.status, LpStatus::Optimal);
    }
}
