//! Tile occupancy: which `tile_side × tile_side` blocks of a **planned**
//! operand hold any nonzero coefficient.
//!
//! The index is the contract between the mapping layer and the NoC
//! scheduler (DESIGN.md §18): an all-zero block needs no physical array —
//! no fabrication, no programming pulses, no fault plan, no spare lines —
//! and its MVM contribution is an exact zero that never rides the fabric.
//! The index is always built from *planned* (target) coefficients, never
//! from analog read-backs: occupancy gates scheduling and indexing, and
//! letting a variation- or fault-corrupted readout decide which tiles
//! exist would make hardware noise load-bearing (the taint::analog-exact
//! regime memlp-lint enforces).
//!
//! Elided is not faulted: a dead tile has *no* hardware, so fault plans,
//! transient upsets, spare-line remaps and delta-write code caches never
//! target it. A refresh that makes a dead tile live performs a real first
//! program (setup-phase pulses, fresh per-tile variation stream).

use memlp_linalg::Matrix;

/// Occupancy bitmap for one operand plane tiled at `tile_side`.
///
/// Sign-split planes (`A′`/`A″`) carry independent indices: a tile can be
/// live in one plane and elided in the other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileOccupancy {
    rows: usize,
    cols: usize,
    tile_side: usize,
    row_blocks: usize,
    col_blocks: usize,
    live: Vec<bool>, // row-major [bi * col_blocks + bj]
}

impl TileOccupancy {
    /// Scans `matrix` (planned coefficients) and records which tiles hold
    /// at least one nonzero. A `tile_side` of zero is clamped to one.
    pub fn from_matrix(matrix: &Matrix, tile_side: usize) -> Self {
        let tile_side = tile_side.max(1);
        let rows = matrix.rows();
        let cols = matrix.cols();
        let row_blocks = rows.div_ceil(tile_side);
        let col_blocks = cols.div_ceil(tile_side);
        let mut live = vec![false; row_blocks * col_blocks];
        for i in 0..rows {
            let base = (i / tile_side) * col_blocks;
            let row = matrix.row(i);
            for (j, v) in row.iter().enumerate() {
                if *v != 0.0 {
                    live[base + j / tile_side] = true;
                }
            }
        }
        TileOccupancy {
            rows,
            cols,
            tile_side,
            row_blocks,
            col_blocks,
            live,
        }
    }

    /// Logical operand dimensions `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Tile side the operand was partitioned at.
    pub fn tile_side(&self) -> usize {
        self.tile_side
    }

    /// Number of tile rows.
    pub fn row_blocks(&self) -> usize {
        self.row_blocks
    }

    /// Number of tile columns.
    pub fn col_blocks(&self) -> usize {
        self.col_blocks
    }

    /// Total grid positions (fabric geometry, live or not). Hop distances
    /// and buffer-noise gating depend on this, not on how many positions
    /// are populated.
    pub fn grid_tiles(&self) -> usize {
        self.row_blocks * self.col_blocks
    }

    /// Number of live (fabricated) tiles.
    pub fn live_tiles(&self) -> usize {
        self.live.iter().filter(|l| **l).count()
    }

    /// Number of elided tiles.
    pub fn dead_tiles(&self) -> usize {
        self.grid_tiles() - self.live_tiles()
    }

    /// Whether tile `(bi, bj)` is live. Out-of-range positions are dead.
    pub fn is_live(&self, bi: usize, bj: usize) -> bool {
        bi < self.row_blocks && bj < self.col_blocks && self.live[bi * self.col_blocks + bj]
    }

    /// Marks tile `(bi, bj)` live (a refresh wrote a nonzero into it).
    /// Out-of-range positions are ignored.
    pub fn mark_live(&mut self, bi: usize, bj: usize) {
        if bi < self.row_blocks && bj < self.col_blocks {
            self.live[bi * self.col_blocks + bj] = true;
        }
    }

    /// Logical dimensions `(nr, nc)` of tile `(bi, bj)` (edge tiles are
    /// clipped to the operand).
    pub fn tile_dims(&self, bi: usize, bj: usize) -> (usize, usize) {
        let nr = self
            .tile_side
            .min(self.rows.saturating_sub(bi * self.tile_side));
        let nc = self
            .tile_side
            .min(self.cols.saturating_sub(bj * self.tile_side));
        (nr, nc)
    }

    /// Cells covered by live tiles (respecting edge clipping).
    pub fn live_cells(&self) -> u64 {
        self.iter_live()
            .map(|(bi, bj)| {
                let (nr, nc) = self.tile_dims(bi, bj);
                (nr * nc) as u64
            })
            .sum()
    }

    /// Cells covered by elided tiles — the writes the fabric never spends.
    pub fn dead_cells(&self) -> u64 {
        let total = (self.rows * self.cols) as u64;
        total - self.live_cells()
    }

    /// Iterates live tile coordinates in fixed `(bi, bj)` row-major order —
    /// the same serial order the NoC accumulation replays, so elided
    /// scheduling stays bitwise thread-invariant.
    pub fn iter_live(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let cb = self.col_blocks;
        self.live
            .iter()
            .enumerate()
            .filter(|(_, l)| **l)
            .map(move |(idx, _)| (idx / cb, idx % cb))
    }

    /// FNV-1a fingerprint of the occupancy *shape* (dims, tile side, and
    /// the live bitmap). Two operands share a fingerprint exactly when an
    /// array fabricated for one has hardware wherever the other needs it —
    /// the key the serve-layer warm pools reuse elided layouts under.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        eat(self.rows as u64);
        eat(self.cols as u64);
        eat(self.tile_side as u64);
        // Pack the bitmap 64 tiles per word.
        let mut word = 0u64;
        for (idx, l) in self.live.iter().enumerate() {
            if *l {
                word |= 1 << (idx % 64);
            }
            if idx % 64 == 63 {
                eat(word);
                word = 0;
            }
        }
        if !self.live.is_empty() && !self.live.len().is_multiple_of(64) {
            eat(word);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_sparse() -> Matrix {
        // 6×6 at tile side 3: only the (0,0) and (1,1) blocks are live.
        Matrix::from_fn(6, 6, |i, j| {
            if (i < 3 && j < 3) || (i >= 3 && j >= 3) {
                1.0 + (i + j) as f64
            } else {
                0.0
            }
        })
    }

    #[test]
    fn scans_live_and_dead_tiles() {
        let occ = TileOccupancy::from_matrix(&block_sparse(), 3);
        assert_eq!(occ.grid_tiles(), 4);
        assert_eq!(occ.live_tiles(), 2);
        assert_eq!(occ.dead_tiles(), 2);
        assert!(occ.is_live(0, 0));
        assert!(!occ.is_live(0, 1));
        assert!(!occ.is_live(1, 0));
        assert!(occ.is_live(1, 1));
        assert_eq!(occ.live_cells(), 18);
        assert_eq!(occ.dead_cells(), 18);
    }

    #[test]
    fn edge_tiles_are_clipped() {
        let a = Matrix::from_fn(5, 7, |_, _| 1.0);
        let occ = TileOccupancy::from_matrix(&a, 3);
        assert_eq!((occ.row_blocks(), occ.col_blocks()), (2, 3));
        assert_eq!(occ.tile_dims(1, 2), (2, 1));
        assert_eq!(occ.live_cells(), 35);
        assert_eq!(occ.dead_cells(), 0);
    }

    #[test]
    fn iter_live_is_row_major() {
        let occ = TileOccupancy::from_matrix(&block_sparse(), 3);
        let order: Vec<_> = occ.iter_live().collect();
        assert_eq!(order, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn mark_live_updates_the_index() {
        let mut occ = TileOccupancy::from_matrix(&block_sparse(), 3);
        assert!(!occ.is_live(0, 1));
        occ.mark_live(0, 1);
        assert!(occ.is_live(0, 1));
        assert_eq!(occ.live_tiles(), 3);
        occ.mark_live(9, 9); // out of range: ignored
        assert_eq!(occ.live_tiles(), 3);
    }

    #[test]
    fn fingerprint_tracks_shape_not_values() {
        let a = block_sparse();
        let b = a.map(|v| v * 3.5); // same nonzero pattern
        let occ_a = TileOccupancy::from_matrix(&a, 3);
        let occ_b = TileOccupancy::from_matrix(&b, 3);
        assert_eq!(occ_a.fingerprint(), occ_b.fingerprint());

        let dense = Matrix::from_fn(6, 6, |_, _| 1.0);
        let occ_d = TileOccupancy::from_matrix(&dense, 3);
        assert_ne!(occ_a.fingerprint(), occ_d.fingerprint());

        // Different tile side → different layout even for the same matrix.
        let occ_a2 = TileOccupancy::from_matrix(&a, 2);
        assert_ne!(occ_a.fingerprint(), occ_a2.fingerprint());
    }

    #[test]
    fn zero_tile_side_is_clamped() {
        let occ = TileOccupancy::from_matrix(&block_sparse(), 0);
        assert_eq!(occ.tile_side(), 1);
        assert_eq!(occ.grid_tiles(), 36);
    }

    #[test]
    fn out_of_range_is_dead() {
        let occ = TileOccupancy::from_matrix(&block_sparse(), 3);
        assert!(!occ.is_live(2, 0));
        assert!(!occ.is_live(0, 2));
    }
}
