//! Logical-value ↔ conductance mapping.
//!
//! Following Hu et al. \[8\] (the mapping the paper adopts in §2.3), a
//! non-negative logical coefficient `a ∈ [0, a_max]` is stored as the
//! conductance
//!
//! ```text
//! g(a) = g_off + (a / a_max) · (g_on − g_off)
//! ```
//!
//! so the largest coefficient maps to the most conductive state and zero
//! maps to the off state. The map is affine, which is why a zero logical
//! coefficient still leaks `g_off` of conductance in circuit-fidelity
//! simulations — the `g_off` common-mode term that calibrated read-out
//! subtracts digitally.

use memlp_device::DeviceParams;

/// An affine logical↔conductance map for a fixed scale `a_max`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConductanceMap {
    a_max: f64,
    g_on: f64,
    g_off: f64,
}

impl ConductanceMap {
    /// Creates the map for coefficients in `[0, a_max]` on the given device.
    ///
    /// # Panics
    ///
    /// Panics if `a_max` is not strictly positive and finite.
    pub fn new(a_max: f64, device: &DeviceParams) -> Self {
        assert!(
            a_max.is_finite() && a_max > 0.0,
            "a_max must be positive and finite, got {a_max}"
        );
        ConductanceMap {
            a_max,
            g_on: device.g_on(),
            g_off: device.g_off(),
        }
    }

    /// The full-scale logical value.
    pub fn a_max(&self) -> f64 {
        self.a_max
    }

    /// Conductance per unit logical value.
    pub fn slope(&self) -> f64 {
        (self.g_on - self.g_off) / self.a_max
    }

    /// The off conductance (logical zero).
    pub fn g_off(&self) -> f64 {
        self.g_off
    }

    /// Maps a logical value to a conductance, clamping to the physical
    /// range (values above `a_max` saturate — the §2.3 constraint that the
    /// crossbar stores only what its dynamic range allows).
    pub fn to_conductance(&self, a: f64) -> f64 {
        let a = a.clamp(0.0, self.a_max);
        self.g_off + a * self.slope()
    }

    /// Inverse map: recovers the logical value a conductance represents.
    pub fn to_logical(&self, g: f64) -> f64 {
        ((g - self.g_off) / self.slope()).clamp(0.0, self.a_max)
    }
}

/// Spare-line remapping table for one physical array.
///
/// Crossbar arrays are fabricated with a few redundant word/bit lines; when
/// post-programming verify finds a dead line, the controller reroutes the
/// logical line onto a spare by reprogramming the spare with the logical
/// line's coefficients and updating the row/column decoder. This type
/// models the decoder table: which logical lines have been relocated and
/// how many spares remain.
///
/// Remapping is a pure *permutation of physical lines* — the logical matrix
/// the array realizes is unchanged, every relocated coefficient is the same
/// non-negative value it was, and zero entries stay zero. The Eqn 13–14
/// sign-split block structure (`A⁺`/`A⁻` occupying fixed non-negative
/// blocks of the augmented array) is therefore preserved by construction:
/// the blocks are defined over *logical* coordinates, which a decoder-level
/// remap never touches.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LineRemap {
    spare_rows: usize,
    spare_cols: usize,
    /// Logical rows relocated onto spares, in remap order.
    rows: Vec<usize>,
    /// Logical columns relocated onto spares, in remap order.
    cols: Vec<usize>,
}

impl LineRemap {
    /// A remap table with the given spare budget per side.
    pub fn new(spare_rows: usize, spare_cols: usize) -> Self {
        LineRemap {
            spare_rows,
            spare_cols,
            rows: Vec::new(),
            cols: Vec::new(),
        }
    }

    /// Relocates logical row `row` onto the next spare word line. Returns
    /// `false` (and changes nothing) when the spare budget is exhausted or
    /// the row is already remapped.
    pub fn remap_row(&mut self, row: usize) -> bool {
        if self.rows.len() >= self.spare_rows || self.rows.contains(&row) {
            return false;
        }
        self.rows.push(row);
        true
    }

    /// Relocates logical column `col` onto the next spare bit line. Returns
    /// `false` when out of spares or already remapped.
    pub fn remap_col(&mut self, col: usize) -> bool {
        if self.cols.len() >= self.spare_cols || self.cols.contains(&col) {
            return false;
        }
        self.cols.push(col);
        true
    }

    /// Logical rows currently served by spare lines, in remap order.
    pub fn remapped_rows(&self) -> &[usize] {
        &self.rows
    }

    /// Logical columns currently served by spare lines, in remap order.
    pub fn remapped_cols(&self) -> &[usize] {
        &self.cols
    }

    /// Spare word lines still available.
    pub fn spare_rows_left(&self) -> usize {
        self.spare_rows - self.rows.len()
    }

    /// Spare bit lines still available.
    pub fn spare_cols_left(&self) -> usize {
        self.spare_cols - self.cols.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> ConductanceMap {
        ConductanceMap::new(10.0, &DeviceParams::default())
    }

    #[test]
    fn endpoints_map_to_rails() {
        let m = map();
        let d = DeviceParams::default();
        assert!((m.to_conductance(0.0) - d.g_off()).abs() < 1e-15);
        assert!((m.to_conductance(10.0) - d.g_on()).abs() < 1e-15);
    }

    #[test]
    fn roundtrip_is_identity_in_range() {
        let m = map();
        for &a in &[0.0, 0.1, 3.7, 9.99, 10.0] {
            let back = m.to_logical(m.to_conductance(a));
            assert!((back - a).abs() < 1e-10, "a={a}, back={back}");
        }
    }

    #[test]
    fn saturates_out_of_range() {
        let m = map();
        assert_eq!(m.to_conductance(20.0), m.to_conductance(10.0));
        assert_eq!(m.to_conductance(-5.0), m.to_conductance(0.0));
    }

    #[test]
    fn map_is_monotone() {
        let m = map();
        let mut prev = m.to_conductance(0.0);
        for k in 1..=100 {
            let g = m.to_conductance(k as f64 * 0.1);
            assert!(g >= prev);
            prev = g;
        }
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero_amax() {
        ConductanceMap::new(0.0, &DeviceParams::default());
    }

    #[test]
    fn remap_respects_spare_budget() {
        let mut r = LineRemap::new(2, 1);
        assert!(r.remap_row(5));
        assert!(!r.remap_row(5), "double-remapping the same row");
        assert!(r.remap_row(9));
        assert!(!r.remap_row(11), "spare rows exhausted");
        assert_eq!(r.remapped_rows(), &[5, 9]);
        assert_eq!(r.spare_rows_left(), 0);
        assert!(r.remap_col(0));
        assert!(!r.remap_col(3), "spare cols exhausted");
        assert_eq!(r.spare_cols_left(), 0);
    }

    #[test]
    fn fresh_remap_has_full_budget() {
        let r = LineRemap::new(3, 2);
        assert_eq!(r.spare_rows_left(), 3);
        assert_eq!(r.spare_cols_left(), 2);
        assert!(r.remapped_rows().is_empty());
        assert!(r.remapped_cols().is_empty());
    }
}
