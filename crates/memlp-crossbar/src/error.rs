use std::error::Error;
use std::fmt;

use memlp_linalg::LinalgError;

/// Errors produced by the crossbar simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum CrossbarError {
    /// The requested matrix does not fit the array (or violates the
    /// configured maximum array size, §3.4).
    SizeExceeded {
        /// Rows/columns requested.
        requested: usize,
        /// Physical array side length.
        capacity: usize,
    },
    /// A matrix with negative coefficients was programmed; memristances are
    /// non-negative (§2.3), so the caller must run the §3.2 transform first.
    NegativeCoefficient {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// Operand shapes do not match the programmed array.
    ShapeMismatch {
        /// Description of what was expected.
        expected: String,
        /// Description of what was found.
        found: String,
    },
    /// The underlying linear algebra failed (e.g. the realized matrix went
    /// singular under variation — the §4.3 failure mode).
    Linalg(LinalgError),
    /// No matrix has been programmed yet.
    NotProgrammed,
    /// A fault model failed validation (rate outside `[0, 1]`, non-finite,
    /// or stuck rates summing past 1 — which would bias every draw).
    InvalidFaultModel {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for CrossbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossbarError::SizeExceeded { requested, capacity } => {
                write!(f, "matrix of side {requested} exceeds crossbar capacity {capacity}")
            }
            CrossbarError::NegativeCoefficient { row, col, value } => write!(
                f,
                "negative coefficient {value} at ({row}, {col}); memristor conductances are non-negative"
            ),
            CrossbarError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            CrossbarError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            CrossbarError::NotProgrammed => write!(f, "no matrix programmed into the crossbar"),
            CrossbarError::InvalidFaultModel { reason } => {
                write!(f, "invalid fault model: {reason}")
            }
        }
    }
}

impl Error for CrossbarError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CrossbarError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for CrossbarError {
    fn from(e: LinalgError) -> Self {
        CrossbarError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CrossbarError::SizeExceeded {
            requested: 600,
            capacity: 512,
        };
        assert!(e.to_string().contains("600"));
        let e = CrossbarError::NegativeCoefficient {
            row: 1,
            col: 2,
            value: -0.5,
        };
        assert!(e.to_string().contains("-0.5"));
        let e = CrossbarError::NotProgrammed;
        assert!(!e.to_string().is_empty());
        let e = CrossbarError::InvalidFaultModel {
            reason: "rates sum to 1.3".into(),
        };
        assert!(e.to_string().contains("1.3"));
    }

    #[test]
    fn wraps_linalg_errors() {
        let e: CrossbarError = LinalgError::Singular { column: 0 }.into();
        assert!(matches!(e, CrossbarError::Linalg(_)));
        assert!(Error::source(&e).is_some());
    }
}
