use memlp_device::FaultMap;
use memlp_linalg::{LuFactors, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{CrossbarConfig, Fidelity, ReadoutMode};
use crate::cost::{CostLedger, Phase};
use crate::error::CrossbarError;
use crate::fault::{FaultKind, FaultPlan};
use crate::mapping::{ConductanceMap, LineRemap};
use crate::quantize::{Quantizer, WriteQuantizer};

/// Salt separating the fault-plan seed stream from the variation stream:
/// hard defects are a property of the physical array, drawn once, and must
/// not move when variation is redrawn.
const FAULT_PLAN_SALT: u64 = 0x0FA0_17ED_5EED_A001;

/// Salt for the transient-upset stream (independent of variation so a
/// fault-free configuration replays bit-identical variation draws).
const TRANSIENT_SALT: u64 = 0x0FA0_17ED_5EED_A002;

/// A simulated memristor crossbar array.
///
/// The array is created with a physical side length; a (non-negative)
/// logical matrix of any shape that fits can then be programmed into it.
/// Analog operations run against the **realized** matrix — what the cells
/// actually store after conductance mapping, per-write process variation
/// (Eqn 18) and faults — with DAC-quantized inputs and ADC-quantized
/// outputs. Every operation charges the [`CostLedger`].
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Crossbar {
    config: CrossbarConfig,
    side: usize,
    /// Logical target most recently programmed.
    target: Option<Matrix>,
    /// Realized logical matrix (functional fidelity semantics). At circuit
    /// fidelity this holds the *pre-parasitic* realized values; parasitics
    /// are added from `gmat` during operations.
    realized: Option<Matrix>,
    /// Realized conductance matrix (only materialized at circuit fidelity).
    gmat: Option<Matrix>,
    map: Option<ConductanceMap>,
    /// Conductance codes most recently programmed (row-major over the
    /// logical target), kept for [`Crossbar::program_delta`]. Coherent with
    /// the cells because every write path updates it in place.
    codes: Option<Vec<u64>>,
    adc: Quantizer,
    dac: Quantizer,
    /// Write-precision quantizer (`config.write_bits` significant bits).
    wq: WriteQuantizer,
    rng: StdRng,
    /// Independent stream for transient ADC upsets.
    transient_rng: StdRng,
    /// Hard defects of this physical array (stuck cells, dead lines),
    /// drawn once at creation and persistent across re-programming.
    plan: FaultPlan,
    /// Spare-line decoder table (populated by [`Crossbar::remap_dead_lines`]).
    remap: LineRemap,
    ledger: CostLedger,
    /// Cached total conductance, S (settle-energy estimate).
    g_total: f64,
}

impl Crossbar {
    /// Creates an unprogrammed array of side `side`.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::SizeExceeded`] if `side` exceeds
    /// `config.max_size`.
    pub fn new(side: usize, config: CrossbarConfig) -> Result<Self, CrossbarError> {
        if side > config.max_size {
            return Err(CrossbarError::SizeExceeded {
                requested: side,
                capacity: config.max_size,
            });
        }
        Ok(Crossbar {
            side,
            adc: Quantizer::new(config.adc_bits),
            dac: Quantizer::new(config.dac_bits),
            wq: WriteQuantizer::new(config.write_bits),
            rng: StdRng::seed_from_u64(config.seed),
            transient_rng: StdRng::seed_from_u64(config.seed ^ TRANSIENT_SALT),
            plan: FaultPlan::draw(&config.faults, side, side, config.seed ^ FAULT_PLAN_SALT),
            remap: LineRemap::new(config.spare_lines, config.spare_lines),
            ledger: CostLedger::new(),
            target: None,
            realized: None,
            gmat: None,
            map: None,
            codes: None,
            g_total: 0.0,
            config,
        })
    }

    /// Physical side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// The active configuration.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// The cost ledger accumulated so far.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Resets the cost ledger (e.g. between benchmark trials).
    pub fn reset_ledger(&mut self) {
        self.ledger.reset();
    }

    /// Programs a non-negative logical matrix into the array (setup phase),
    /// using the matrix's own largest entry as the full-scale value.
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::SizeExceeded`] if the matrix does not fit,
    /// * [`CrossbarError::NegativeCoefficient`] if any entry is negative.
    pub fn program(&mut self, matrix: &Matrix) -> Result<(), CrossbarError> {
        let a_max = matrix.max_abs().max(f64::MIN_POSITIVE);
        self.program_with_scale(matrix, a_max)
    }

    /// Programs with an explicit full-scale value `a_max`, leaving headroom
    /// for later in-place updates that may exceed the initial maximum.
    ///
    /// # Errors
    ///
    /// Same as [`Crossbar::program`]; values above `a_max` saturate rather
    /// than erroring (that is what the hardware would store).
    pub fn program_with_scale(&mut self, matrix: &Matrix, a_max: f64) -> Result<(), CrossbarError> {
        self.check_fits(matrix.rows(), matrix.cols())?;
        self.check_nonnegative(matrix)?;
        let map = ConductanceMap::new(a_max, &self.config.device);

        let mut realized = Matrix::zeros(matrix.rows(), matrix.cols());
        let mut codes = vec![0u64; matrix.rows() * matrix.cols()];
        let mut gmat = if self.config.fidelity == Fidelity::Circuit {
            Some(Matrix::zeros(matrix.rows(), matrix.cols()))
        } else {
            None
        };
        for i in 0..matrix.rows() {
            for j in 0..matrix.cols() {
                let (logical, g) = self.write_cell(&map, i, j, matrix[(i, j)]);
                codes[i * matrix.cols() + j] = self.wq.code(matrix[(i, j)]);
                realized[(i, j)] = logical;
                if let Some(gm) = gmat.as_mut() {
                    gm[(i, j)] = g;
                }
            }
        }
        self.ledger.charge_writes(
            &self.config.cost,
            Phase::Setup,
            (matrix.rows() * matrix.cols()) as u64,
            self.config.variation.max_fraction,
        );
        self.g_total = match &gmat {
            Some(gm) => gm.as_slice().iter().sum(),
            None => {
                map.g_off() * (matrix.rows() * matrix.cols()) as f64
                    + map.slope() * realized.as_slice().iter().sum::<f64>()
            }
        };
        self.target = Some(matrix.clone());
        self.realized = Some(realized);
        self.gmat = gmat;
        self.map = Some(map);
        self.codes = Some(codes);
        Ok(())
    }

    /// Re-programs a matrix of the **same shape** as the current target,
    /// pulsing only cells whose `config.write_bits`-bit conductance code
    /// changed (run phase). Unchanged cells charge neither time nor energy;
    /// the skip count lands in the ledger's `skipped_writes`. Every healthy
    /// cell still resolves through the write-verify pass (one variation
    /// draw each), so fault-free arrays are bitwise identical whether delta
    /// programming is on or off — only the write counts differ. The
    /// full-scale value of the original [`Crossbar::program_with_scale`]
    /// call is retained.
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::NotProgrammed`] before the first program,
    /// * [`CrossbarError::ShapeMismatch`] if the shape differs from the
    ///   programmed target,
    /// * [`CrossbarError::NegativeCoefficient`] if any entry is negative.
    pub fn program_delta(&mut self, matrix: &Matrix) -> Result<(), CrossbarError> {
        let map = self.map.ok_or(CrossbarError::NotProgrammed)?;
        {
            let target = self.target.as_ref().ok_or(CrossbarError::NotProgrammed)?;
            if matrix.rows() != target.rows() || matrix.cols() != target.cols() {
                return Err(CrossbarError::ShapeMismatch {
                    expected: format!("{}x{} delta target", target.rows(), target.cols()),
                    found: format!("{}x{}", matrix.rows(), matrix.cols()),
                });
            }
        }
        self.check_nonnegative(matrix)?;
        if !self.config.delta_writes || self.codes.is_none() {
            // Delta programming off (or cache never built): behave as a
            // wholesale run-phase rewrite of every cell.
            let updates: Vec<(usize, usize, f64)> = (0..matrix.rows())
                .flat_map(|i| (0..matrix.cols()).map(move |j| (i, j, matrix[(i, j)])))
                .collect();
            return self.update_cells(&updates);
        }
        let cols = matrix.cols();
        let mut written = 0u64;
        let mut skipped = 0u64;
        for i in 0..matrix.rows() {
            for j in 0..cols {
                let v = matrix[(i, j)];
                let code = self.wq.code(v);
                let unchanged = self.codes.as_ref().is_some_and(|c| c[i * cols + j] == code);
                // The cell state resolves through the same verify pass
                // either way — the verify read draws its deviate whether or
                // not a pulse fires — so a skip changes only the pulse
                // accounting, never the realized values.
                let (logical, g) = self.write_cell(&map, i, j, v);
                if let Some(r) = self.realized.as_mut() {
                    r[(i, j)] = logical;
                }
                if let Some(gm) = self.gmat.as_mut() {
                    gm[(i, j)] = g;
                }
                if let Some(c) = self.codes.as_mut() {
                    c[i * cols + j] = code;
                }
                if unchanged && self.plan.fault_at(i, j) == FaultKind::Healthy {
                    skipped += 1;
                } else {
                    written += 1;
                }
                if let Some(t) = self.target.as_mut() {
                    t[(i, j)] = v;
                }
            }
        }
        self.refresh_g_total(&map)?;
        self.ledger.charge_writes(
            &self.config.cost,
            Phase::Run,
            written,
            self.config.variation.max_fraction,
        );
        self.ledger.note_skipped_writes(skipped);
        Ok(())
    }

    /// Rewrites individual cells during the run phase (the paper's O(N)
    /// per-iteration coefficient updates). Each write redraws its process
    /// variation.
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::NotProgrammed`] if no matrix is programmed,
    /// * [`CrossbarError::ShapeMismatch`] if an index is out of range,
    /// * [`CrossbarError::NegativeCoefficient`] for negative values.
    pub fn update_cells(&mut self, updates: &[(usize, usize, f64)]) -> Result<(), CrossbarError> {
        let map = self.map.ok_or(CrossbarError::NotProgrammed)?;
        // Validate everything before mutating.
        {
            let target = self.target.as_ref().ok_or(CrossbarError::NotProgrammed)?;
            for &(i, j, v) in updates {
                if i >= target.rows() || j >= target.cols() {
                    return Err(CrossbarError::ShapeMismatch {
                        expected: format!("indices within {}x{}", target.rows(), target.cols()),
                        found: format!("({i}, {j})"),
                    });
                }
                if v < 0.0 {
                    return Err(CrossbarError::NegativeCoefficient {
                        row: i,
                        col: j,
                        value: v,
                    });
                }
            }
        }
        let cols = self.target.as_ref().map_or(0, |t| t.cols());
        for &(i, j, v) in updates {
            let (logical, g) = self.write_cell(&map, i, j, v);
            if let Some(t) = self.target.as_mut() {
                t[(i, j)] = v;
            }
            if let Some(r) = self.realized.as_mut() {
                r[(i, j)] = logical;
            }
            if let Some(gm) = self.gmat.as_mut() {
                gm[(i, j)] = g;
            }
            if let Some(c) = self.codes.as_mut() {
                c[i * cols + j] = self.wq.code(v);
            }
        }
        // Refresh the cached conductance total (cheap relative to a solve).
        self.refresh_g_total(&map)?;
        self.ledger.charge_writes(
            &self.config.cost,
            Phase::Run,
            updates.len() as u64,
            self.config.variation.max_fraction,
        );
        Ok(())
    }

    /// The realized logical matrix (what the analog array actually
    /// represents after variation/faults; functional-fidelity semantics).
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::NotProgrammed`] before the first program.
    pub fn realized(&self) -> Result<&Matrix, CrossbarError> {
        self.realized.as_ref().ok_or(CrossbarError::NotProgrammed)
    }

    /// The hard-defect plan of this physical array.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The spare-line decoder table.
    pub fn remap_table(&self) -> &LineRemap {
        &self.remap
    }

    /// Write–verify pass: reads the array back and reports every cell whose
    /// realized value falls outside the variation band around its target as
    /// a fault-map entry. A dead line fails verify on every cell, so
    /// detection of dead lines is exact.
    ///
    /// # Errors
    ///
    /// Returns [`CrossbarError::NotProgrammed`] before the first program.
    pub fn verify(&self) -> Result<FaultMap, CrossbarError> {
        let target = self.target.as_ref().ok_or(CrossbarError::NotProgrammed)?;
        let realized = self.realized.as_ref().ok_or(CrossbarError::NotProgrammed)?;
        let map = self.map.ok_or(CrossbarError::NotProgrammed)?;
        // Anything outside the per-write variation band — widened by the
        // write-code rounding step, since cells store quantized targets —
        // plus a floor for small values cannot be explained by Eqn 18
        // variation and is flagged as a defect.
        let var = self.config.variation.max_fraction;
        let rel_band = var + self.wq.rel_step() * (1.0 + var) + 1e-9;
        let abs_floor = 1e-9 * map.a_max();
        Ok(FaultMap::detect(
            target.rows(),
            target.cols(),
            target.as_slice(),
            realized.as_slice(),
            rel_band,
            abs_floor,
        ))
    }

    /// Re-programs every *weak* stuck cell with an extended pulse budget
    /// (the first recovery rung): weak faults clear and their cells are
    /// rewritten from the logical target with fresh variation. Returns the
    /// number of cells repaired. Charges run-phase writes.
    pub fn repair_weak_cells(&mut self) -> usize {
        let weak: Vec<(usize, usize)> = self
            .plan
            .cells()
            .iter()
            .filter(|c| c.weak)
            .map(|c| (c.row, c.col))
            .collect();
        if weak.is_empty() {
            return 0;
        }
        let repaired = self.plan.repair_weak();
        self.rewrite_cells_from_target(&weak);
        repaired
    }

    /// Relocates logical lines off dead physical lines onto spares (the
    /// second recovery rung), rewriting the relocated coefficients from the
    /// logical target. Returns `(rows_remapped, cols_remapped, unmapped)`
    /// where `unmapped` counts dead lines left over after the spare budget
    /// ran out. Charges run-phase writes for the relocated cells.
    pub fn remap_dead_lines(&mut self) -> (usize, usize, usize) {
        let dead_rows: Vec<usize> = self.plan.dead_rows().to_vec();
        let dead_cols: Vec<usize> = self.plan.dead_cols().to_vec();
        let mut rows_done = 0;
        let mut cols_done = 0;
        let mut rewrite: Vec<(usize, usize)> = Vec::new();
        let (trows, tcols) = match self.target.as_ref() {
            Some(t) => (t.rows(), t.cols()),
            None => (self.side, self.side),
        };
        for &r in &dead_rows {
            if self.remap.remap_row(r) {
                self.plan.revive_row(r);
                rows_done += 1;
                if r < trows {
                    rewrite.extend((0..tcols).map(|j| (r, j)));
                }
            }
        }
        for &c in &dead_cols {
            if self.remap.remap_col(c) {
                self.plan.revive_col(c);
                cols_done += 1;
                if c < tcols {
                    rewrite.extend((0..trows).map(|i| (i, c)));
                }
            }
        }
        self.rewrite_cells_from_target(&rewrite);
        let unmapped = (dead_rows.len() - rows_done) + (dead_cols.len() - cols_done);
        (rows_done, cols_done, unmapped)
    }

    /// Analog matrix–vector multiply `y = A·x` against the realized matrix.
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::NotProgrammed`] before programming,
    /// * [`CrossbarError::ShapeMismatch`] if `x` has the wrong length.
    ///
    /// memlp-lint: analog_source
    pub fn mvm(&mut self, x: &[f64]) -> Result<Vec<f64>, CrossbarError> {
        let realized = self.realized.as_ref().ok_or(CrossbarError::NotProgrammed)?;
        if x.len() != realized.cols() {
            return Err(CrossbarError::ShapeMismatch {
                expected: format!("input of length {}", realized.cols()),
                found: format!("length {}", x.len()),
            });
        }
        let xq = self.dac.quantize_vec(x);
        let mut y = match self.config.fidelity {
            Fidelity::Functional => realized.matvec(&xq),
            Fidelity::Circuit => self.circuit_mvm(&xq)?,
        };
        self.adc.quantize_in_place(&mut y);
        self.config
            .faults
            .upset_read(&mut y, &mut self.transient_rng);
        self.ledger.charge_analog_op(
            &self.config.cost,
            false,
            xq.len() as u64,
            y.len() as u64,
            self.g_total,
            self.config.device.v_read,
        );
        Ok(y)
    }

    /// Analog transposed matrix–vector multiply `x = Aᵀ·y`: the same
    /// physical array driven from the opposite side (voltages on the word
    /// lines, currents sensed on the bit lines), so `Aᵀ` needs **no
    /// second array program**. This is what lets a first-order solver
    /// alternate `A` and `Aᵀ` products against one programmed crossbar.
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::NotProgrammed`] before programming,
    /// * [`CrossbarError::ShapeMismatch`] if `y` has the wrong length.
    ///
    /// memlp-lint: analog_source
    pub fn mvm_transposed(&mut self, y: &[f64]) -> Result<Vec<f64>, CrossbarError> {
        let realized = self.realized.as_ref().ok_or(CrossbarError::NotProgrammed)?;
        if y.len() != realized.rows() {
            return Err(CrossbarError::ShapeMismatch {
                expected: format!("input of length {}", realized.rows()),
                found: format!("length {}", y.len()),
            });
        }
        let yq = self.dac.quantize_vec(y);
        let mut x = match self.config.fidelity {
            Fidelity::Functional => realized.matvec_transposed(&yq),
            Fidelity::Circuit => self.circuit_mvm_transposed(&yq)?,
        };
        self.adc.quantize_in_place(&mut x);
        self.config
            .faults
            .upset_read(&mut x, &mut self.transient_rng);
        self.ledger.charge_analog_op(
            &self.config.cost,
            false,
            yq.len() as u64,
            x.len() as u64,
            self.g_total,
            self.config.device.v_read,
        );
        Ok(x)
    }

    /// Analog linear-system solve `A·x = b` (the crossbar's signature O(1)
    /// operation, §2.3): voltages proportional to `b` are applied at the
    /// bit-line sense resistors and the settled word-line voltages are the
    /// solution.
    ///
    /// # Errors
    ///
    /// * [`CrossbarError::NotProgrammed`] before programming,
    /// * [`CrossbarError::ShapeMismatch`] for non-square arrays or a wrong
    ///   `b` length,
    /// * [`CrossbarError::Linalg`] if the realized matrix is singular (the
    ///   §4.3 variation-induced failure mode).
    ///
    /// memlp-lint: analog_source
    pub fn solve(&mut self, b: &[f64]) -> Result<Vec<f64>, CrossbarError> {
        let realized = self.realized.as_ref().ok_or(CrossbarError::NotProgrammed)?;
        if !realized.is_square() {
            return Err(CrossbarError::ShapeMismatch {
                expected: "square programmed matrix".into(),
                found: format!("{}x{}", realized.rows(), realized.cols()),
            });
        }
        if b.len() != realized.rows() {
            return Err(CrossbarError::ShapeMismatch {
                expected: format!("rhs of length {}", realized.rows()),
                found: format!("length {}", b.len()),
            });
        }
        let bq = self.dac.quantize_vec(b);
        let mut x = match self.config.fidelity {
            Fidelity::Functional => LuFactors::factor(realized.clone())?.solve(&bq)?,
            Fidelity::Circuit => self.circuit_solve(&bq)?,
        };
        self.adc.quantize_in_place(&mut x);
        self.config
            .faults
            .upset_read(&mut x, &mut self.transient_rng);
        let n = bq.len() as u64;
        self.ledger.charge_analog_op(
            &self.config.cost,
            true,
            n,
            n,
            self.g_total,
            self.config.device.v_read,
        );
        Ok(x)
    }

    // ----- internals -------------------------------------------------------

    /// Writes one cell: returns (realized logical value, realized conductance).
    /// Consults the array's persistent [`FaultPlan`] — a stuck cell or dead
    /// line realizes its stuck value no matter what is programmed, and
    /// consumes no variation draw (the pulse never changes the device).
    fn write_cell(
        &mut self,
        map: &ConductanceMap,
        row: usize,
        col: usize,
        value: f64,
    ) -> (f64, f64) {
        match self.plan.fault_at(row, col) {
            FaultKind::StuckOn => return (map.a_max(), self.config.device.g_on()),
            FaultKind::StuckOff => return (0.0, self.config.device.g_off()),
            FaultKind::Healthy => {}
        }
        // The program-and-verify loop resolves the target to
        // `config.write_bits` significant bits — the code the delta path
        // compares against — before the stored value picks up Eqn 18
        // variation.
        let value = self.wq.quantize(value);
        match self.config.fidelity {
            Fidelity::Functional => {
                // Paper-faithful Eqn 18: perturb the logical value, then
                // clamp to the representable range.
                let v = self
                    .config
                    .variation
                    .perturb(value, &mut self.rng)
                    .clamp(0.0, map.a_max());
                (v, map.to_conductance(v))
            }
            Fidelity::Circuit => {
                // Physical: the conductance (including its g_off floor) is
                // what varies from write to write.
                let g = (self
                    .config
                    .variation
                    .perturb(map.to_conductance(value), &mut self.rng))
                .clamp(0.25 * map.g_off(), self.config.device.g_on() * 1.25);
                (map.to_logical(g), g)
            }
        }
    }

    /// Rewrites the listed cells from the logical target (post-repair /
    /// post-remap), refreshing the conductance cache and charging run-phase
    /// writes. Cells outside the programmed region, or on an array never
    /// programmed, are skipped.
    fn rewrite_cells_from_target(&mut self, cells: &[(usize, usize)]) {
        let Some(map) = self.map else { return };
        let cols = self.target.as_ref().map_or(0, |t| t.cols());
        let mut written = 0u64;
        for &(i, j) in cells {
            let Some(v) = self
                .target
                .as_ref()
                .and_then(|t| (i < t.rows() && j < t.cols()).then(|| t[(i, j)]))
            else {
                continue;
            };
            let (logical, g) = self.write_cell(&map, i, j, v);
            if let Some(r) = self.realized.as_mut() {
                r[(i, j)] = logical;
            }
            if let Some(gm) = self.gmat.as_mut() {
                gm[(i, j)] = g;
            }
            // Keep the delta cache coherent: the cell now freshly holds its
            // target's code.
            if let Some(c) = self.codes.as_mut() {
                c[i * cols + j] = self.wq.code(v);
            }
            written += 1;
        }
        if written == 0 {
            return;
        }
        self.g_total = match (&self.gmat, &self.realized) {
            (Some(gm), _) => gm.as_slice().iter().sum(),
            (None, Some(r)) => {
                map.g_off() * (r.rows() * r.cols()) as f64
                    + map.slope() * r.as_slice().iter().sum::<f64>()
            }
            (None, None) => 0.0,
        };
        self.ledger.charge_writes(
            &self.config.cost,
            Phase::Run,
            written,
            self.config.variation.max_fraction,
        );
    }

    /// Recomputes the cached total conductance from the current cell state.
    fn refresh_g_total(&mut self, map: &ConductanceMap) -> Result<(), CrossbarError> {
        self.g_total = match (&self.gmat, &self.realized) {
            (Some(gm), _) => gm.as_slice().iter().sum(),
            (None, Some(r)) => {
                map.g_off() * (r.rows() * r.cols()) as f64
                    + map.slope() * r.as_slice().iter().sum::<f64>()
            }
            // `map` only exists after program(), so `realized` exists; this
            // arm is unreachable in practice.
            (None, None) => return Err(CrossbarError::NotProgrammed),
        };
        Ok(())
    }

    /// Circuit-fidelity MVM: Eqn 5 divider plus calibrated or raw read-out.
    fn circuit_mvm(&self, xq: &[f64]) -> Result<Vec<f64>, CrossbarError> {
        let gm = self.gmat.as_ref().ok_or(CrossbarError::NotProgrammed)?;
        let map = self.map.ok_or(CrossbarError::NotProgrammed)?;
        let gs = self.config.sense_conductance;
        let sum_x: f64 = xq.iter().sum();
        let mut y = Vec::with_capacity(gm.rows());
        for r in 0..gm.rows() {
            let row = gm.row(r);
            let current: f64 = memlp_linalg::ops::dot(row, xq);
            let row_sum: f64 = row.iter().sum();
            let vo = current / (gs + row_sum);
            let val = match self.config.readout {
                ReadoutMode::Calibrated => {
                    // The controller knows the programmed row sums and the
                    // g_off common mode; divide/subtract them digitally.
                    (vo * (gs + row_sum) - map.g_off() * sum_x) / map.slope()
                }
                ReadoutMode::RawDivider => vo * gs / map.slope(),
            };
            y.push(val);
        }
        Ok(y)
    }

    /// Circuit-fidelity transposed MVM: the Eqn 5 divider mirrored onto
    /// the bit lines (column conductance sums replace row sums).
    fn circuit_mvm_transposed(&self, yq: &[f64]) -> Result<Vec<f64>, CrossbarError> {
        let gm = self.gmat.as_ref().ok_or(CrossbarError::NotProgrammed)?;
        let map = self.map.ok_or(CrossbarError::NotProgrammed)?;
        let gs = self.config.sense_conductance;
        let sum_y: f64 = yq.iter().sum();
        let mut x = Vec::with_capacity(gm.cols());
        for c in 0..gm.cols() {
            let mut current = 0.0f64;
            let mut col_sum = 0.0f64;
            for r in 0..gm.rows() {
                let g = gm[(r, c)];
                current += g * yq[r];
                col_sum += g;
            }
            let vo = current / (gs + col_sum);
            let val = match self.config.readout {
                ReadoutMode::Calibrated => {
                    (vo * (gs + col_sum) - map.g_off() * sum_y) / map.slope()
                }
                ReadoutMode::RawDivider => vo * gs / map.slope(),
            };
            x.push(val);
        }
        Ok(x)
    }

    /// Circuit-fidelity solve: `G·x_v = g_s·b`, read word lines, rescale.
    fn circuit_solve(&self, bq: &[f64]) -> Result<Vec<f64>, CrossbarError> {
        let gm = self.gmat.as_ref().ok_or(CrossbarError::NotProgrammed)?;
        let map = self.map.ok_or(CrossbarError::NotProgrammed)?;
        let gs = self.config.sense_conductance;
        let rhs: Vec<f64> = bq.iter().map(|v| v * gs).collect();
        let xv = LuFactors::factor(gm.clone())?.solve(&rhs)?;
        // G ≈ slope·A (plus the uncorrected g_off parasitic), so the
        // word-line voltages satisfy x_v ≈ (g_s/slope)·A⁻¹·b.
        Ok(xv.iter().map(|v| v * map.slope() / gs).collect())
    }

    fn check_fits(&self, rows: usize, cols: usize) -> Result<(), CrossbarError> {
        let need = rows.max(cols);
        if need > self.side {
            return Err(CrossbarError::SizeExceeded {
                requested: need,
                capacity: self.side,
            });
        }
        Ok(())
    }

    fn check_nonnegative(&self, m: &Matrix) -> Result<(), CrossbarError> {
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                let v = m[(i, j)];
                if !(v.is_finite() && v >= 0.0) {
                    return Err(CrossbarError::NegativeCoefficient {
                        row: i,
                        col: j,
                        value: v,
                    });
                }
            }
        }
        Ok(())
    }
}
