use rand::Rng;

/// Stuck-at fault injection for crossbar cells.
///
/// Fabrication defects leave some cells stuck at their extreme conductances
/// regardless of programming. The paper does not model faults (only
/// variation); this is a beyond-paper robustness probe used by the
/// `ablation_faults` bench to ask how much of the PDIP loop's noise
/// tolerance extends to hard defects.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultModel {
    /// Probability a cell is stuck at `g_on` (shorted ON).
    pub stuck_on_rate: f64,
    /// Probability a cell is stuck at `g_off` (stuck OFF).
    pub stuck_off_rate: f64,
}

/// Outcome of a fault draw for one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Cell programs normally.
    Healthy,
    /// Cell reads as `g_on` regardless of programming.
    StuckOn,
    /// Cell reads as `g_off` regardless of programming.
    StuckOff,
}

impl FaultModel {
    /// No faults.
    pub fn none() -> Self {
        FaultModel::default()
    }

    /// Symmetric fault model: each kind occurs with `rate` probability.
    pub fn symmetric(rate: f64) -> Self {
        FaultModel {
            stuck_on_rate: rate,
            stuck_off_rate: rate,
        }
    }

    /// Returns `true` if this model never injects faults.
    pub fn is_none(&self) -> bool {
        self.stuck_on_rate == 0.0 && self.stuck_off_rate == 0.0
    }

    /// Draws the fault state of one cell.
    pub fn draw(&self, rng: &mut impl Rng) -> FaultKind {
        if self.is_none() {
            return FaultKind::Healthy;
        }
        let u: f64 = rng.random_range(0.0..1.0);
        if u < self.stuck_on_rate {
            FaultKind::StuckOn
        } else if u < self.stuck_on_rate + self.stuck_off_rate {
            FaultKind::StuckOff
        } else {
            FaultKind::Healthy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_always_healthy() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = FaultModel::none();
        for _ in 0..1000 {
            assert_eq!(f.draw(&mut rng), FaultKind::Healthy);
        }
    }

    #[test]
    fn rates_are_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = FaultModel {
            stuck_on_rate: 0.1,
            stuck_off_rate: 0.2,
        };
        let n = 100_000;
        let mut on = 0;
        let mut off = 0;
        for _ in 0..n {
            match f.draw(&mut rng) {
                FaultKind::StuckOn => on += 1,
                FaultKind::StuckOff => off += 1,
                FaultKind::Healthy => {}
            }
        }
        let on_rate = on as f64 / n as f64;
        let off_rate = off as f64 / n as f64;
        assert!((on_rate - 0.1).abs() < 0.01, "stuck-on rate {on_rate}");
        assert!((off_rate - 0.2).abs() < 0.01, "stuck-off rate {off_rate}");
    }

    #[test]
    fn symmetric_constructor() {
        let f = FaultModel::symmetric(0.05);
        assert_eq!(f.stuck_on_rate, 0.05);
        assert_eq!(f.stuck_off_rate, 0.05);
        assert!(!f.is_none());
    }
}
