//! Hard-defect and transient-fault injection for crossbar arrays.
//!
//! The paper models only per-write process variation (Eqn 18) plus the
//! §4.3 double-checking re-solve. Real crossbars also suffer *hard*
//! defects — cells stuck at an extreme conductance, whole word/bit lines
//! dead after fabrication — and *transient* read upsets in the ADC path.
//! This module provides:
//!
//! * [`FaultModel`] — validated fault **rates** (construction rejects
//!   impossible configurations such as `stuck_on + stuck_off > 1`),
//! * [`FaultPlan`] — a concrete, seed-deterministic **realization** of a
//!   model over one physical array: which cells are stuck, which lines are
//!   dead, which stuck cells are merely *weak* (repairable by an extended
//!   programming-pulse budget),
//! * transient read upsets ([`FaultModel::upset_read`]), applied at the
//!   ADC stage of every analog read-out.
//!
//! The plan — not the model — is what programming/read paths consult, so
//! defects persist across re-programming attempts (a stuck cell stays
//! stuck when the §4.3 scheme redraws variation) while repairs
//! ([`FaultPlan::repair_weak`], [`FaultPlan::revive_row`]) are equally
//! persistent. Everything is driven by seeded [`StdRng`] streams: same
//! seed, same defects, at any thread count.
//!
//! [`StdRng`]: rand::rngs::StdRng

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Validated fault rates for a crossbar array.
///
/// All constructors besides [`FaultModel::none`] validate their inputs and
/// return an error for rates outside `[0, 1]`, non-finite rates, or
/// `stuck_on + stuck_off > 1` (which would silently misclassify draws).
/// Fields are private so an invalid model is unrepresentable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Probability a cell is stuck at `g_on` (shorted ON).
    stuck_on_rate: f64,
    /// Probability a cell is stuck at `g_off` (stuck OFF).
    stuck_off_rate: f64,
    /// Probability a word line (array row) is entirely dead (reads zero).
    dead_row_rate: f64,
    /// Probability a bit line (array column) is entirely dead.
    dead_col_rate: f64,
    /// Probability a single ADC read-out component suffers a transient
    /// full-scale upset.
    transient_flip_rate: f64,
    /// Fraction of stuck cells that are *weak* — recoverable by re-running
    /// programming with an extended pulse budget — rather than hard defects.
    weak_fraction: f64,
}

/// Outcome of a fault draw for one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Cell programs normally.
    Healthy,
    /// Cell reads as `g_on` regardless of programming.
    StuckOn,
    /// Cell reads as `g_off` regardless of programming.
    StuckOff,
}

/// The error produced when fault rates fail validation; converted into
/// [`crate::CrossbarError::InvalidFaultModel`] at the crate boundary.
pub type FaultModelError = crate::error::CrossbarError;

fn check_rate(name: &str, rate: f64) -> Result<(), FaultModelError> {
    if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
        return Err(FaultModelError::InvalidFaultModel {
            reason: format!("{name} must be a probability in [0, 1], got {rate}"),
        });
    }
    Ok(())
}

impl FaultModel {
    /// No faults (and the default weak fraction, which is irrelevant at
    /// zero fault rates).
    pub fn none() -> Self {
        FaultModel::default()
    }

    /// Stuck-at model with explicit per-kind rates.
    ///
    /// # Errors
    ///
    /// [`crate::CrossbarError::InvalidFaultModel`] if either rate is outside
    /// `[0, 1]` or the rates sum past 1 (the draw would misclassify).
    pub fn new(stuck_on_rate: f64, stuck_off_rate: f64) -> Result<Self, FaultModelError> {
        FaultModel::default().with_stuck_rates(stuck_on_rate, stuck_off_rate)
    }

    /// Symmetric stuck-at model: each kind occurs with `rate` probability.
    ///
    /// # Errors
    ///
    /// Same as [`FaultModel::new`] (`rate > 0.5` makes the kinds sum past 1).
    pub fn symmetric(rate: f64) -> Result<Self, FaultModelError> {
        FaultModel::new(rate, rate)
    }

    /// Returns a copy with the given stuck-cell rates.
    ///
    /// # Errors
    ///
    /// [`crate::CrossbarError::InvalidFaultModel`] on invalid rates or a
    /// rate sum above 1.
    pub fn with_stuck_rates(
        mut self,
        stuck_on_rate: f64,
        stuck_off_rate: f64,
    ) -> Result<Self, FaultModelError> {
        check_rate("stuck_on_rate", stuck_on_rate)?;
        check_rate("stuck_off_rate", stuck_off_rate)?;
        if stuck_on_rate + stuck_off_rate > 1.0 {
            return Err(FaultModelError::InvalidFaultModel {
                reason: format!(
                    "stuck_on_rate + stuck_off_rate = {} exceeds 1; a cell cannot \
                     be stuck both ways",
                    stuck_on_rate + stuck_off_rate
                ),
            });
        }
        self.stuck_on_rate = stuck_on_rate;
        self.stuck_off_rate = stuck_off_rate;
        Ok(self)
    }

    /// Returns a copy with dead-line (whole row/column) rates.
    ///
    /// # Errors
    ///
    /// [`crate::CrossbarError::InvalidFaultModel`] on rates outside `[0, 1]`.
    pub fn with_dead_lines(
        mut self,
        dead_row_rate: f64,
        dead_col_rate: f64,
    ) -> Result<Self, FaultModelError> {
        check_rate("dead_row_rate", dead_row_rate)?;
        check_rate("dead_col_rate", dead_col_rate)?;
        self.dead_row_rate = dead_row_rate;
        self.dead_col_rate = dead_col_rate;
        Ok(self)
    }

    /// Returns a copy with the transient ADC-upset rate.
    ///
    /// # Errors
    ///
    /// [`crate::CrossbarError::InvalidFaultModel`] on a rate outside `[0, 1]`.
    pub fn with_transients(mut self, rate: f64) -> Result<Self, FaultModelError> {
        check_rate("transient_flip_rate", rate)?;
        self.transient_flip_rate = rate;
        Ok(self)
    }

    /// Returns a copy with the weak (repairable) fraction of stuck cells.
    ///
    /// # Errors
    ///
    /// [`crate::CrossbarError::InvalidFaultModel`] on a fraction outside
    /// `[0, 1]`.
    pub fn with_weak_fraction(mut self, fraction: f64) -> Result<Self, FaultModelError> {
        check_rate("weak_fraction", fraction)?;
        self.weak_fraction = fraction;
        Ok(self)
    }

    /// Probability a cell is stuck at `g_on`.
    pub fn stuck_on_rate(&self) -> f64 {
        self.stuck_on_rate
    }

    /// Probability a cell is stuck at `g_off`.
    pub fn stuck_off_rate(&self) -> f64 {
        self.stuck_off_rate
    }

    /// Probability a word line (row) is dead.
    pub fn dead_row_rate(&self) -> f64 {
        self.dead_row_rate
    }

    /// Probability a bit line (column) is dead.
    pub fn dead_col_rate(&self) -> f64 {
        self.dead_col_rate
    }

    /// Probability of a transient full-scale upset per ADC read-out
    /// component.
    pub fn transient_flip_rate(&self) -> f64 {
        self.transient_flip_rate
    }

    /// Fraction of stuck cells that are weak (repairable).
    pub fn weak_fraction(&self) -> f64 {
        self.weak_fraction
    }

    /// Returns `true` if this model never injects hard faults (dead lines
    /// or stuck cells). Transient upsets are reported separately by
    /// [`FaultModel::has_transients`].
    pub fn is_none(&self) -> bool {
        self.stuck_on_rate == 0.0
            && self.stuck_off_rate == 0.0
            && self.dead_row_rate == 0.0
            && self.dead_col_rate == 0.0
    }

    /// Returns `true` if transient read upsets are enabled.
    pub fn has_transients(&self) -> bool {
        self.transient_flip_rate > 0.0
    }

    /// Draws the stuck-fault state of one cell. Construction guarantees the
    /// rates sum to at most 1, so the draw cannot misclassify.
    pub fn draw(&self, rng: &mut impl Rng) -> FaultKind {
        if self.stuck_on_rate == 0.0 && self.stuck_off_rate == 0.0 {
            return FaultKind::Healthy;
        }
        let u: f64 = rng.random_range(0.0..1.0);
        if u < self.stuck_on_rate {
            FaultKind::StuckOn
        } else if u < self.stuck_on_rate + self.stuck_off_rate {
            FaultKind::StuckOff
        } else {
            FaultKind::Healthy
        }
    }

    /// Applies transient read upsets to an ADC read-out in place: each
    /// component flips (loses its full-scale MSB) with probability
    /// [`FaultModel::transient_flip_rate`]. Returns the number of upsets.
    ///
    /// Consumes **no** RNG draws when the rate is zero, so fault-free
    /// configurations replay bit-identical streams.
    pub fn upset_read(&self, v: &mut [f64], rng: &mut impl Rng) -> usize {
        if self.transient_flip_rate == 0.0 {
            return 0;
        }
        let fs = v.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        if fs == 0.0 {
            return 0;
        }
        let mut upsets = 0;
        for x in v.iter_mut() {
            let u: f64 = rng.random_range(0.0..1.0);
            if u < self.transient_flip_rate {
                // An MSB upset: the component loses (or gains) a full-scale
                // half-range, the worst single-bit error an ADC word suffers.
                *x -= 0.5 * fs * x.signum();
                upsets += 1;
            }
        }
        upsets
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel {
            stuck_on_rate: 0.0,
            stuck_off_rate: 0.0,
            dead_row_rate: 0.0,
            dead_col_rate: 0.0,
            transient_flip_rate: 0.0,
            // Half of stuck cells default to weak: fabrication surveys
            // attribute a large share of stuck-at behaviour to insufficient
            // forming, which extended pulse budgets recover.
            weak_fraction: 0.5,
        }
    }
}

/// One stuck cell in a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellFault {
    /// Array row of the faulty cell.
    pub row: usize,
    /// Array column of the faulty cell.
    pub col: usize,
    /// Stuck polarity ([`FaultKind::Healthy`] never appears in a plan).
    pub kind: FaultKind,
    /// Weak faults are repairable by re-programming with an extended pulse
    /// budget; hard faults are permanent.
    pub weak: bool,
}

/// A deterministic realization of a [`FaultModel`] over one physical array:
/// the concrete set of stuck cells and dead lines that array carries.
///
/// Plans are drawn once per physical array from a dedicated seed stream
/// (never from the variation RNG), so the *same* defects persist when the
/// §4.3 double-checking scheme re-programs the array with fresh variation —
/// exactly how hardware behaves. All internal collections are sorted
/// vectors: iteration order is deterministic by construction (no unordered
/// maps), which the replay test suite relies on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    rows: usize,
    cols: usize,
    /// Stuck cells in row-major order (binary-searchable).
    cells: Vec<CellFault>,
    /// Dead rows, ascending.
    dead_rows: Vec<usize>,
    /// Dead columns, ascending.
    dead_cols: Vec<usize>,
}

impl FaultPlan {
    /// A defect-free plan for a `rows × cols` array.
    pub fn clean(rows: usize, cols: usize) -> Self {
        FaultPlan {
            rows,
            cols,
            ..FaultPlan::default()
        }
    }

    /// Draws the plan for a `rows × cols` array from `seed`. Dead lines are
    /// drawn first (rows, then columns), then per-cell stuck faults in
    /// row-major order; stuck cells additionally draw their weak flag.
    /// Deterministic in `(model, rows, cols, seed)`.
    pub fn draw(model: &FaultModel, rows: usize, cols: usize, seed: u64) -> Self {
        if model.is_none() {
            return FaultPlan::clean(rows, cols);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dead_rows = Vec::new();
        if model.dead_row_rate() > 0.0 {
            for i in 0..rows {
                let u: f64 = rng.random_range(0.0..1.0);
                if u < model.dead_row_rate() {
                    dead_rows.push(i);
                }
            }
        }
        let mut dead_cols = Vec::new();
        // A 1-wide region is a diagonal laid along the array, not a shared
        // bit line: column faults do not apply there.
        if model.dead_col_rate() > 0.0 && cols > 1 {
            for j in 0..cols {
                let u: f64 = rng.random_range(0.0..1.0);
                if u < model.dead_col_rate() {
                    dead_cols.push(j);
                }
            }
        }
        let mut cells = Vec::new();
        if model.stuck_on_rate() > 0.0 || model.stuck_off_rate() > 0.0 {
            for row in 0..rows {
                for col in 0..cols {
                    let kind = model.draw(&mut rng);
                    if kind != FaultKind::Healthy {
                        let u: f64 = rng.random_range(0.0..1.0);
                        cells.push(CellFault {
                            row,
                            col,
                            kind,
                            weak: u < model.weak_fraction(),
                        });
                    }
                }
            }
        }
        FaultPlan {
            rows,
            cols,
            cells,
            dead_rows,
            dead_cols,
        }
    }

    /// Array rows this plan covers.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns this plan covers.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The effective fault at `(row, col)`: a dead line reads as stuck-off,
    /// otherwise the cell's own stuck state (if any).
    pub fn fault_at(&self, row: usize, col: usize) -> FaultKind {
        if self.dead_rows.binary_search(&row).is_ok() || self.dead_cols.binary_search(&col).is_ok()
        {
            return FaultKind::StuckOff;
        }
        match self
            .cells
            .binary_search_by_key(&(row, col), |c| (c.row, c.col))
        {
            Ok(idx) => self.cells[idx].kind,
            Err(_) => FaultKind::Healthy,
        }
    }

    /// `true` if the plan carries no defects at all.
    pub fn is_clean(&self) -> bool {
        self.cells.is_empty() && self.dead_rows.is_empty() && self.dead_cols.is_empty()
    }

    /// Stuck cells (dead lines not included).
    pub fn stuck_cells(&self) -> usize {
        self.cells.len()
    }

    /// Stuck cells flagged weak (repairable).
    pub fn weak_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.weak).count()
    }

    /// The stuck-cell list, row-major.
    pub fn cells(&self) -> &[CellFault] {
        &self.cells
    }

    /// Dead rows, ascending.
    pub fn dead_rows(&self) -> &[usize] {
        &self.dead_rows
    }

    /// Dead columns, ascending.
    pub fn dead_cols(&self) -> &[usize] {
        &self.dead_cols
    }

    /// Repairs every weak stuck cell (the extended-pulse-budget re-program)
    /// and returns how many were repaired. Hard cells remain stuck.
    pub fn repair_weak(&mut self) -> usize {
        let before = self.cells.len();
        self.cells.retain(|c| !c.weak);
        before - self.cells.len()
    }

    /// Revives a dead row (its logical line was remapped onto a healthy
    /// spare). Stuck cells recorded on that physical row no longer apply —
    /// the logical line now lives elsewhere. Returns `false` if the row was
    /// not dead.
    pub fn revive_row(&mut self, row: usize) -> bool {
        match self.dead_rows.binary_search(&row) {
            Ok(idx) => {
                self.dead_rows.remove(idx);
                self.cells.retain(|c| c.row != row);
                true
            }
            Err(_) => false,
        }
    }

    /// Revives a dead column (remapped onto a spare bit line). Returns
    /// `false` if the column was not dead.
    pub fn revive_col(&mut self, col: usize) -> bool {
        match self.dead_cols.binary_search(&col) {
            Ok(idx) => {
                self.dead_cols.remove(idx);
                self.cells.retain(|c| c.col != col);
                true
            }
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CrossbarError;

    #[test]
    fn none_is_always_healthy() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = FaultModel::none();
        for _ in 0..1000 {
            assert_eq!(f.draw(&mut rng), FaultKind::Healthy);
        }
        assert!(f.is_none());
        assert!(!f.has_transients());
    }

    #[test]
    fn rates_are_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = FaultModel::new(0.1, 0.2).unwrap();
        let n = 100_000;
        let mut on = 0;
        let mut off = 0;
        for _ in 0..n {
            match f.draw(&mut rng) {
                FaultKind::StuckOn => on += 1,
                FaultKind::StuckOff => off += 1,
                FaultKind::Healthy => {}
            }
        }
        let on_rate = on as f64 / n as f64;
        let off_rate = off as f64 / n as f64;
        assert!((on_rate - 0.1).abs() < 0.01, "stuck-on rate {on_rate}");
        assert!((off_rate - 0.2).abs() < 0.01, "stuck-off rate {off_rate}");
    }

    #[test]
    fn symmetric_constructor() {
        let f = FaultModel::symmetric(0.05).unwrap();
        assert_eq!(f.stuck_on_rate(), 0.05);
        assert_eq!(f.stuck_off_rate(), 0.05);
        assert!(!f.is_none());
    }

    #[test]
    fn rejects_rates_summing_past_one() {
        // The satellite bug: 0.7 + 0.6 > 1 used to silently bias the draw
        // toward stuck-on; now it is a construction error.
        let err = FaultModel::new(0.7, 0.6).unwrap_err();
        assert!(matches!(err, CrossbarError::InvalidFaultModel { .. }));
        assert!(err.to_string().contains("exceeds 1"));
        assert!(FaultModel::symmetric(0.6).is_err());
        assert!(FaultModel::symmetric(0.5).is_ok());
    }

    #[test]
    fn rejects_out_of_range_and_non_finite_rates() {
        assert!(FaultModel::new(-0.1, 0.0).is_err());
        assert!(FaultModel::new(0.0, 1.5).is_err());
        assert!(FaultModel::new(f64::NAN, 0.0).is_err());
        assert!(FaultModel::none().with_dead_lines(-1.0, 0.0).is_err());
        assert!(FaultModel::none().with_transients(2.0).is_err());
        assert!(FaultModel::none()
            .with_weak_fraction(f64::INFINITY)
            .is_err());
    }

    #[test]
    fn plan_is_deterministic_in_seed() {
        let f = FaultModel::symmetric(0.05)
            .unwrap()
            .with_dead_lines(0.1, 0.1)
            .unwrap();
        let p1 = FaultPlan::draw(&f, 20, 20, 77);
        let p2 = FaultPlan::draw(&f, 20, 20, 77);
        assert_eq!(p1, p2);
        let p3 = FaultPlan::draw(&f, 20, 20, 78);
        assert_ne!(p1, p3, "different seeds should draw different plans");
    }

    #[test]
    fn plan_honors_dead_lines_and_cells() {
        let f = FaultModel::symmetric(0.08)
            .unwrap()
            .with_dead_lines(0.2, 0.2)
            .unwrap();
        let p = FaultPlan::draw(&f, 30, 30, 5);
        assert!(!p.is_clean());
        for &r in p.dead_rows() {
            for j in 0..30 {
                assert_eq!(p.fault_at(r, j), FaultKind::StuckOff);
            }
        }
        for c in p.cells() {
            if p.dead_rows().binary_search(&c.row).is_err()
                && p.dead_cols().binary_search(&c.col).is_err()
            {
                assert_eq!(p.fault_at(c.row, c.col), c.kind);
            }
        }
    }

    #[test]
    fn vector_regions_draw_no_dead_columns() {
        let f = FaultModel::none().with_dead_lines(0.0, 1.0).unwrap();
        let p = FaultPlan::draw(&f, 64, 1, 3);
        assert!(p.dead_cols().is_empty(), "1-wide region has no bit lines");
    }

    #[test]
    fn repair_weak_clears_only_weak_cells() {
        let f = FaultModel::symmetric(0.1)
            .unwrap()
            .with_weak_fraction(0.5)
            .unwrap();
        let mut p = FaultPlan::draw(&f, 40, 40, 9);
        let weak = p.weak_cells();
        let hard = p.stuck_cells() - weak;
        assert!(weak > 0 && hard > 0, "seed should draw both kinds");
        assert_eq!(p.repair_weak(), weak);
        assert_eq!(p.stuck_cells(), hard);
        assert_eq!(p.weak_cells(), 0);
        assert_eq!(p.repair_weak(), 0, "idempotent");
    }

    #[test]
    fn revive_lines() {
        let f = FaultModel::none().with_dead_lines(0.3, 0.3).unwrap();
        let mut p = FaultPlan::draw(&f, 20, 20, 11);
        let Some(&r) = p.dead_rows().first() else {
            panic!("seed should draw a dead row");
        };
        assert!(p.revive_row(r));
        assert!(!p.revive_row(r), "already revived");
        let Some(healthy_col) = (0..20).find(|j| p.dead_cols().binary_search(j).is_err()) else {
            panic!("every column dead at rate 0.3 is implausible");
        };
        assert_ne!(p.fault_at(r, healthy_col), FaultKind::StuckOff);
        let Some(&c) = p.dead_cols().first() else {
            panic!("seed should draw a dead col");
        };
        assert!(p.revive_col(c));
        assert!(p.dead_cols().binary_search(&c).is_err());
    }

    #[test]
    fn upset_read_flips_at_the_configured_rate() {
        let f = FaultModel::none().with_transients(0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let mut total = 0usize;
        let n = 40_000;
        for _ in 0..(n / 8) {
            let mut v = vec![1.0; 8];
            total += f.upset_read(&mut v, &mut rng);
        }
        let rate = total as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "upset rate {rate}");
    }

    #[test]
    fn zero_transient_rate_consumes_no_rng() {
        let f = FaultModel::none();
        let mut r1 = StdRng::seed_from_u64(21);
        let mut r2 = StdRng::seed_from_u64(21);
        let mut v = vec![1.0, -2.0, 3.0];
        assert_eq!(f.upset_read(&mut v, &mut r1), 0);
        assert_eq!(v, vec![1.0, -2.0, 3.0]);
        let a: f64 = r1.random_range(0.0..1.0);
        let b: f64 = r2.random_range(0.0..1.0);
        assert_eq!(a.to_bits(), b.to_bits(), "stream must be untouched");
    }
}
