/// An ADC/DAC pair with per-vector dynamic-range scaling.
///
/// The paper stores all voltage inputs and outputs with 8-bit precision
/// (§4.1). A physical converter with a programmable reference digitizes a
/// vector relative to its own full-scale range, so the quantizer here
/// auto-ranges on the largest absolute entry of each vector (block
/// floating-point semantics): the quantization step is `max|v| / (2^(b-1) − 1)`.
///
/// # Example
///
/// ```
/// use memlp_crossbar::Quantizer;
///
/// let q = Quantizer::new(8);
/// let v = q.quantize_vec(&[1.0, -0.5, 0.003]);
/// assert!((v[0] - 1.0).abs() < 1e-12);         // full-scale is exact
/// assert!((v[1] + 0.5).abs() <= 1.0 / 254.0);  // inside one step
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantizer {
    bits: u32,
}

impl Quantizer {
    /// Creates a quantizer with the given resolution (1..=24 bits).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=24`.
    pub fn new(bits: u32) -> Self {
        assert!(
            (1..=24).contains(&bits),
            "quantizer resolution {bits} outside 1..=24 bits"
        );
        Quantizer { bits }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of positive levels (`2^(bits-1) − 1`).
    pub fn levels(&self) -> f64 {
        ((1u32 << (self.bits - 1)) - 1) as f64
    }

    /// Quantizes one value against an explicit full-scale range.
    pub fn quantize_against(&self, v: f64, full_scale: f64) -> f64 {
        if full_scale == 0.0 || !v.is_finite() {
            return 0.0;
        }
        let levels = self.levels();
        let code = (v / full_scale * levels).round().clamp(-levels, levels);
        code / levels * full_scale
    }

    /// Quantizes a vector, auto-ranging on its largest absolute entry.
    pub fn quantize_vec(&self, v: &[f64]) -> Vec<f64> {
        let full_scale = v.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        v.iter()
            .map(|&x| self.quantize_against(x, full_scale))
            .collect()
    }

    /// Quantizes a vector in place; returns the full-scale range used.
    pub fn quantize_in_place(&self, v: &mut [f64]) -> f64 {
        let full_scale = v.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        for x in v.iter_mut() {
            *x = self.quantize_against(*x, full_scale);
        }
        full_scale
    }

    /// Worst-case absolute quantization error for a vector whose largest
    /// absolute entry is `full_scale` (half a step).
    pub fn max_error(&self, full_scale: f64) -> f64 {
        0.5 * full_scale / self.levels()
    }
}

/// Write-precision quantizer: the conductance **code map** that delta
/// programming compares against.
///
/// A program-and-verify write loop drives a cell until the read-back
/// conductance sits within a *relative* tolerance of the target — the pulse
/// train resolves the stored value to `bits` significant bits regardless of
/// where in the conductance window the target lies. The code is therefore
/// scale-free (the float's exponent plus a `bits`-wide mantissa), unlike the
/// [`Quantizer`]'s full-scale-relative ADC/DAC grid: codes stay comparable
/// across iterations even as the block's dynamic range drifts, and tiny
/// barrier-diagonal entries never collapse to code 0 (which would make the
/// realized Newton system structurally singular).
///
/// Two invariants delta programming relies on (tested below):
/// * **code assignment is monotone** in the target value, and
/// * **equal targets always produce equal codes**.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteQuantizer {
    bits: u32,
}

impl WriteQuantizer {
    /// Maximum resolution: a full f64 mantissa, i.e. writes are exact.
    pub const EXACT_BITS: u32 = 53;

    /// Creates a write quantizer resolving `bits` significant bits
    /// (1..=53; 53 reproduces the target exactly).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=53`.
    pub fn new(bits: u32) -> Self {
        assert!(
            (1..=Self::EXACT_BITS).contains(&bits),
            "write resolution {bits} outside 1..=53 bits"
        );
        WriteQuantizer { bits }
    }

    /// Resolution in significant bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Worst-case relative rounding error, `2^-bits` (half the relative
    /// spacing between adjacent codes). Verify bands must widen by this
    /// much or healthy quantized cells read as defects.
    pub fn rel_step(&self) -> f64 {
        2.0f64.powi(-(self.bits as i32))
    }

    /// The conductance code for a target value. Non-positive and non-finite
    /// targets map to code 0 (the erased cell); positive targets map to
    /// their f64 bit pattern rounded (half-up) to `bits` significant bits.
    /// Monotone over non-negative finite targets.
    pub fn code(&self, v: f64) -> u64 {
        if !v.is_finite() || v <= 0.0 {
            return 0;
        }
        let drop = Self::EXACT_BITS - self.bits;
        if drop == 0 {
            return v.to_bits();
        }
        let rounded = (v.to_bits() + (1u64 << (drop - 1))) >> drop;
        // Rounding at the very top of the exponent range would carry into
        // the infinity bit pattern; keep the top code finite instead.
        if f64::from_bits(rounded << drop).is_finite() {
            rounded
        } else {
            rounded - 1
        }
    }

    /// The stored value a code realizes (exact; codes round-trip).
    pub fn decode(&self, code: u64) -> f64 {
        if code == 0 {
            return 0.0;
        }
        f64::from_bits(code << (Self::EXACT_BITS - self.bits))
    }

    /// Rounds a target to its stored value: `decode(code(v))`.
    pub fn quantize(&self, v: f64) -> f64 {
        self.decode(self.code(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_is_representable_exactly() {
        let q = Quantizer::new(8);
        let v = q.quantize_vec(&[-3.0, 1.0, 3.0]);
        assert_eq!(v[0], -3.0);
        assert_eq!(v[2], 3.0);
    }

    #[test]
    fn error_bounded_by_half_step() {
        let q = Quantizer::new(8);
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7133).sin() * 2.5).collect();
        let quant = q.quantize_vec(&data);
        let full = data.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        let bound = q.max_error(full) + 1e-15;
        for (a, b) in data.iter().zip(&quant) {
            assert!((a - b).abs() <= bound, "{a} -> {b}, bound {bound}");
        }
    }

    #[test]
    fn zero_vector_stays_zero() {
        let q = Quantizer::new(8);
        assert_eq!(q.quantize_vec(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn more_bits_less_error() {
        let lo = Quantizer::new(4);
        let hi = Quantizer::new(12);
        assert!(hi.max_error(1.0) < lo.max_error(1.0));
    }

    #[test]
    fn quantize_in_place_returns_range() {
        let q = Quantizer::new(8);
        let mut v = vec![0.5, -2.0];
        let fs = q.quantize_in_place(&mut v);
        assert_eq!(fs, 2.0);
        assert_eq!(v[1], -2.0);
    }

    #[test]
    fn non_finite_maps_to_zero() {
        let q = Quantizer::new(8);
        assert_eq!(q.quantize_against(f64::NAN, 1.0), 0.0);
        assert_eq!(q.quantize_against(f64::INFINITY, 1.0), 0.0);
    }

    #[test]
    fn clamps_beyond_full_scale() {
        let q = Quantizer::new(8);
        // Explicit range smaller than the value: saturates at full scale.
        assert_eq!(q.quantize_against(5.0, 1.0), 1.0);
        assert_eq!(q.quantize_against(-5.0, 1.0), -1.0);
    }

    #[test]
    #[should_panic(expected = "outside 1..=24")]
    fn rejects_zero_bits() {
        Quantizer::new(0);
    }

    #[test]
    fn quantization_is_idempotent() {
        let q = Quantizer::new(6);
        let v = q.quantize_vec(&[0.37, -0.91, 0.05]);
        let w = q.quantize_vec(&v);
        assert_eq!(v, w);
    }

    // ----- WriteQuantizer: the invariants delta programming relies on ------

    /// Deterministic pseudo-random positive samples across many decades,
    /// including values near the conductance-window edges.
    fn write_samples() -> Vec<f64> {
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut rnd = move || {
            seed ^= seed >> 12;
            seed ^= seed << 25;
            seed ^= seed >> 27;
            (seed.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut v: Vec<f64> = (0..500).map(|i| rnd() * 10.0f64.powi(i % 13 - 6)).collect();
        // Conductance-window boundaries: a typical g_off/g_on pair spans
        // ~1e-6..1e-3 S; include the edges and their nearest neighbours.
        for edge in [1e-6, 1e-3, 1.0, f64::MIN_POSITIVE, f64::MAX] {
            v.push(edge);
            v.push(edge * (1.0 + 1e-12));
            v.push(edge * (1.0 - 1e-12));
        }
        // f64::MAX * (1 + ε) overflows; codes are defined on finite targets.
        v.retain(|x| x.is_finite() && *x > 0.0);
        v
    }

    #[test]
    fn write_codes_are_monotone() {
        let wq = WriteQuantizer::new(8);
        let mut v = write_samples();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for pair in v.windows(2) {
            assert!(
                wq.code(pair[0]) <= wq.code(pair[1]),
                "codes out of order for {} vs {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn equal_inputs_produce_equal_codes() {
        for bits in [1, 4, 8, 24, WriteQuantizer::EXACT_BITS] {
            let wq = WriteQuantizer::new(bits);
            for v in write_samples() {
                assert_eq!(wq.code(v), wq.code(v), "bits {bits}, v {v}");
                // A round-tripped value maps back to the same code, so
                // rewriting an unchanged coefficient is always a skip.
                assert_eq!(wq.code(wq.quantize(v)), wq.code(v), "bits {bits}, v {v}");
            }
        }
    }

    #[test]
    fn write_error_bounded_by_rel_step() {
        let wq = WriteQuantizer::new(8);
        for v in write_samples() {
            let q = wq.quantize(v);
            assert!(
                (q - v).abs() <= wq.rel_step() * v * (1.0 + 1e-12),
                "{v} -> {q} exceeds rel step {}",
                wq.rel_step()
            );
        }
    }

    #[test]
    fn write_quantizer_edge_values() {
        let wq = WriteQuantizer::new(8);
        assert_eq!(wq.code(0.0), 0);
        assert_eq!(wq.code(-1.0), 0);
        assert_eq!(wq.code(f64::NAN), 0);
        assert_eq!(wq.code(f64::INFINITY), 0);
        assert_eq!(wq.decode(0), 0.0);
        // The top of the range stays finite even though rounding up would
        // carry into the infinity exponent.
        assert!(wq.quantize(f64::MAX).is_finite());
    }

    #[test]
    fn exact_bits_is_identity() {
        let wq = WriteQuantizer::new(WriteQuantizer::EXACT_BITS);
        for v in write_samples() {
            assert_eq!(wq.quantize(v).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn more_write_bits_never_coarser() {
        let lo = WriteQuantizer::new(6);
        let hi = WriteQuantizer::new(12);
        for v in write_samples() {
            assert!((hi.quantize(v) - v).abs() <= (lo.quantize(v) - v).abs() + 1e-300);
        }
        assert!(hi.rel_step() < lo.rel_step());
    }

    #[test]
    #[should_panic(expected = "outside 1..=53")]
    fn write_quantizer_rejects_zero_bits() {
        WriteQuantizer::new(0);
    }
}
