/// An ADC/DAC pair with per-vector dynamic-range scaling.
///
/// The paper stores all voltage inputs and outputs with 8-bit precision
/// (§4.1). A physical converter with a programmable reference digitizes a
/// vector relative to its own full-scale range, so the quantizer here
/// auto-ranges on the largest absolute entry of each vector (block
/// floating-point semantics): the quantization step is `max|v| / (2^(b-1) − 1)`.
///
/// # Example
///
/// ```
/// use memlp_crossbar::Quantizer;
///
/// let q = Quantizer::new(8);
/// let v = q.quantize_vec(&[1.0, -0.5, 0.003]);
/// assert!((v[0] - 1.0).abs() < 1e-12);         // full-scale is exact
/// assert!((v[1] + 0.5).abs() <= 1.0 / 254.0);  // inside one step
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantizer {
    bits: u32,
}

impl Quantizer {
    /// Creates a quantizer with the given resolution (1..=24 bits).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=24`.
    pub fn new(bits: u32) -> Self {
        assert!(
            (1..=24).contains(&bits),
            "quantizer resolution {bits} outside 1..=24 bits"
        );
        Quantizer { bits }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of positive levels (`2^(bits-1) − 1`).
    pub fn levels(&self) -> f64 {
        ((1u32 << (self.bits - 1)) - 1) as f64
    }

    /// Quantizes one value against an explicit full-scale range.
    pub fn quantize_against(&self, v: f64, full_scale: f64) -> f64 {
        if full_scale == 0.0 || !v.is_finite() {
            return 0.0;
        }
        let levels = self.levels();
        let code = (v / full_scale * levels).round().clamp(-levels, levels);
        code / levels * full_scale
    }

    /// Quantizes a vector, auto-ranging on its largest absolute entry.
    pub fn quantize_vec(&self, v: &[f64]) -> Vec<f64> {
        let full_scale = v.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        v.iter()
            .map(|&x| self.quantize_against(x, full_scale))
            .collect()
    }

    /// Quantizes a vector in place; returns the full-scale range used.
    pub fn quantize_in_place(&self, v: &mut [f64]) -> f64 {
        let full_scale = v.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        for x in v.iter_mut() {
            *x = self.quantize_against(*x, full_scale);
        }
        full_scale
    }

    /// Worst-case absolute quantization error for a vector whose largest
    /// absolute entry is `full_scale` (half a step).
    pub fn max_error(&self, full_scale: f64) -> f64 {
        0.5 * full_scale / self.levels()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_is_representable_exactly() {
        let q = Quantizer::new(8);
        let v = q.quantize_vec(&[-3.0, 1.0, 3.0]);
        assert_eq!(v[0], -3.0);
        assert_eq!(v[2], 3.0);
    }

    #[test]
    fn error_bounded_by_half_step() {
        let q = Quantizer::new(8);
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7133).sin() * 2.5).collect();
        let quant = q.quantize_vec(&data);
        let full = data.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        let bound = q.max_error(full) + 1e-15;
        for (a, b) in data.iter().zip(&quant) {
            assert!((a - b).abs() <= bound, "{a} -> {b}, bound {bound}");
        }
    }

    #[test]
    fn zero_vector_stays_zero() {
        let q = Quantizer::new(8);
        assert_eq!(q.quantize_vec(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn more_bits_less_error() {
        let lo = Quantizer::new(4);
        let hi = Quantizer::new(12);
        assert!(hi.max_error(1.0) < lo.max_error(1.0));
    }

    #[test]
    fn quantize_in_place_returns_range() {
        let q = Quantizer::new(8);
        let mut v = vec![0.5, -2.0];
        let fs = q.quantize_in_place(&mut v);
        assert_eq!(fs, 2.0);
        assert_eq!(v[1], -2.0);
    }

    #[test]
    fn non_finite_maps_to_zero() {
        let q = Quantizer::new(8);
        assert_eq!(q.quantize_against(f64::NAN, 1.0), 0.0);
        assert_eq!(q.quantize_against(f64::INFINITY, 1.0), 0.0);
    }

    #[test]
    fn clamps_beyond_full_scale() {
        let q = Quantizer::new(8);
        // Explicit range smaller than the value: saturates at full scale.
        assert_eq!(q.quantize_against(5.0, 1.0), 1.0);
        assert_eq!(q.quantize_against(-5.0, 1.0), -1.0);
    }

    #[test]
    #[should_panic(expected = "outside 1..=24")]
    fn rejects_zero_bits() {
        Quantizer::new(0);
    }

    #[test]
    fn quantization_is_idempotent() {
        let q = Quantizer::new(6);
        let v = q.quantize_vec(&[0.37, -0.91, 0.05]);
        let w = q.quantize_vec(&v);
        assert_eq!(v, w);
    }
}
