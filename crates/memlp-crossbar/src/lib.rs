#![forbid(unsafe_code)]
//! Memristor crossbar array simulator.
//!
//! A memristor crossbar performs matrix–vector multiplication and solves
//! systems of linear equations in the analog domain in O(1) time (paper
//! §2.3). This crate simulates that hardware at two fidelity levels and
//! accounts for every nanosecond and picojoule the hardware would spend:
//!
//! * [`Crossbar`] — an N×N array: program a matrix, run analog MVMs
//!   ([`Crossbar::mvm`]) and analog linear solves ([`Crossbar::solve`]),
//! * [`CrossbarConfig`] / [`Fidelity`] / [`ReadoutMode`] — array geometry,
//!   device parameters, variation, parasitics and read-out calibration,
//! * [`Quantizer`] — the paper's 8-bit voltage I/O (§4.1: "All voltage
//!   inputs and outputs are stored with 8-bit precision"), with per-vector
//!   dynamic-range scaling as a programmable-reference ADC/DAC would do,
//! * [`mapping`] — the logical-value ↔ conductance map of Hu et al. \[8\],
//! * [`CostLedger`] — latency/energy/operation accounting, split into a
//!   *setup* phase (initial O(N²) programming, which the paper excludes
//!   from its latency results) and a *run* phase (the per-iteration O(N)
//!   updates and O(1) analog ops that the paper reports),
//! * [`FaultModel`] / [`FaultPlan`] — validated hard-fault rates (stuck
//!   cells, dead word/bit lines, transient ADC upsets) and their
//!   seed-deterministic realization over an array; honored by the
//!   programming and read paths everywhere, with spare-line remapping
//!   ([`mapping::LineRemap`]) and weak-cell repair as recovery hooks.
//!
//! # The simulation contract
//!
//! The analog array is simulated by carrying the **realized** matrix: the
//! matrix that was actually stored after conductance mapping, clipping,
//! process variation (per write, Eqn 18) and faults. Analog operations then
//! apply exact linear algebra to the realized matrix with quantized inputs
//! and outputs — exactly the information the physical array embodies. On
//! hardware the solve is O(1); the simulator pays O(N³), which is invisible
//! to the cost ledger because hardware time is *modelled*, not measured.
//!
//! # Example
//!
//! ```
//! use memlp_crossbar::{Crossbar, CrossbarConfig};
//! use memlp_linalg::Matrix;
//!
//! # fn main() -> Result<(), memlp_crossbar::CrossbarError> {
//! let config = CrossbarConfig::ideal(); // no variation, generous precision
//! let mut xbar = Crossbar::new(4, config)?;
//! let a = Matrix::from_rows(&[
//!     &[4.0, 1.0, 0.0, 0.0],
//!     &[1.0, 3.0, 1.0, 0.0],
//!     &[0.0, 1.0, 2.0, 1.0],
//!     &[0.0, 0.0, 1.0, 2.0],
//! ])?;
//! xbar.program(&a)?;
//! let x = xbar.solve(&[1.0, 2.0, 3.0, 4.0])?;
//! let b = a.matvec(&x);
//! assert!((b[2] - 3.0).abs() < 1e-2); // 16-bit converter resolution

//! # Ok(())
//! # }
//! ```

mod array;
mod config;
mod cost;
mod error;
mod fault;
mod occupancy;
mod quantize;

pub mod mapping;

pub use array::Crossbar;
pub use config::{CrossbarConfig, Fidelity, ReadoutMode};
pub use cost::{CostLedger, OpCounts, Phase};
pub use error::CrossbarError;
pub use fault::{CellFault, FaultKind, FaultModel, FaultPlan};
pub use mapping::LineRemap;
pub use occupancy::TileOccupancy;
pub use quantize::{Quantizer, WriteQuantizer};
