use std::fmt;
use std::ops::{Add, AddAssign};

use memlp_device::CostParams;

/// Which accounting bucket an operation belongs to.
///
/// The paper's latency/energy results cover the *iterative* phase only; the
/// O(N²) initial programming is acknowledged separately (§3.5: "the
/// initialization time complexity is O(N²)"). The ledger keeps both so the
/// benches can report them side by side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Phase {
    /// One-time programming of the static blocks before iteration starts.
    Setup,
    /// Per-iteration work: coefficient updates, analog ops, conversions.
    #[default]
    Run,
}

/// Raw operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Coefficients programmed during setup.
    pub setup_writes: u64,
    /// Coefficients re-programmed during the run phase (the paper's 2.7·N
    /// per-iteration updates land here).
    pub update_writes: u64,
    /// Write pulses *skipped* by delta programming: the target's conductance
    /// code matched the cell's current code, so no pulse (and no time or
    /// energy) was spent. `update_writes + skipped_writes` equals what a
    /// full-reprogram run would have charged.
    pub skipped_writes: u64,
    /// Matrix (re)assemblies the solver avoided by reusing a cached
    /// workspace: per-iteration Newton solves that updated diagonal blocks
    /// in place instead of rebuilding the core matrix from its blocks.
    pub rebuilds_avoided: u64,
    /// Digital core factorizations performed by the controller (dense LU or
    /// sparse LU with symbolic reuse).
    pub factorizations: u64,
    /// Floating-point operations those factorizations spent — the digital
    /// per-iteration cost the sparse Newton path attacks. Dense LU charges
    /// its `2/3·N³` estimate; the sparse LU reports exact counts.
    pub factor_flops: u64,
    /// Stored factor entries (`|L|+|U|`) across all factorizations — the
    /// fill the orderings committed to.
    pub factor_nnz: u64,
    /// Analog matrix–vector multiplications.
    pub mvm_ops: u64,
    /// Analog linear-system solves.
    pub solve_ops: u64,
    /// ADC samples taken.
    pub adc_samples: u64,
    /// DAC samples produced.
    pub dac_samples: u64,
    /// NoC transfers (filled in by the `memlp-noc` crate).
    pub noc_transfers: u64,
    /// Tiles never fabricated because their planned block was entirely
    /// zero (DESIGN.md §18). No hardware exists for them: no fault plan,
    /// no spares, no programming pulses, no fabric traffic.
    pub tiles_elided: u64,
    /// Write pulses those elided tiles would have cost — the full-grid
    /// fabrication total is `setup_writes + elided_writes` (plus the
    /// delta-skip ledger on the run side).
    pub elided_writes: u64,
}

impl Add for OpCounts {
    type Output = OpCounts;

    fn add(self, o: OpCounts) -> OpCounts {
        OpCounts {
            setup_writes: self.setup_writes + o.setup_writes,
            update_writes: self.update_writes + o.update_writes,
            skipped_writes: self.skipped_writes + o.skipped_writes,
            rebuilds_avoided: self.rebuilds_avoided + o.rebuilds_avoided,
            factorizations: self.factorizations + o.factorizations,
            factor_flops: self.factor_flops + o.factor_flops,
            factor_nnz: self.factor_nnz + o.factor_nnz,
            mvm_ops: self.mvm_ops + o.mvm_ops,
            solve_ops: self.solve_ops + o.solve_ops,
            adc_samples: self.adc_samples + o.adc_samples,
            dac_samples: self.dac_samples + o.dac_samples,
            noc_transfers: self.noc_transfers + o.noc_transfers,
            tiles_elided: self.tiles_elided + o.tiles_elided,
            elided_writes: self.elided_writes + o.elided_writes,
        }
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, o: OpCounts) {
        *self = *self + o;
    }
}

/// Latency and energy ledger for simulated hardware.
///
/// Every crossbar/NoC operation charges time and energy here using the
/// [`CostParams`] constants. Times accumulate as if operations were
/// sequential (the solver's control flow is sequential per iteration);
/// energy includes a static-power term proportional to elapsed time, added
/// on read-out by [`CostLedger::energy_j`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostLedger {
    setup_time_s: f64,
    run_time_s: f64,
    dynamic_energy_j: f64,
    counts: OpCounts,
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Charges programming of `n` coefficients at variation level
    /// `var_fraction` in the given phase.
    pub fn charge_writes(&mut self, cost: &CostParams, phase: Phase, n: u64, var_fraction: f64) {
        let t = cost.write_time(var_fraction) * n as f64;
        let e = cost.write_energy(var_fraction) * n as f64;
        match phase {
            Phase::Setup => {
                self.setup_time_s += t;
                self.counts.setup_writes += n;
            }
            Phase::Run => {
                self.run_time_s += t;
                self.counts.update_writes += n;
            }
        }
        self.dynamic_energy_j += e;
    }

    /// Charges one analog operation (MVM or solve) with `inputs` DAC samples
    /// and `outputs` ADC samples. `array_conductance_s` is the total
    /// conductance of the active array, used for the settle-phase dynamic
    /// energy (`P ≈ V_read² · G_total`).
    pub fn charge_analog_op(
        &mut self,
        cost: &CostParams,
        is_solve: bool,
        inputs: u64,
        outputs: u64,
        array_conductance_s: f64,
        v_read: f64,
    ) {
        // Converters on all lines run in parallel: one conversion time each
        // way, not one per sample. Solves settle through feedback, charged
        // at twice the open-loop settle time.
        let settle = if is_solve {
            2.0 * cost.settle_time_s
        } else {
            cost.settle_time_s
        };
        self.run_time_s += cost.dac_time_s + settle + cost.adc_time_s;
        self.dynamic_energy_j += inputs as f64 * cost.dac_energy_j
            + outputs as f64 * cost.adc_energy_j
            + v_read * v_read * array_conductance_s * settle;
        self.counts.dac_samples += inputs;
        self.counts.adc_samples += outputs;
        if is_solve {
            self.counts.solve_ops += 1;
        } else {
            self.counts.mvm_ops += 1;
        }
    }

    /// Records `n` write pulses skipped by delta programming. Skipped
    /// pulses cost no time and no energy; the counter exists so the write
    /// sparsity is auditable (`update_writes + skipped_writes` is the
    /// full-reprogram total).
    pub fn note_skipped_writes(&mut self, n: u64) {
        self.counts.skipped_writes += n;
    }

    /// Records one matrix rebuild avoided by workspace reuse (a digital
    /// controller optimization — no hardware time or energy involved).
    pub fn note_rebuild_avoided(&mut self) {
        self.counts.rebuilds_avoided += 1;
    }

    /// Records `tiles` elided (never-fabricated) all-zero tiles covering
    /// `cells` coefficients. Hardware that was never built costs no time
    /// and no energy; the counters exist so the block-sparsity win is
    /// auditable next to the delta-write ledger.
    pub fn note_elided_tiles(&mut self, tiles: u64, cells: u64) {
        self.counts.tiles_elided += tiles;
        self.counts.elided_writes += cells;
    }

    /// Records one digital core factorization: its floating-point operation
    /// count and the factor fill (`|L|+|U|` entries). Digital bookkeeping —
    /// no analog time or energy — but the counters are what the sparse-path
    /// benches compare (flops per iteration, dense vs sparse).
    pub fn note_factorization(&mut self, flops: u64, nnz: u64) {
        self.counts.factorizations += 1;
        self.counts.factor_flops += flops;
        self.counts.factor_nnz += nnz;
    }

    /// Charges a NoC hop/transfer (used by `memlp-noc`).
    pub fn charge_noc_transfer(&mut self, time_s: f64, energy_j: f64, transfers: u64) {
        self.run_time_s += time_s;
        self.dynamic_energy_j += energy_j;
        self.counts.noc_transfers += transfers;
    }

    /// Run-phase latency, s (what the paper's Fig 6 reports).
    pub fn run_time_s(&self) -> f64 {
        self.run_time_s
    }

    /// Setup-phase latency, s (initial O(N²) programming).
    pub fn setup_time_s(&self) -> f64 {
        self.setup_time_s
    }

    /// Total latency, s.
    pub fn total_time_s(&self) -> f64 {
        self.setup_time_s + self.run_time_s
    }

    /// Total energy, J: dynamic energy plus static peripheral power over the
    /// run-phase duration (what the paper's Fig 7 reports).
    pub fn energy_j(&self, cost: &CostParams) -> f64 {
        self.dynamic_energy_j + cost.static_power_w * self.run_time_s
    }

    /// Dynamic (activity-proportional) energy only, J.
    pub fn dynamic_energy_j(&self) -> f64 {
        self.dynamic_energy_j
    }

    /// Operation counters.
    pub fn counts(&self) -> OpCounts {
        self.counts
    }

    /// Merges another ledger into this one (tile ledgers → NoC total).
    pub fn merge(&mut self, other: &CostLedger) {
        self.setup_time_s += other.setup_time_s;
        self.run_time_s += other.run_time_s;
        self.dynamic_energy_j += other.dynamic_energy_j;
        self.counts += other.counts;
    }

    /// Resets the ledger to empty.
    pub fn reset(&mut self) {
        *self = CostLedger::default();
    }
}

impl fmt::Display for CostLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.counts;
        write!(
            f,
            "setup {:.3} ms | run {:.3} ms | dynamic {:.3} mJ | writes {}+{} (skipped {}) | reuse {} | factor {}x/{}f/{}nz | mvm {} | solve {} | adc {} | dac {} | noc {} | elided {}t/{}w",
            self.setup_time_s * 1e3,
            self.run_time_s * 1e3,
            self.dynamic_energy_j * 1e3,
            c.setup_writes,
            c.update_writes,
            c.skipped_writes,
            c.rebuilds_avoided,
            c.factorizations,
            c.factor_flops,
            c.factor_nnz,
            c.mvm_ops,
            c.solve_ops,
            c.adc_samples,
            c.dac_samples,
            c.noc_transfers,
            c.tiles_elided,
            c.elided_writes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_split_by_phase() {
        let cost = CostParams::default();
        let mut l = CostLedger::new();
        l.charge_writes(&cost, Phase::Setup, 100, 0.0);
        l.charge_writes(&cost, Phase::Run, 10, 0.0);
        assert_eq!(l.counts().setup_writes, 100);
        assert_eq!(l.counts().update_writes, 10);
        assert!(l.setup_time_s() > l.run_time_s());
    }

    #[test]
    fn variation_makes_writes_slower() {
        let cost = CostParams::default();
        let mut a = CostLedger::new();
        let mut b = CostLedger::new();
        a.charge_writes(&cost, Phase::Run, 100, 0.0);
        b.charge_writes(&cost, Phase::Run, 100, 0.20);
        assert!(b.run_time_s() > a.run_time_s());
    }

    #[test]
    fn analog_op_counts_and_time() {
        let cost = CostParams::default();
        let mut l = CostLedger::new();
        l.charge_analog_op(&cost, false, 64, 64, 1e-3, 0.3);
        l.charge_analog_op(&cost, true, 64, 64, 1e-3, 0.3);
        let c = l.counts();
        assert_eq!(c.mvm_ops, 1);
        assert_eq!(c.solve_ops, 1);
        assert_eq!(c.adc_samples, 128);
        assert_eq!(c.dac_samples, 128);
        assert!(l.run_time_s() > 0.0);
    }

    #[test]
    fn solve_settles_longer_than_mvm() {
        let cost = CostParams::default();
        let mut mvm = CostLedger::new();
        let mut solve = CostLedger::new();
        mvm.charge_analog_op(&cost, false, 1, 1, 0.0, 0.3);
        solve.charge_analog_op(&cost, true, 1, 1, 0.0, 0.3);
        assert!(solve.run_time_s() > mvm.run_time_s());
    }

    #[test]
    fn energy_includes_static_power() {
        let cost = CostParams::default();
        let mut l = CostLedger::new();
        l.charge_writes(&cost, Phase::Run, 1000, 0.0);
        let e = l.energy_j(&cost);
        assert!(e > l.dynamic_energy_j());
        let expect_static = cost.static_power_w * l.run_time_s();
        assert!((e - l.dynamic_energy_j() - expect_static).abs() < 1e-15);
    }

    #[test]
    fn merge_accumulates() {
        let cost = CostParams::default();
        let mut a = CostLedger::new();
        a.charge_writes(&cost, Phase::Run, 5, 0.0);
        a.note_skipped_writes(2);
        let mut b = CostLedger::new();
        b.charge_writes(&cost, Phase::Run, 7, 0.0);
        b.note_skipped_writes(4);
        b.charge_noc_transfer(1e-6, 1e-9, 3);
        a.merge(&b);
        assert_eq!(a.counts().update_writes, 12);
        assert_eq!(a.counts().skipped_writes, 6);
        assert_eq!(a.counts().noc_transfers, 3);
    }

    #[test]
    fn factorizations_cost_nothing_but_accumulate() {
        let mut l = CostLedger::new();
        l.note_factorization(1000, 64);
        l.note_factorization(500, 64);
        let c = l.counts();
        assert_eq!(c.factorizations, 2);
        assert_eq!(c.factor_flops, 1500);
        assert_eq!(c.factor_nnz, 128);
        assert_eq!(l.run_time_s(), 0.0);
        assert_eq!(l.dynamic_energy_j(), 0.0);
        let mut other = CostLedger::new();
        other.note_factorization(1, 1);
        l.merge(&other);
        assert_eq!(l.counts().factorizations, 3);
    }

    #[test]
    fn elided_tiles_cost_nothing_but_accumulate() {
        let mut l = CostLedger::new();
        l.note_elided_tiles(3, 3 * 16384);
        assert_eq!(l.counts().tiles_elided, 3);
        assert_eq!(l.counts().elided_writes, 3 * 16384);
        assert_eq!(l.run_time_s(), 0.0);
        assert_eq!(l.setup_time_s(), 0.0);
        assert_eq!(l.dynamic_energy_j(), 0.0);
        let mut other = CostLedger::new();
        other.note_elided_tiles(1, 9);
        l.merge(&other);
        assert_eq!(l.counts().tiles_elided, 4);
        assert_eq!(l.counts().elided_writes, 3 * 16384 + 9);
    }

    #[test]
    fn skipped_writes_cost_nothing() {
        let mut l = CostLedger::new();
        l.note_skipped_writes(1000);
        assert_eq!(l.counts().skipped_writes, 1000);
        assert_eq!(l.run_time_s(), 0.0);
        assert_eq!(l.dynamic_energy_j(), 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let cost = CostParams::default();
        let mut l = CostLedger::new();
        l.charge_writes(&cost, Phase::Setup, 5, 0.0);
        l.reset();
        assert_eq!(l, CostLedger::default());
    }

    #[test]
    fn display_is_nonempty() {
        let l = CostLedger::new();
        assert!(!l.to_string().is_empty());
    }
}
