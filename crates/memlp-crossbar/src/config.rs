use memlp_device::{CostParams, DeviceParams, DriftModel, VariationModel};

use crate::fault::FaultModel;

/// Simulation fidelity for analog operations (see DESIGN.md §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// Paper-faithful functional model: per-write multiplicative variation
    /// on logical coefficients (Eqn 18), quantized I/O; zero coefficients
    /// stay exactly zero. Fast enough for the full m = 1024 sweeps.
    #[default]
    Functional,
    /// Circuit-level model: variation applied in the conductance domain,
    /// zero coefficients leak through the finite off-conductance `g_off`,
    /// and MVM outputs pass through the Eqn 5 resistive divider. Costs a
    /// dense solve over the whole array; intended for small/medium N.
    Circuit,
}

/// How MVM outputs are converted back to logical values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadoutMode {
    /// Digitally divide out the known column-sum factors `d_j` (the
    /// controller programmed the array, so it knows them) and subtract the
    /// `g_off` common-mode term. Default.
    #[default]
    Calibrated,
    /// The fast approximation of Hu et al. \[8\] quoted by the paper:
    /// `b = g_s·VO`, i.e. treat the divider denominator as `g_s`. Accurate
    /// only when `g_s` dominates the column conductance sums.
    RawDivider,
}

/// Full configuration of a simulated crossbar array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarConfig {
    /// Maximum physical array side (manufacturing limit, §3.4). Programming
    /// a larger matrix is an error; the NoC crate tiles around this.
    pub max_size: usize,
    /// Device parameters (resistance range, thresholds, pulse widths).
    pub device: DeviceParams,
    /// Per-write process variation (§4.1).
    pub variation: VariationModel,
    /// Hard-fault and transient-fault injection (stuck cells, dead lines,
    /// ADC read upsets — beyond-paper robustness model).
    pub faults: FaultModel,
    /// Spare physical rows/columns fabricated per array, available for
    /// remapping logical lines off dead physical lines. Redundant lines are
    /// standard practice in memory arrays; 2 per side is conservative.
    pub spare_lines: usize,
    /// Conductance drift / retention loss (beyond-paper physical effect;
    /// perfect retention by default, matching the paper's assumption).
    pub drift: DriftModel,
    /// Simulation fidelity.
    pub fidelity: Fidelity,
    /// ADC resolution in bits for analog outputs (paper: 8).
    pub adc_bits: u32,
    /// DAC resolution in bits for analog inputs (paper: 8).
    pub dac_bits: u32,
    /// Write precision in significant bits: the program-and-verify loop
    /// resolves each stored value to this many significant bits, and the
    /// delta-programming code map compares conductance codes at the same
    /// resolution; see [`WriteQuantizer`](crate::WriteQuantizer). The
    /// paper's 8-bit figure covers the voltage I/O converters; closed-loop
    /// conductance tuning resolves finer, and the default (12 bits,
    /// ≈0.02% relative) keeps the fragile constant-θ split iteration of
    /// Algorithm 2 out of the quantization noise.
    pub write_bits: u32,
    /// Delta programming: skip write pulses for cells whose conductance
    /// code is unchanged since the last program of the same block. Fault
    /// repairs, spare-line remaps and variation redraws invalidate the code
    /// cache (DESIGN.md §12). Fault-free solves are bitwise identical with
    /// this on or off; only the write counts differ.
    pub delta_writes: bool,
    /// Zero-tile elision: skip fabricating and programming tiles whose
    /// planned block is entirely zero, and schedule only live tiles on the
    /// NoC (DESIGN.md §18). An elided tile has no hardware — no fault
    /// plan, no spares, no delta cache — and its MVM contribution is an
    /// exact zero. Fault-free results are bitwise identical with this on
    /// or off; only writes, energy and fabric traffic differ.
    pub tile_elision: bool,
    /// MVM read-out calibration mode.
    pub readout: ReadoutMode,
    /// Sense conductance `g_s` at each bit line, S (Eqn 5).
    pub sense_conductance: f64,
    /// Timing/energy constants for the cost ledger.
    pub cost: CostParams,
    /// Seed for the array's private RNG (variation and fault draws);
    /// deterministic runs make experiments reproducible.
    pub seed: u64,
}

impl CrossbarConfig {
    /// Paper-default configuration: functional fidelity, 8-bit I/O,
    /// calibrated read-out, no variation (add one with [`with_variation`]).
    ///
    /// [`with_variation`]: CrossbarConfig::with_variation
    pub fn paper_default() -> Self {
        CrossbarConfig {
            // Manufacturing-realistic single-array limit (§3.4); larger
            // systems are tiled across the analog NoC.
            max_size: 512,
            device: DeviceParams::default(),
            variation: VariationModel::none(),
            faults: FaultModel::none(),
            spare_lines: 2,
            drift: DriftModel::none(),
            fidelity: Fidelity::Functional,
            adc_bits: 8,
            dac_bits: 8,
            write_bits: 12,
            delta_writes: true,
            tile_elision: true,
            readout: ReadoutMode::Calibrated,
            sense_conductance: 10.0 * DeviceParams::default().g_on(),
            cost: CostParams::default(),
            seed: 0xC0FFEE,
        }
    }

    /// An idealized array: no variation, no faults, 16-bit converters and
    /// exact (full-mantissa) writes. Useful for functional testing where
    /// hardware noise is unwanted.
    pub fn ideal() -> Self {
        CrossbarConfig {
            adc_bits: 16,
            dac_bits: 16,
            write_bits: crate::WriteQuantizer::EXACT_BITS,
            ..CrossbarConfig::paper_default()
        }
    }

    /// Returns a copy with uniform process variation of `pct` percent.
    pub fn with_variation(self, pct: f64) -> Self {
        CrossbarConfig {
            variation: VariationModel::uniform_pct(pct),
            ..self
        }
    }

    /// Returns a copy with the given RNG seed.
    pub fn with_seed(self, seed: u64) -> Self {
        CrossbarConfig { seed, ..self }
    }

    /// Returns a copy with the given (already-validated) fault model.
    pub fn with_faults(self, faults: FaultModel) -> Self {
        CrossbarConfig { faults, ..self }
    }

    /// Returns a copy with the given number of spare lines per array side.
    pub fn with_spare_lines(self, spare_lines: usize) -> Self {
        CrossbarConfig {
            spare_lines,
            ..self
        }
    }

    /// Returns a copy with the given write precision in significant bits
    /// (1..=53; 53 = exact writes).
    pub fn with_write_bits(self, write_bits: u32) -> Self {
        CrossbarConfig { write_bits, ..self }
    }

    /// Returns a copy with delta programming switched on or off.
    pub fn with_delta_writes(self, delta_writes: bool) -> Self {
        CrossbarConfig {
            delta_writes,
            ..self
        }
    }

    /// Returns a copy with zero-tile elision switched on or off.
    pub fn with_tile_elision(self, tile_elision: bool) -> Self {
        CrossbarConfig {
            tile_elision,
            ..self
        }
    }

    /// Returns a copy at circuit fidelity.
    pub fn circuit(self) -> Self {
        CrossbarConfig {
            fidelity: Fidelity::Circuit,
            ..self
        }
    }
}

impl Default for CrossbarConfig {
    fn default() -> Self {
        CrossbarConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_8_bit_functional() {
        let c = CrossbarConfig::paper_default();
        assert_eq!(c.adc_bits, 8);
        assert_eq!(c.dac_bits, 8);
        assert_eq!(c.write_bits, 12);
        assert!(c.delta_writes, "write sparsity is the default");
        assert!(c.tile_elision, "tile sparsity is the default");
        assert_eq!(c.fidelity, Fidelity::Functional);
        assert!(c.variation.is_none());
    }

    #[test]
    fn builders_compose() {
        let faults = FaultModel::symmetric(0.01).expect("valid rate");
        let c = CrossbarConfig::paper_default()
            .with_variation(10.0)
            .with_seed(42)
            .with_faults(faults)
            .with_spare_lines(4)
            .with_write_bits(10)
            .with_delta_writes(false)
            .with_tile_elision(false)
            .circuit();
        assert_eq!(c.variation.max_fraction, 0.10);
        assert_eq!(c.seed, 42);
        assert_eq!(c.faults, faults);
        assert_eq!(c.spare_lines, 4);
        assert_eq!(c.write_bits, 10);
        assert!(!c.delta_writes);
        assert!(!c.tile_elision);
        assert_eq!(c.fidelity, Fidelity::Circuit);
    }

    #[test]
    fn ideal_has_high_precision() {
        let c = CrossbarConfig::ideal();
        assert_eq!(c.adc_bits, 16);
        assert_eq!(c.write_bits, crate::WriteQuantizer::EXACT_BITS);
        assert!(c.variation.is_none());
    }

    #[test]
    fn sense_conductance_dominates_device() {
        let c = CrossbarConfig::paper_default();
        assert!(c.sense_conductance > c.device.g_on());
    }
}
